//! The inclusion hierarchy between the criteria, tested over a fixed
//! randomized corpus:
//!
//! ```text
//! RCO ⊆ DU-Opacity ⊆ Opacity ⊆ Final-state opacity ⊆ Strict serializability
//! TMS2 ⊆ DU-Opacity (the paper's conjecture, checked on the corpus)
//! ```

use du_opacity::core::{
    check_witness, Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity,
    ReadCommitOrderOpacity, StrictSerializability, Tms2,
};
use du_opacity::gen::{HistoryGen, HistoryGenConfig};
use du_opacity::history::History;

fn corpus() -> Vec<History> {
    let mut out = Vec::new();
    for seed in 0..150 {
        out.push(HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate());
        out.push(HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate());
    }
    out
}

#[test]
fn du_implies_opacity_implies_final_state() {
    for h in corpus() {
        let du = DuOpacity::new().check(&h).is_satisfied();
        let opaque = Opacity::new().check(&h).is_satisfied();
        let fso = FinalStateOpacity::new().check(&h).is_satisfied();
        if du {
            assert!(opaque, "du-opaque but not opaque:\n{h}");
        }
        if opaque {
            assert!(fso, "opaque but not final-state opaque:\n{h}");
        }
    }
}

#[test]
fn final_state_implies_strict_serializability() {
    for h in corpus() {
        if FinalStateOpacity::new().check(&h).is_satisfied() {
            assert!(
                StrictSerializability::new().check(&h).is_satisfied(),
                "final-state opaque but not strictly serializable:\n{h}"
            );
        }
    }
}

/// An RCO witness is itself a du witness: the read-commit-order edges force
/// every committed writer serialized before a reader to have invoked its
/// `tryC` before the read's response, which is exactly Definition 3(3).
#[test]
fn rco_witness_is_a_du_witness() {
    let mut rco_sat = 0;
    for h in corpus() {
        if let Some(w) = ReadCommitOrderOpacity::new().check(&h).witness() {
            rco_sat += 1;
            assert_eq!(
                check_witness(&h, w, CriterionKind::DuOpacity),
                Ok(()),
                "RCO witness is not a du witness for:\n{h}"
            );
        }
    }
    assert!(
        rco_sat > 50,
        "corpus exercised only {rco_sat} RCO-satisfiable histories"
    );
}

/// The paper conjectures TMS2 ⊆ du-opacity for the full TMS2 automaton.
/// For the *informal rendering* of Section 4.2 the implication FAILS: a
/// live transaction that never invokes `tryC` escapes every TMS2 edge yet
/// can read from a not-yet-committing writer. This reproduction's
/// differential corpus surfaced the gap;
/// `duop_experiments::figures::tms2_rendering_gap` preserves the minimized
/// two-transaction counterexample. This test documents the measured rate.
#[test]
fn tms2_rendering_does_not_imply_du_on_corpus() {
    let mut tms2_sat = 0usize;
    let mut gap = 0usize;
    for h in corpus() {
        if Tms2::new().check(&h).is_satisfied() {
            tms2_sat += 1;
            if DuOpacity::new().check(&h).is_violated() {
                gap += 1;
            }
        }
    }
    assert!(
        tms2_sat > 50,
        "corpus exercised only {tms2_sat} TMS2-satisfiable histories"
    );
    assert!(
        gap > 0,
        "expected the informal-TMS2 / du-opacity gap to appear in the corpus"
    );
    // The preserved minimal counterexample.
    let h = du_opacity::experiments::figures::tms2_rendering_gap();
    assert!(Tms2::new().check(&h).is_satisfied());
    assert!(DuOpacity::new().check(&h).is_violated());
}

/// Figures 4–6 are the paper's strictness witnesses; confirm each
/// inclusion above is strict.
#[test]
fn inclusions_are_strict() {
    use du_opacity::experiments::figures;

    // Opacity ⊊ Final-state opacity: Figure 3.
    let h = figures::fig3();
    assert!(FinalStateOpacity::new().check(&h).is_satisfied());
    assert!(Opacity::new().check(&h).is_violated());

    // DU ⊊ Opacity: Figure 4.
    let h = figures::fig4();
    assert!(Opacity::new().check(&h).is_satisfied());
    assert!(DuOpacity::new().check(&h).is_violated());

    // RCO ⊊ DU: Figure 5.
    let h = figures::fig5();
    assert!(DuOpacity::new().check(&h).is_satisfied());
    assert!(ReadCommitOrderOpacity::new().check(&h).is_violated());

    // TMS2 ⊊ DU: Figure 6.
    let h = figures::fig6();
    assert!(DuOpacity::new().check(&h).is_satisfied());
    assert!(Tms2::new().check(&h).is_violated());

    // Strict serializability ⊋ final-state opacity: a doomed transaction
    // with an inconsistent snapshot.
    use du_opacity::history::{HistoryBuilder, ObjId, TxnId, Value};
    let (t1, t3) = (TxnId::new(1), TxnId::new(3));
    let (x, y, one) = (ObjId::new(0), ObjId::new(1), Value::new(1));
    let h = HistoryBuilder::new()
        .write(t1, x, one)
        .write(t1, y, one)
        .commit(t1)
        .read(t3, x, one)
        .read(t3, y, Value::INITIAL)
        .commit_aborted(t3)
        .build();
    assert!(StrictSerializability::new().check(&h).is_satisfied());
    assert!(FinalStateOpacity::new().check(&h).is_violated());
}

/// The paper's conjecture, tested against its actual subject: the **full
/// TMS2 automaton** (implemented in `duop_core::tms2_automaton`) rather
/// than the informal rendering. Every automaton-accepted history in the
/// corpus is du-opaque, and the two histories that defeat the informal
/// rendering are correctly rejected by the automaton.
#[test]
fn tms2_automaton_implies_du_on_corpus() {
    use du_opacity::core::tms2_automaton::{check_tms2_automaton, replay};

    let mut accepted = 0usize;
    for h in corpus() {
        let verdict = check_tms2_automaton(&h, Some(2_000_000));
        if let Some(exec) = verdict.execution() {
            accepted += 1;
            assert_eq!(
                replay(&h, exec),
                Ok(()),
                "certificate must replay for:\n{h}"
            );
            assert!(
                DuOpacity::new().check(&h).is_satisfied(),
                "TMS2-automaton-accepted history that is not du-opaque — a real \
                 counterexample to the paper's conjecture:\n{h}"
            );
        }
    }
    assert!(
        accepted > 50,
        "corpus exercised only {accepted} automaton-accepted histories"
    );

    // Figure 6: not TMS2 — by the automaton as well as by the rendering.
    let fig6 = du_opacity::experiments::figures::fig6();
    assert!(!check_tms2_automaton(&fig6, None).is_accepted());

    // The rendering-gap history: the automaton correctly rejects what the
    // informal rendering accepted.
    let gap = du_opacity::experiments::figures::tms2_rendering_gap();
    assert!(!check_tms2_automaton(&gap, None).is_accepted());
    assert!(Tms2::new().check(&gap).is_satisfied());
}
