//! Cross-crate integration: the facade crate wiring STM engines, the trace
//! format, the experiment runner and the checkers together.

use du_opacity::core::{evaluate_all, Criterion, DuOpacity};
use du_opacity::experiments::runner::run_all;
use du_opacity::history::trace::{format_trace, from_json, parse_trace, to_json};
use du_opacity::stm::engines::Tl2;
use du_opacity::stm::{run_workload, WorkloadConfig};

#[test]
fn experiment_suite_confirms_every_paper_claim() {
    let results = run_all(true);
    assert_eq!(results.len(), 22);
    for r in &results {
        assert!(r.pass, "[{}] {} failed: {}", r.id, r.title, r.measured);
    }
}

#[test]
fn stm_trace_survives_text_and_json_roundtrips() {
    let engine = Tl2::new(6);
    let (h, _) = run_workload(
        &engine,
        &WorkloadConfig {
            threads: 3,
            txns_per_thread: 6,
            seed: 77,
            ..WorkloadConfig::default()
        },
    );
    let text = format_trace(&h);
    let parsed = parse_trace(&text).expect("formatted traces parse");
    assert_eq!(parsed, h);

    let json = to_json(&h);
    let parsed = from_json(&json).expect("JSON traces parse");
    assert_eq!(parsed, h);

    // Checking the round-tripped history gives the same verdict.
    assert_eq!(
        DuOpacity::new().check(&h).is_satisfied(),
        DuOpacity::new().check(&parsed).is_satisfied()
    );
}

#[test]
fn evaluate_all_reports_every_criterion_once() {
    let engine = Tl2::new(4);
    let (h, _) = run_workload(
        &engine,
        &WorkloadConfig {
            threads: 2,
            txns_per_thread: 4,
            seed: 3,
            ..WorkloadConfig::default()
        },
    );
    let rows = evaluate_all(&h);
    let names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "final-state opacity",
            "opacity",
            "du-opacity",
            "read-commit-order opacity",
            "TMS2",
            "strict serializability",
        ]
    );
    // A TL2 trace satisfies the whole stack except possibly the
    // strictly-stronger-than-du criteria; du and weaker must hold.
    for (name, verdict) in &rows {
        if [
            "final-state opacity",
            "opacity",
            "du-opacity",
            "strict serializability",
        ]
        .contains(name)
        {
            assert!(verdict.is_satisfied(), "{name} failed on a TL2 trace");
        }
    }
}
