//! `du-opacity`: an executable formalization of *Safety of Deferred Update
//! in Transactional Memory* (Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`history`]: the formal model of transactional histories (Section 2);
//! - [`core`]: the du-opacity checker and the related criteria — final-state
//!   opacity, opacity, read-commit-order opacity, TMS2, strict
//!   serializability — plus the paper's constructive lemmas as algorithms;
//! - [`stm`]: a multi-threaded STM runtime (TL2, NOrec, eager 2PL, and a
//!   deliberately unsafe dirty-read engine) that records real histories;
//! - [`gen`]: random history and workload generators;
//! - [`experiments`]: the paper's Figures 1–6 and the experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use du_opacity::history::{HistoryBuilder, ObjId, TxnId, Value};
//! use du_opacity::core::{Criterion, DuOpacity};
//!
//! let (t1, t2) = (TxnId::new(1), TxnId::new(2));
//! let x = ObjId::new(0);
//! let h = HistoryBuilder::new()
//!     .committed_writer(t1, x, Value::new(1))
//!     .committed_reader(t2, x, Value::new(1))
//!     .build();
//!
//! assert!(DuOpacity::new().check(&h).is_satisfied());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use duop_core as core;
pub use duop_experiments as experiments;
pub use duop_gen as gen;
pub use duop_history as history;
pub use duop_stm as stm;
