//! Criterion benchmark crate for the du-opacity reproduction.
//!
//! All measurement lives in `benches/`:
//!
//! * `fig_histories` — decision cost per criterion on Figures 1, 3–6 (E1,
//!   E3–E6);
//! * `limit_closure` — Figure 2 prefixes of growing length (E2);
//! * `unique_writes_fastpath` — Theorem 11's fast path vs the general
//!   search (E7);
//! * `prefix_closure` — Lemma 1's witness restriction vs re-deciding the
//!   prefix (E8);
//! * `online_vs_batch` — the incremental monitor vs per-event re-checks;
//! * `checker_scaling` — size/concurrency scaling and the memoization
//!   ablation;
//! * `stm_throughput` — engine throughput and trace-checking cost (E10).
