//! Theorem 11 (E7): the unique-writes constraint-propagation fast path vs
//! the general backtracking search on the same histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher};
use duop_core::unique::{check_unique_writes_fast, has_unique_writes};
use duop_core::{Criterion, DuOpacity};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;

fn unique_history(txns: usize, seed: u64) -> History {
    let cfg = HistoryGenConfig::medium_simulated()
        .with_txns(txns)
        .with_unique_writes(true);
    let h = HistoryGen::new(cfg, seed).generate();
    assert!(has_unique_writes(&h));
    h
}

fn bench_fast_path(c: &mut Bencher) {
    let mut group = c.benchmark_group("unique_writes_fastpath");
    for txns in [16usize, 32, 64, 128] {
        let h = unique_history(txns, 23);
        group.bench_with_input(BenchmarkId::new("fast_path", txns), &h, |b, h| {
            b.iter(|| check_unique_writes_fast(h))
        });
        group.bench_with_input(BenchmarkId::new("general_search", txns), &h, |b, h| {
            b.iter(|| DuOpacity::new().check(h))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fast_path
}
criterion_main!(benches);
