//! Sharded checking throughput vs worker-process count.
//!
//! Two workloads, each swept over pools of 1, 2, 4 and 8 workers:
//!
//! * `shard_scaling/batch_*` — a refutation-heavy batch: a corpus of
//!   small adversarial traces totalling ~10^6 transactions, checked for
//!   full opacity and shipped as whole-history tasks (the batch regime;
//!   opacity never decomposes). Every trace is an independent task, so
//!   the ideal speedup is linear in workers until the coordinator's
//!   encode/merge loop saturates.
//! * `shard_scaling/component_*` — one clustered history: many
//!   object-disjoint transaction clusters whose transactions all overlap
//!   in real time, so the planner decomposes it into one conflict
//!   component per cluster and the pool checks the components
//!   concurrently.
//!
//! Custom harness (no criterion): results land in `BENCH_7.json` at the
//! repository root, including a `host_cores` field — on a single-core
//! host the honest numbers are ~1x and the >=3x-at-4-workers scaling
//! assertion is gated on `available_threads() >= 4`. `--test` runs a
//! quick smoke pass without touching the JSON.

use duop_core::{available_threads, PlanCriterion, Verdict};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::{Event, History, ObjId, TxnId};
use duop_shard::{run_sharded, ShardConfig, ShardCriterion, ShardJob};
use std::time::Instant;

/// Locates the `duop` binary whose hidden `shard-worker` mode is the
/// worker: a sibling of this bench executable (which runs from
/// `target/<profile>/deps/`).
fn worker_cmd() -> Vec<String> {
    let exe = std::env::current_exe().expect("bench executable path");
    let name = format!("duop{}", std::env::consts::EXE_SUFFIX);
    let path = exe
        .ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(&name))
        .find(|cand| cand.is_file())
        .unwrap_or_else(|| {
            panic!(
                "no `duop` binary near {}; build the workspace first",
                exe.display()
            )
        });
    vec![
        path.to_string_lossy().into_owned(),
        "shard-worker".to_owned(),
    ]
}

/// The refutation-heavy batch corpus: small adversarial traces (a mix of
/// lint-refutable and satisfiable histories) summing to `traces *
/// txns_per_trace` transactions. `ops_max` steers per-task search cost:
/// at (1,2) many histories need a deep refutation search (tens of ms
/// each); at (1,4) the lint/planner fast paths refute most of them in
/// microseconds.
fn batch_corpus(traces: usize, txns_per_trace: usize, ops_max: usize) -> Vec<History> {
    (0..traces)
        .map(|seed| {
            let cfg = HistoryGenConfig {
                txns: txns_per_trace,
                objs: 4,
                ops_per_txn: (1, ops_max),
                mode: GenMode::Adversarial,
                ..HistoryGenConfig::medium_simulated()
            };
            HistoryGen::new(cfg, seed as u64).generate()
        })
        .collect()
}

/// One history of `clusters` object-disjoint transaction clusters in
/// which every transaction overlaps every other in real time (all first
/// events precede all last events), so the planner's conflict graph —
/// shared objects ∪ real-time edges — decomposes into exactly one
/// component per cluster.
fn clustered_history(clusters: usize, txns_per_cluster: usize, objs_per_cluster: u32) -> History {
    let relabel = |e: &Event, c: usize| {
        let txn = TxnId::new(e.txn.index() + (c * txns_per_cluster) as u32);
        let shift = |x: ObjId| ObjId::new(x.index() + c as u32 * objs_per_cluster);
        use duop_history::{EventKind, Op};
        let kind = match e.kind {
            EventKind::Inv(Op::Read(x)) => EventKind::Inv(Op::Read(shift(x))),
            EventKind::Inv(Op::Write(x, v)) => EventKind::Inv(Op::Write(shift(x), v)),
            other => other,
        };
        Event { txn, kind }
    };
    let streams: Vec<Vec<Event>> = (0..clusters)
        .map(|c| {
            let cfg = HistoryGenConfig::medium_simulated()
                .with_txns(txns_per_cluster)
                .with_objs(objs_per_cluster);
            HistoryGen::new(cfg, c as u64)
                .generate()
                .events()
                .iter()
                .map(|e| relabel(e, c))
                .collect()
        })
        .collect();
    // Two-phase merge keyed per *transaction* (only per-transaction event
    // order must be preserved for well-formedness): first every
    // transaction's opening event, then the remainders round-robin. Every
    // transaction's first event precedes every transaction's last event,
    // so no pair of transactions is real-time ordered and the planner
    // sees exactly one conflict component per cluster — a round-robin
    // merge of the raw streams would instead leave early transactions
    // real-time-before late ones, welding all clusters into a single
    // monolithic component.
    let mut queues: Vec<std::collections::VecDeque<Event>> = Vec::new();
    let mut index: std::collections::HashMap<TxnId, usize> = std::collections::HashMap::new();
    for e in streams.iter().flatten() {
        let slot = *index.entry(e.txn).or_insert_with(|| {
            queues.push(std::collections::VecDeque::new());
            queues.len() - 1
        });
        queues[slot].push_back(*e);
    }
    // A single-event (stalled) transaction spans one instant, so it would
    // be real-time ordered against almost everything; drop those.
    queues.retain(|q| q.len() >= 2);
    let total: usize = queues.iter().map(std::collections::VecDeque::len).sum();
    let mut events = Vec::with_capacity(total);
    for q in &mut queues {
        events.push(q.pop_front().expect("every transaction has events"));
    }
    while events.len() < total {
        for q in &mut queues {
            if let Some(e) = q.pop_front() {
                events.push(e);
            }
        }
    }
    History::new(events).expect("interleaved clusters stay well-formed")
}

/// Runs `jobs` on a pool of `workers` and returns (elapsed ns, violated
/// count), asserting every verdict is decided.
fn timed_run(jobs: Vec<ShardJob>, workers: usize, decompose: bool) -> (u64, usize) {
    let cfg = ShardConfig {
        workers,
        worker_cmd: worker_cmd(),
        decompose,
        ..ShardConfig::default()
    };
    let start = Instant::now();
    let verdicts = run_sharded(jobs, &cfg).expect("sharded run completes");
    let ns = start.elapsed().as_nanos() as u64;
    let violated = verdicts.iter().filter(|v| v.is_violated()).count();
    assert!(
        verdicts
            .iter()
            .all(|v| !matches!(v, Verdict::Unknown { .. })),
        "a scaling run must decide every history"
    );
    (ns, violated)
}

fn events_per_sec(events: usize, ns: u64) -> u64 {
    (events as f64 / (ns as f64 / 1e9)) as u64
}

/// `--flag N` style override, for re-measuring on other hosts without
/// recompiling (e.g. `-- --traces 4096 --txns 64`).
fn arg_override(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let worker_counts = [1usize, 2, 4, 8];

    // ~10^6 transactions in the full run (21845 traces x 48 txns; at 64
    // txns per trace the adversarial tail contains instances whose
    // opacity search runs for minutes, so the full seed range is kept at
    // a size verified to stay search-bound but bounded per task).
    let (traces, txns_per_trace) = if smoke { (12, 16) } else { (21_845, 48) };
    let traces = arg_override(&args, "--traces").unwrap_or(traces);
    let txns_per_trace = arg_override(&args, "--txns").unwrap_or(txns_per_trace);
    let ops_max = arg_override(&args, "--ops-max").unwrap_or(2);
    let corpus = batch_corpus(traces, txns_per_trace, ops_max);
    let batch_txns = traces * txns_per_trace;
    let batch_events: usize = corpus.iter().map(|h| h.events().len()).sum();
    println!(
        "shard_scaling/batch: {traces} adversarial traces, {batch_txns} txns, {batch_events} events"
    );

    // Opacity (all prefixes final-state opaque) is the heavyweight
    // whole-history criterion: every task costs a real search, so worker
    // compute dominates the wire protocol and the sweep measures
    // scaling, not framing overhead.
    let mut batch_eps = Vec::new();
    for &w in &worker_counts {
        let jobs: Vec<ShardJob> = corpus
            .iter()
            .map(|h| ShardJob {
                history: h.clone(),
                criterion: ShardCriterion::Opacity,
            })
            .collect();
        let (ns, violated) = timed_run(jobs, w, false);
        let eps = events_per_sec(batch_events, ns);
        batch_eps.push(eps);
        println!(
            "shard_scaling/batch workers={w}: {:.2}s, {eps} events/s, {violated}/{traces} refuted",
            ns as f64 / 1e9
        );
    }

    let (clusters, txns_per_cluster) = if smoke { (4, 10) } else { (48, 24) };
    let clustered = clustered_history(clusters, txns_per_cluster, 6);
    let component_events = clustered.events().len();
    println!(
        "shard_scaling/component: {clusters} clusters, {} txns, {component_events} events",
        clustered.txn_count()
    );
    let mut component_eps = Vec::new();
    for &w in &worker_counts {
        let jobs = vec![ShardJob {
            history: clustered.clone(),
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        }];
        let (ns, _) = timed_run(jobs, w, true);
        let eps = events_per_sec(component_events, ns);
        component_eps.push(eps);
        println!(
            "shard_scaling/component workers={w}: {:.3}s, {eps} events/s",
            ns as f64 / 1e9
        );
    }

    let host_cores = available_threads();
    let speedup4 = batch_eps[2] as f64 / batch_eps[0] as f64;
    println!("shard_scaling: host_cores={host_cores}, batch speedup at 4 workers {speedup4:.2}x");
    if host_cores >= 4 {
        assert!(
            speedup4 >= 3.0,
            "4 workers on a >=4-core host must be >=3x one worker (got {speedup4:.2}x)"
        );
    } else {
        println!(
            "shard_scaling: {host_cores}-core host cannot demonstrate multi-worker scaling; \
             recording honest numbers, skipping the >=3x gate"
        );
    }

    if smoke {
        println!("smoke run (--test): BENCH_7.json left untouched");
        return;
    }

    let mut results: Vec<(String, u64)> = vec![
        ("shard_scaling/batch_traces".to_owned(), traces as u64),
        ("shard_scaling/batch_txns".to_owned(), batch_txns as u64),
        ("shard_scaling/batch_events".to_owned(), batch_events as u64),
        (
            "shard_scaling/component_clusters".to_owned(),
            clusters as u64,
        ),
        (
            "shard_scaling/component_events".to_owned(),
            component_events as u64,
        ),
        ("shard_scaling/host_cores".to_owned(), host_cores as u64),
        (
            "shard_scaling/batch_speedup_milli_w4".to_owned(),
            (speedup4 * 1000.0) as u64,
        ),
    ];
    for (i, &w) in worker_counts.iter().enumerate() {
        results.push((
            format!("shard_scaling/batch_events_per_sec_w{w}"),
            batch_eps[i],
        ));
        results.push((
            format!("shard_scaling/component_events_per_sec_w{w}"),
            component_eps[i],
        ));
    }
    let mut json = String::from("{\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, json).expect("write BENCH_7.json");
    println!("wrote {path}");
}
