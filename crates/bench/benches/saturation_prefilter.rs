//! Saturation-prefilter economics: what fraction of the generated
//! corpora the certifying must-precede saturation pass decides without
//! any search, what the pass costs next to the lint-only prefilter, and
//! what independently validating a refutation certificate costs.
//!
//! Three headline measurements, per the corpus the E-series experiments
//! sweep (small adversarial + small simulated):
//!
//! 1. `decided_fraction_milli` — decisive saturation outcomes (certified
//!    refutation or validated witness) per thousand (history, criterion)
//!    queries over the five saturable criteria.
//! 2. `saturate_ns` vs `lint_ns` — median per-history wall clock of the
//!    saturation fixpoint vs the polynomial lint pipeline, the two
//!    prefilter tiers a check runs before searching.
//! 3. `check_certificate_ns` — median cost of independently re-deriving
//!    one harvested refutation certificate.
//!
//! Custom harness (no criterion): results land in `BENCH_8.json` at the
//! repository root — machine-readable `{bench name: count, ns, or
//! per-mille}` — so the perf trajectory is trackable across PRs.
//! `--test` runs a quick smoke pass without touching the JSON.

use duop_core::certificate::Certificate;
use duop_core::lint::lint;
use duop_core::{check_certificate, saturate, PlanCriterion, SaturationOutcome};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;
use std::time::Instant;

const CRITERIA: [PlanCriterion; 5] = [
    PlanCriterion::FinalState,
    PlanCriterion::Du,
    PlanCriterion::Rco,
    PlanCriterion::Tms2,
    PlanCriterion::Strict,
];

/// Median of `samples` timed sweeps of `f` over `set`, in ns per item.
fn median_ns<T, F: Fn(&T)>(set: &[T], samples: usize, f: F) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for item in set {
                f(item);
            }
            start.elapsed().as_nanos() as u64 / set.len().max(1) as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 3 } else { 20 };
    let seeds = if smoke { 60 } else { 300 };

    let mut results: Vec<(String, u64)> = Vec::new();

    for (mode, config) in [
        ("adversarial", HistoryGenConfig::small_adversarial()),
        ("simulated", HistoryGenConfig::small_simulated()),
    ] {
        let pool: Vec<History> = (0..seeds)
            .map(|seed| HistoryGen::new(config.clone(), seed).generate())
            .collect();

        // 1. Decisiveness: how much of the corpus never reaches a search.
        let mut decided = 0u64;
        let mut refuted = 0u64;
        let mut queries = 0u64;
        let mut certs: Vec<(History, Certificate)> = Vec::new();
        for h in &pool {
            for criterion in CRITERIA {
                queries += 1;
                match saturate(h, criterion) {
                    SaturationOutcome::Refuted(cert) => {
                        refuted += 1;
                        let prepared = criterion.prepare(h);
                        let hh = prepared.unwrap_or_else(|| h.clone());
                        assert_eq!(
                            check_certificate(&hh, &cert),
                            Ok(()),
                            "harvested certificate is invalid ({mode})"
                        );
                        certs.push((hh, cert));
                    }
                    SaturationOutcome::Decided(_) => decided += 1,
                    SaturationOutcome::Inconclusive => {}
                }
            }
        }
        let decisive_milli = (decided + refuted) * 1000 / queries.max(1);
        println!(
            "saturation_prefilter/{mode}: {decided} decided + {refuted} certified refutations \
             of {queries} queries ({}.{:01}% decisive)",
            decisive_milli / 10,
            decisive_milli % 10,
        );

        // 2. Prefilter-tier cost: the saturation fixpoint (du-opacity, the
        // richest rule set) vs the whole lint pipeline, per history.
        let saturate_ns = median_ns(&pool, samples, |h| {
            std::hint::black_box(saturate(h, PlanCriterion::Du));
        });
        let lint_ns = median_ns(&pool, samples, |h| {
            std::hint::black_box(lint(h));
        });
        println!(
            "saturation_prefilter/{mode}: saturate {saturate_ns} ns/history, \
             lint {lint_ns} ns/history ({:.1}x lint)",
            saturate_ns as f64 / lint_ns.max(1) as f64
        );

        // 3. Validation overhead per refutation.
        let check_ns = median_ns(&certs, samples, |(hh, cert)| {
            assert_eq!(check_certificate(hh, cert), Ok(()));
        });
        println!(
            "saturation_prefilter/{mode}: check_certificate {check_ns} ns/refutation \
             over {} certificates",
            certs.len()
        );

        for (suffix, value) in [
            ("queries", queries),
            ("decided", decided),
            ("refuted", refuted),
            ("decided_fraction_milli", decisive_milli),
            ("saturate_ns", saturate_ns),
            ("lint_ns", lint_ns),
            ("check_certificate_ns", check_ns),
        ] {
            results.push((format!("saturation_prefilter/{mode}/{suffix}"), value));
        }
    }

    if smoke {
        println!("smoke run (--test): BENCH_8.json left untouched");
        return;
    }

    let mut json = String::from("{\n");
    for (i, (name, value)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {value}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, json).expect("write BENCH_8.json");
    println!("wrote {path}");
}
