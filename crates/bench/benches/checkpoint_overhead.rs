//! Checkpointing overhead for the anytime checker.
//!
//! Durability is only free if you don't use it: a `duop check` without
//! `--checkpoint` must pay nothing for the machinery, and with it the
//! cost should be the snapshot serialization, not the search. Three
//! numbers pin that down:
//!
//! * `check/no_sink_ns` — a du-opacity sweep through the resumable
//!   pipeline with no checkpoint sink installed (the default path; the
//!   per-component notification finds no sink and returns).
//! * `check/sink_every1_ns` — the same sweep with a sink installed at
//!   `--checkpoint-every 1`, writing a real snapshot file (temp file +
//!   rename) on every decided component — the worst case a user can
//!   configure.
//! * `snapshot/save_ns` / `snapshot/load_ns` — one atomic save and one
//!   verified load of a representative mid-flight snapshot, isolating
//!   the per-flush file cost from the search.
//!
//! Custom harness (no criterion): medians are written to `BENCH_5.json`
//! at the repository root — machine-readable `{bench name: median ns}` —
//! so the perf trajectory is trackable across PRs. `--test` runs a quick
//! smoke pass without touching the JSON.

use duop_core::snapshot::{
    install_checkpoint_sink, load, remove_checkpoint_sink, save, CheckSnapshot, CheckableCriterion,
    InFlight, ResumableCheck, Snapshot,
};
use duop_core::SearchConfig;
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;
use std::time::Instant;

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn corpus(seeds: u64) -> Vec<History> {
    (0..seeds)
        .map(|seed| HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate())
        .collect()
}

/// The sequential planned engine: the one the checkpoint sink observes.
fn cfg() -> SearchConfig {
    SearchConfig {
        threads: None,
        ..SearchConfig::default()
    }
}

fn sweep(corpus: &[History]) {
    for h in corpus {
        let mut rc = ResumableCheck::new();
        let (verdict, _) = rc.check(h, CheckableCriterion::DuOpacity, &cfg());
        assert!(!matches!(verdict, duop_core::Verdict::Unknown { .. }));
    }
}

fn base_snapshot(h: &History) -> CheckSnapshot {
    CheckSnapshot {
        events: h.events().to_vec(),
        criteria: vec!["du".to_string()],
        format: "text".to_string(),
        escalate_milli: 2000,
        ladder: true,
        prelint: true,
        decompose: true,
        ..CheckSnapshot::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 5 } else { 31 };
    let seeds = if smoke { 40 } else { 120 };

    let corpus = corpus(seeds);
    let ck_path = std::env::temp_dir().join(format!("duop-bench-ck-{}.json", std::process::id()));
    let ck_path = ck_path.to_string_lossy().into_owned();

    let mut results: Vec<(String, u64)> = Vec::new();

    // No sink: the cost of having the notification hook compiled into the
    // planned search when nobody is listening.
    let no_sink_ns = median_ns(samples, || sweep(&corpus));

    // Worst-case sink: flush a real snapshot file on every decided
    // component, exactly as `duop check --checkpoint F --checkpoint-every 1`
    // does (clone the base snapshot, attach the in-flight fragments,
    // atomic temp-file + rename).
    let sink_ns = median_ns(samples, || {
        for h in &corpus {
            let base = base_snapshot(h);
            let path = ck_path.clone();
            install_checkpoint_sink(
                1,
                Box::new(move |fragments, explored| {
                    let mut snap = base.clone();
                    snap.current = Some(InFlight {
                        name: "du".to_string(),
                        explored,
                        fragments: fragments.to_vec(),
                    });
                    let _ = save(&path, &Snapshot::Check(snap));
                }),
            );
            let mut rc = ResumableCheck::new();
            let (verdict, _) = rc.check(h, CheckableCriterion::DuOpacity, &cfg());
            assert!(!matches!(verdict, duop_core::Verdict::Unknown { .. }));
            remove_checkpoint_sink();
        }
    });
    println!(
        "checkpoint_overhead/check ({} histories): no sink {no_sink_ns} ns/sweep, \
         sink at every=1 {sink_ns} ns/sweep ({:+.1}% from checkpointing)",
        corpus.len(),
        (sink_ns as f64 / no_sink_ns as f64 - 1.0) * 100.0
    );
    results.push(("checkpoint_overhead/check/no_sink_ns".into(), no_sink_ns));
    results.push(("checkpoint_overhead/check/sink_every1_ns".into(), sink_ns));

    // The isolated per-flush cost: serialize + hash + write + rename one
    // representative mid-flight snapshot, and verify + parse it back.
    let representative = {
        let h = &corpus[corpus.len() / 2];
        let mut snap = base_snapshot(h);
        snap.current = Some(InFlight {
            name: "du".to_string(),
            explored: 4096,
            fragments: Vec::new(),
        });
        Snapshot::Check(snap)
    };
    let save_ns = median_ns(samples.max(11), || {
        save(&ck_path, &representative).expect("save");
    });
    let load_ns = median_ns(samples.max(11), || {
        let loaded = load(&ck_path).expect("load");
        assert!(matches!(loaded, Snapshot::Check(_)));
    });
    println!("checkpoint_overhead/snapshot: save {save_ns} ns, verified load {load_ns} ns");
    results.push(("checkpoint_overhead/snapshot/save_ns".into(), save_ns));
    results.push(("checkpoint_overhead/snapshot/load_ns".into(), load_ns));
    let _ = std::fs::remove_file(&ck_path);

    if smoke {
        println!("smoke run (--test): BENCH_5.json left untouched");
        return;
    }

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {ns}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path, json).expect("write BENCH_5.json");
    println!("wrote {path}");
}
