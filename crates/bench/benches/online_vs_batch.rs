//! The online monitor (Lemma 1 witness reuse) vs naive per-event
//! re-checking: monitoring a whole history event by event.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher, Throughput};
use duop_core::online::OnlineChecker;
use duop_core::{Criterion, DuOpacity};
use duop_gen::{HistoryGen, HistoryGenConfig};

fn bench_online_vs_batch(c: &mut Bencher) {
    let mut group = c.benchmark_group("online_vs_batch");
    for txns in [8usize, 16, 32] {
        let h =
            HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(txns), 31).generate();
        group.throughput(Throughput::Elements(h.len() as u64));

        group.bench_with_input(BenchmarkId::new("online_monitor", txns), &h, |b, h| {
            b.iter(|| {
                let mut mon = OnlineChecker::new();
                for ev in h.events() {
                    mon.push(*ev).expect("well-formed");
                }
                mon.stats()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch_per_event", txns), &h, |b, h| {
            b.iter(|| {
                let mut last = None;
                for i in 1..=h.len() {
                    last = Some(DuOpacity::new().check(&h.prefix(i)));
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_online_vs_batch
}
criterion_main!(benches);
