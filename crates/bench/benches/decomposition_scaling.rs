//! Decomposition ablation: the search planner's conflict-graph
//! decomposition vs the monolithic search (`--no-decompose`) on synthetic
//! k-cluster corpora.
//!
//! Each cluster is a value-chained sequence of read-then-write
//! transactions on its own object, with every transaction of every
//! cluster overlapping in real time — so the conflict graph splits into
//! exactly k components. The *refutation* corpus poisons one cluster with
//! two transactions that both need the same superseded value: proving
//! there is no serialization costs the monolithic engine the *product* of
//! the per-cluster state spaces but costs the planner only their *sum*.
//! The satisfiable corpus bounds the planner's overhead on easy instances.
//!
//! Custom harness (no criterion): medians are written to `BENCH_2.json`
//! at the repository root — machine-readable `{bench name: median ns}` —
//! so the perf trajectory is trackable across PRs. `--test` runs a quick
//! smoke pass without touching the JSON.

use duop_core::{Criterion, DuOpacity, SearchConfig, Verdict};
use duop_history::{History, HistoryBuilder, ObjId, TxnId, Value};
use std::time::Instant;

/// `clusters` disjoint chains of `chain` read-then-write transactions.
/// Transaction `i` of a cluster reads the previous link's value and
/// writes its own, so within a cluster the only legal serialization is
/// the chain order — per-cluster search states stay linear in `chain`.
/// All transactions open (their read invocation) before any completes, so
/// no real-time edge crosses clusters and the planner sees `clusters`
/// components. When `poisoned`, the last cluster's final transaction
/// demands the value two links back — already superseded, and also wanted
/// by the preceding transaction — making that cluster (and only that
/// cluster) unserializable.
fn chained_clusters(clusters: u32, chain: u32, poisoned: bool) -> History {
    assert!(chain >= 3, "the poison pattern needs three links");
    let t = |c: u32, i: u32| TxnId::new(c * chain + i);
    let v = Value::new;
    let mut b = HistoryBuilder::new();
    for c in 0..clusters {
        for i in 1..=chain {
            b = b.inv_read(t(c, i), ObjId::new(c));
        }
    }
    for i in 1..=chain {
        for c in 0..clusters {
            let wanted = if poisoned && c == clusters - 1 && i == chain {
                u64::from(chain) - 2
            } else {
                u64::from(i) - 1
            };
            b = b.resp_value(t(c, i), v(wanted));
        }
        for c in 0..clusters {
            b = b
                .inv_write(t(c, i), ObjId::new(c), v(i.into()))
                .resp_ok(t(c, i));
        }
        for c in 0..clusters {
            b = b.inv_try_commit(t(c, i));
        }
        for c in 0..clusters {
            b = b.resp_committed(t(c, i));
        }
    }
    b.build()
}

fn cfg(decompose: bool) -> SearchConfig {
    SearchConfig {
        decompose,
        threads: Some(1),
        ..SearchConfig::default()
    }
}

/// Median wall-clock nanoseconds of `samples` timed runs of one check.
fn median_ns(h: &History, decompose: bool, samples: usize) -> u64 {
    let checker = DuOpacity::with_config(cfg(decompose));
    // Warm-up: one untimed run.
    let _ = checker.check(h);
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let verdict = checker.check(h);
            let ns = start.elapsed().as_nanos() as u64;
            assert!(!matches!(verdict, Verdict::Unknown { .. }));
            ns
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 3 } else { 30 };

    // The monolithic refutation cost is the product of per-cluster state
    // spaces, ~(chain+1)^clusters — 4×8 is ~6.5k states; larger sweeps
    // (8 clusters) would run for minutes per sample and measure nothing
    // new, so the sweep stops where the trend is already unambiguous.
    let mut results: Vec<(String, u64)> = Vec::new();
    let mut key_speedup = None;
    for (clusters, chain) in [(2u32, 8u32), (3, 8), (4, 4), (4, 8)] {
        for (label, poisoned) in [("refute", true), ("satisfy", false)] {
            let h = chained_clusters(clusters, chain, poisoned);
            let (planned, planned_stats) = DuOpacity::with_config(cfg(true)).check_with_stats(&h);
            let (mono, mono_stats) = DuOpacity::with_config(cfg(false)).check_with_stats(&h);
            assert_eq!(
                planned.is_satisfied(),
                mono.is_satisfied(),
                "ablation changed the verdict on {clusters}x{chain}/{label}"
            );
            assert_eq!(planned.is_satisfied(), !poisoned);

            let dec_ns = median_ns(&h, true, samples);
            let mono_ns = median_ns(&h, false, samples);
            println!(
                "decomposition_scaling/{clusters}x{chain}/{label}: decomposed {dec_ns} ns \
                 ({} states), monolithic {mono_ns} ns ({} states), speedup {:.1}x",
                planned_stats.explored,
                mono_stats.explored,
                mono_ns as f64 / dec_ns as f64
            );
            results.push((
                format!("decomposition_scaling/{clusters}x{chain}/{label}/decomposed"),
                dec_ns,
            ));
            results.push((
                format!("decomposition_scaling/{clusters}x{chain}/{label}/monolithic"),
                mono_ns,
            ));
            if clusters == 4 && chain == 8 && poisoned {
                key_speedup = Some(mono_ns as f64 / dec_ns as f64);
            }
        }
    }

    let key = key_speedup.expect("4x8 refutation corpus measured");
    println!("4-cluster x 8-txn refutation speedup: {key:.1}x (target >= 5x)");

    if smoke {
        println!("smoke run (--test): BENCH_2.json left untouched");
        return;
    }

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {ns}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    std::fs::write(path, json).expect("write BENCH_2.json");
    println!("wrote {path}");
}
