//! Lint-prefilter ablation: the polynomial static-analysis pass
//! (`SearchConfig::prelint`) vs the full serialization search on the
//! generated adversarial corpus.
//!
//! For each corpus size the seed pool splits into a *refutation* set —
//! histories the lint pipeline refutes at `Error` severity for the
//! du-opacity scope — and a *satisfiable* set, where the prefilter cannot
//! help and only adds its polynomial pass to the search. The refutation
//! set measures the payoff (the search never runs); the satisfiable set
//! bounds the overhead. Explored-state counts are deterministic, so they
//! are summed over the set while wall time is the median per-history
//! check.
//!
//! Custom harness (no criterion): medians are written to `BENCH_3.json`
//! at the repository root — machine-readable `{bench name: median ns or
//! explored states}` — so the perf trajectory is trackable across PRs.
//! `--test` runs a quick smoke pass without touching the JSON.

use duop_core::lint::{lint, LintScope};
use duop_core::{Criterion, DuOpacity, SearchConfig, Verdict};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;
use std::time::Instant;

fn cfg(prelint: bool) -> SearchConfig {
    SearchConfig {
        prelint,
        threads: Some(1),
        ..SearchConfig::default()
    }
}

/// The adversarial pool at `txns` transactions, split into
/// (lint-refutable, lint-clean-at-error) histories.
fn corpus(txns: usize, seeds: u64) -> (Vec<History>, Vec<History>) {
    let config = HistoryGenConfig::small_adversarial()
        .with_txns(txns)
        .with_concurrency(txns.min(4));
    let mut refutable = Vec::new();
    let mut clean = Vec::new();
    for seed in 0..seeds {
        let h = HistoryGen::new(config.clone(), seed).generate();
        if lint(&h).first_error_for(LintScope::Du).is_some() {
            refutable.push(h);
        } else {
            clean.push(h);
        }
    }
    (refutable, clean)
}

/// Median per-history wall-clock nanoseconds of checking every history in
/// `set`, over `samples` timed sweeps, plus the summed explored states.
fn measure(set: &[History], prelint: bool, samples: usize) -> (u64, u64) {
    let checker = DuOpacity::with_config(cfg(prelint));
    let explored: u64 = set
        .iter()
        .map(|h| checker.check_with_stats(h).1.explored)
        .sum();
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for h in set {
                let verdict = checker.check(h);
                assert!(!matches!(verdict, Verdict::Unknown { .. }));
            }
            start.elapsed().as_nanos() as u64 / set.len().max(1) as u64
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], explored)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 3 } else { 30 };
    let seeds = if smoke { 60 } else { 200 };

    let mut results: Vec<(String, u64)> = Vec::new();
    let mut key_speedup = None;
    for txns in [4usize, 6, 8, 10] {
        let (refutable, clean) = corpus(txns, seeds);
        assert!(
            refutable.len() >= 10,
            "only {} lint-refutable histories at {txns} txns",
            refutable.len()
        );
        for (label, set) in [("refute", &refutable), ("satisfy", &clean)] {
            if set.is_empty() {
                continue;
            }
            // Soundness of the split: prelint must not change a verdict.
            for h in set.iter() {
                let on = DuOpacity::with_config(cfg(true)).check(h);
                let off = DuOpacity::with_config(cfg(false)).check(h);
                assert_eq!(
                    on.is_satisfied(),
                    off.is_satisfied(),
                    "prelint changed a verdict in {txns}t/{label}"
                );
            }
            let (on_ns, on_states) = measure(set, true, samples);
            let (off_ns, off_states) = measure(set, false, samples);
            println!(
                "lint_prefilter/{txns}t/{label} ({} histories): prelint {on_ns} ns/history \
                 ({on_states} states), search {off_ns} ns/history ({off_states} states), \
                 speedup {:.1}x",
                set.len(),
                off_ns as f64 / on_ns as f64
            );
            for (suffix, value) in [
                ("prelint_ns", on_ns),
                ("prelint_states", on_states),
                ("search_ns", off_ns),
                ("search_states", off_states),
            ] {
                results.push((format!("lint_prefilter/{txns}t/{label}/{suffix}"), value));
            }
            if txns == 10 && *label == *"refute" {
                key_speedup = Some(off_ns as f64 / on_ns as f64);
            }
        }
    }

    let key = key_speedup.expect("10-txn refutation corpus measured");
    println!("10-txn adversarial refutation speedup: {key:.1}x");

    if smoke {
        println!("smoke run (--test): BENCH_3.json left untouched");
        return;
    }

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {ns}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(path, json).expect("write BENCH_3.json");
    println!("wrote {path}");
}
