//! Checker scaling (E10 ablation): decision cost of du-opacity vs
//! final-state opacity as history size and concurrency grow, plus the
//! memoization on/off ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher, Throughput};
use duop_core::{Criterion, DuOpacity, FinalStateOpacity, SearchConfig};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;

fn history(txns: usize, concurrency: usize, seed: u64) -> History {
    HistoryGen::new(
        HistoryGenConfig::medium_simulated()
            .with_txns(txns)
            .with_concurrency(concurrency),
        seed,
    )
    .generate()
}

fn bench_scaling_by_txns(c: &mut Bencher) {
    let mut group = c.benchmark_group("scaling_by_txns");
    for txns in [10usize, 20, 40, 80, 160] {
        let h = history(txns, 4, 11);
        group.throughput(Throughput::Elements(h.txn_count() as u64));
        group.bench_with_input(BenchmarkId::new("du_opacity", txns), &h, |b, h| {
            b.iter(|| DuOpacity::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("final_state", txns), &h, |b, h| {
            b.iter(|| FinalStateOpacity::new().check(h))
        });
    }
    group.finish();
}

fn bench_scaling_by_concurrency(c: &mut Bencher) {
    let mut group = c.benchmark_group("scaling_by_concurrency");
    for conc in [2usize, 4, 8, 12] {
        let h = history(48, conc, 13);
        group.bench_with_input(BenchmarkId::new("du_opacity", conc), &h, |b, h| {
            b.iter(|| DuOpacity::new().check(h))
        });
    }
    group.finish();
}

fn bench_memoization_ablation(c: &mut Bencher) {
    let mut group = c.benchmark_group("memoization_ablation");
    let h = history(28, 6, 17);
    group.bench_function("memo_on", |b| {
        b.iter(|| {
            DuOpacity::with_config(SearchConfig {
                memo: true,
                ..SearchConfig::default()
            })
            .check(&h)
        })
    });
    group.bench_function("memo_off", |b| {
        b.iter(|| {
            DuOpacity::with_config(SearchConfig {
                memo: false,
                ..SearchConfig::default()
            })
            .check(&h)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_scaling_by_txns, bench_scaling_by_concurrency, bench_memoization_ablation
}
criterion_main!(benches);
