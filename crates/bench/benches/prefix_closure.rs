//! Lemma 1 / Corollary 2 (E8): constructing a prefix serialization via the
//! paper's witness-restriction construction vs re-deciding the prefix from
//! scratch — the constructive lemma is the asymptotic win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher};
use duop_core::lemmas::restrict_witness;
use duop_core::{Criterion, DuOpacity};
use duop_gen::{HistoryGen, HistoryGenConfig};

fn bench_prefix_closure(c: &mut Bencher) {
    let mut group = c.benchmark_group("prefix_closure");
    for txns in [12usize, 24, 48] {
        let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(txns), 5).generate();
        let witness = DuOpacity::new()
            .check(&h)
            .into_result()
            .expect("simulated histories are du-opaque");
        let cut = h.len() / 2;

        group.bench_with_input(
            BenchmarkId::new("lemma1_restriction", txns),
            &(&h, &witness),
            |b, (h, w)| b.iter(|| restrict_witness(h, w, cut)),
        );
        group.bench_with_input(BenchmarkId::new("research_prefix", txns), &h, |b, h| {
            let prefix = h.prefix(cut);
            b.iter(|| DuOpacity::new().check(&prefix))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_prefix_closure
}
criterion_main!(benches);
