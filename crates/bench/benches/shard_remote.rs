//! TCP remote workers vs local stdin/stdout workers.
//!
//! Two measurements over the same refutation-heavy batch corpus:
//!
//! * `shard_remote/*_events_per_sec` — throughput with a 2-worker pool,
//!   once as local pipe-driven processes and once as two localhost
//!   `shard-serve` daemons behind the authenticated TCP transport. The
//!   gap is the full network stack: challenge–response hello, frame
//!   CRCs, heartbeats, loopback TCP.
//! * `shard_remote/*_dispatch_ns` — mean per-task round-trip on a
//!   single-worker pool fed tiny single-component tasks whose checks
//!   cost microseconds, so the number is dominated by dispatch + wire
//!   latency, not search.
//!
//! Custom harness (no criterion): results land in `BENCH_10.json` at
//! the repository root with an honest `host_cores` field (on a
//! single-core host both transports contend with the coordinator and
//! the comparison stays fair but slow). `--test` runs a quick smoke
//! pass without touching the JSON.

use duop_core::{available_threads, Verdict};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::History;
use duop_shard::{
    run_sharded, ShardConfig, ShardCriterion, ShardJob, ShardServeConfig, ShardServeHandle,
    ShardServer,
};
use std::net::SocketAddr;
use std::time::Instant;

const SECRET: &[u8] = b"bench-shard-remote";

/// Locates the `duop` binary whose hidden `shard-worker` mode is the
/// worker: a sibling of this bench executable (which runs from
/// `target/<profile>/deps/`).
fn worker_cmd() -> Vec<String> {
    let exe = std::env::current_exe().expect("bench executable path");
    let name = format!("duop{}", std::env::consts::EXE_SUFFIX);
    let path = exe
        .ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(&name))
        .find(|cand| cand.is_file())
        .unwrap_or_else(|| {
            panic!(
                "no `duop` binary near {}; build the workspace first",
                exe.display()
            )
        });
    vec![
        path.to_string_lossy().into_owned(),
        "shard-worker".to_owned(),
    ]
}

fn start_daemon() -> (SocketAddr, ShardServeHandle) {
    let server = ShardServer::bind(ShardServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        secret: SECRET.to_vec(),
        drop_conn: None,
        stall_conn: None,
    })
    .expect("bind shard-serve");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("daemon accept loop");
    });
    (addr, handle)
}

/// The adversarial batch corpus (the shard_scaling workload, smaller:
/// the comparison needs identical work per transport, not 10^6 txns).
fn batch_corpus(traces: usize, txns_per_trace: usize) -> Vec<History> {
    (0..traces)
        .map(|seed| {
            let cfg = HistoryGenConfig {
                txns: txns_per_trace,
                objs: 4,
                ops_per_txn: (1, 2),
                mode: GenMode::Adversarial,
                ..HistoryGenConfig::medium_simulated()
            };
            HistoryGen::new(cfg, seed as u64).generate()
        })
        .collect()
}

fn opacity_jobs(corpus: &[History]) -> Vec<ShardJob> {
    corpus
        .iter()
        .map(|h| ShardJob {
            history: h.clone(),
            criterion: ShardCriterion::Opacity,
        })
        .collect()
}

/// Runs `jobs` and returns elapsed ns, asserting every verdict decided.
fn timed_run(jobs: Vec<ShardJob>, cfg: &ShardConfig) -> u64 {
    let start = Instant::now();
    let verdicts = run_sharded(jobs, cfg).expect("sharded run completes");
    let ns = start.elapsed().as_nanos() as u64;
    assert!(
        verdicts
            .iter()
            .all(|v| !matches!(v, Verdict::Unknown { .. })),
        "a bench run must decide every history"
    );
    ns
}

fn local_cfg(workers: usize) -> ShardConfig {
    ShardConfig {
        workers,
        worker_cmd: worker_cmd(),
        decompose: false,
        ..ShardConfig::default()
    }
}

fn remote_cfg(addrs: &[SocketAddr]) -> ShardConfig {
    ShardConfig {
        workers: 0,
        worker_cmd: worker_cmd(),
        decompose: false,
        connect: addrs.iter().map(|a| a.to_string()).collect(),
        secret: SECRET.to_vec(),
        ..ShardConfig::default()
    }
}

fn events_per_sec(events: usize, ns: u64) -> u64 {
    (events as f64 / (ns as f64 / 1e9)) as u64
}

fn arg_override(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");

    let (traces, txns_per_trace) = if smoke { (12, 16) } else { (2_048, 32) };
    let traces = arg_override(&args, "--traces").unwrap_or(traces);
    let txns_per_trace = arg_override(&args, "--txns").unwrap_or(txns_per_trace);
    let corpus = batch_corpus(traces, txns_per_trace);
    let events: usize = corpus.iter().map(|h| h.events().len()).sum();
    println!(
        "shard_remote/batch: {traces} adversarial traces, {} txns, {events} events",
        traces * txns_per_trace
    );

    // Throughput: the same batch, 2 local pipe workers vs 2 TCP daemons.
    let local_ns = timed_run(opacity_jobs(&corpus), &local_cfg(2));
    let local_eps = events_per_sec(events, local_ns);
    println!(
        "shard_remote/local workers=2: {:.2}s, {local_eps} events/s",
        local_ns as f64 / 1e9
    );

    let (addr1, h1) = start_daemon();
    let (addr2, h2) = start_daemon();
    let tcp_ns = timed_run(opacity_jobs(&corpus), &remote_cfg(&[addr1, addr2]));
    let tcp_eps = events_per_sec(events, tcp_ns);
    println!(
        "shard_remote/tcp workers=2: {:.2}s, {tcp_eps} events/s",
        tcp_ns as f64 / 1e9
    );
    h1.shutdown();
    h2.shutdown();

    // Dispatch latency: tiny tasks on a 1-worker pool; per-task time is
    // protocol round-trip, not search.
    let tiny_count = if smoke { 8 } else { 256 };
    let tiny = batch_corpus(tiny_count, 4);
    let tiny_events: usize = tiny.iter().map(|h| h.events().len()).sum();
    println!("shard_remote/dispatch: {tiny_count} tiny tasks, {tiny_events} events");
    let local_dispatch_ns = timed_run(opacity_jobs(&tiny), &local_cfg(1)) / tiny_count as u64;
    let (addr, h3) = start_daemon();
    let tcp_dispatch_ns = timed_run(opacity_jobs(&tiny), &remote_cfg(&[addr])) / tiny_count as u64;
    h3.shutdown();
    println!(
        "shard_remote/dispatch local {local_dispatch_ns} ns/task, tcp {tcp_dispatch_ns} ns/task"
    );

    let host_cores = available_threads();
    // Loopback TCP with CRC framing should cost percents, not multiples:
    // a >4x throughput collapse would mean the transport serializes the
    // pool (e.g. heartbeats blocking task frames).
    assert!(
        tcp_eps as f64 >= local_eps as f64 / 4.0,
        "TCP transport collapsed throughput: {tcp_eps} vs {local_eps} events/s"
    );

    if smoke {
        println!("smoke run (--test): BENCH_10.json left untouched");
        return;
    }

    let results: Vec<(String, u64)> = vec![
        ("shard_remote/traces".to_owned(), traces as u64),
        ("shard_remote/events".to_owned(), events as u64),
        ("shard_remote/host_cores".to_owned(), host_cores as u64),
        ("shard_remote/local_events_per_sec_w2".to_owned(), local_eps),
        ("shard_remote/tcp_events_per_sec_w2".to_owned(), tcp_eps),
        ("shard_remote/dispatch_tasks".to_owned(), tiny_count as u64),
        (
            "shard_remote/local_dispatch_ns_per_task".to_owned(),
            local_dispatch_ns,
        ),
        (
            "shard_remote/tcp_dispatch_ns_per_task".to_owned(),
            tcp_dispatch_ns,
        ),
    ];
    let mut json = String::from("{\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path, json).expect("write BENCH_10.json");
    println!("wrote {path}");
}
