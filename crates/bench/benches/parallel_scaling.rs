//! Parallel scaling: wall-clock of the serialization search and of the
//! batch checker as the worker count grows, over an E13-style corpus
//! (`small_adversarial` seeds — the same family the search-ablation
//! experiment measures).
//!
//! Two axes:
//! - `batch_by_threads`: `par_check_batch` over the whole corpus — the
//!   inter-history fan-out used by the experiment runner and the CLI.
//! - `search_by_threads`: one deliberately hard single history — the
//!   intra-search subtree fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher, Throughput};
use duop_core::{par_check_batch, Criterion, DuOpacity, SearchConfig};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;

fn e13_corpus(samples: u64) -> Vec<History> {
    (0..samples)
        .map(|seed| HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate())
        .collect()
}

fn hard_history() -> History {
    HistoryGen::new(
        HistoryGenConfig::medium_simulated()
            .with_txns(40)
            .with_concurrency(10),
        23,
    )
    .generate()
}

fn bench_batch_by_threads(c: &mut Bencher) {
    let corpus = e13_corpus(200);
    let mut group = c.benchmark_group("batch_by_threads");
    group.throughput(Throughput::Elements(corpus.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("du_opacity", threads),
            &threads,
            |b, &threads| {
                let checker = DuOpacity::new();
                b.iter(|| par_check_batch(&checker, &corpus, threads))
            },
        );
    }
    group.finish();
}

fn bench_search_by_threads(c: &mut Bencher) {
    let h = hard_history();
    let mut group = c.benchmark_group("search_by_threads");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("du_opacity", threads),
            &threads,
            |b, &threads| {
                let checker = DuOpacity::with_config(SearchConfig {
                    threads: Some(threads),
                    ..SearchConfig::default()
                });
                b.iter(|| checker.check(&h))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_by_threads, bench_search_by_threads);
criterion_main!(benches);
