//! Figure 2 / Proposition 1 (E2): cost of deciding du-opacity on ever
//! longer prefixes of the paper's non-limit-closed history. The witness
//! position of `T1` grows with the prefix — the structural reason the
//! infinite limit has no serialization — and this bench tracks how the
//! decision cost scales alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher, Throughput};
use duop_core::{Criterion, DuOpacity};
use duop_experiments::figures::fig2_prefix;

fn bench_fig2_prefixes(c: &mut Bencher) {
    let mut group = c.benchmark_group("limit_closure");
    for readers in [4usize, 16, 64, 128] {
        let h = fig2_prefix(readers);
        group.throughput(Throughput::Elements(h.len() as u64));
        group.bench_with_input(BenchmarkId::new("fig2_prefix", readers), &h, |b, h| {
            b.iter(|| {
                let v = DuOpacity::new().check(h);
                assert!(v.is_satisfied());
                v
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig2_prefixes
}
criterion_main!(benches);
