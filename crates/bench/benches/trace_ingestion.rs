//! Trace ingestion throughput: compact binary `.duob` vs text.
//!
//! The binary format exists to make large traces cheap to ship and cheap
//! to parse. Two claims are pinned down here, on a ≥10^5-event trace from
//! the `large_streaming` generator preset:
//!
//! * `ingestion/*_events_per_sec` — end-to-end `reader::read_history`
//!   throughput (format sniff + parse + `History` validation) for the
//!   text and binary encodings of the *same* history, plus the bulk
//!   scratch-decoder path that reuses its buffers across calls. The
//!   binary decode must be ≥3x the text parse.
//! * `monitor/*_peak_resident_events` — the streaming monitor's memory
//!   high-water mark (peak resident events inside the online checker)
//!   with prefix compaction, against eager full materialisation where
//!   the peak is by definition the whole trace.
//!
//! Custom harness (no criterion): medians land in `BENCH_6.json` at the
//! repository root as `{bench name: integer}` so the perf trajectory is
//! trackable across PRs. `--test` runs a quick smoke pass without
//! touching the JSON.

use duop_core::online::OnlineChecker;
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::trace::format_trace;
use duop_history::{binary, reader};
use std::time::Instant;

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn events_per_sec(events: usize, ns: u64) -> u64 {
    (events as f64 / (ns as f64 / 1e9)) as u64
}

/// Streams `bytes` into an online checker, returning peak resident events.
/// `compact_every` of `None` is the eager baseline: nothing is ever
/// dropped, so the peak equals the trace length.
fn monitor_peak(bytes: &[u8], compact_every: Option<usize>) -> (usize, bool) {
    let mut rd = reader::TraceReader::new(bytes).expect("reader");
    let mut mon = OnlineChecker::new();
    mon.set_compact_every(compact_every);
    let mut ok = true;
    while let Some(ev) = rd.next_event().expect("event") {
        let verdict = mon.push(ev).expect("well-formed");
        ok &= !matches!(verdict, duop_core::Verdict::Violated { .. });
    }
    (mon.stats().peak_resident_events, ok)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 3 } else { 15 };
    let txns = if smoke { 512 } else { 12_288 };
    let monitor_txns = if smoke { 128 } else { 1024 };

    let cfg = HistoryGenConfig::large_streaming().with_txns(txns);
    let h = HistoryGen::new(cfg, 42).generate();
    let n = h.events().len();
    assert!(smoke || n >= 100_000, "trace too small: {n} events");

    let text = format_trace(&h).into_bytes();
    let bin = binary::encode(&h);
    println!(
        "trace_ingestion: {n} events; text {} bytes ({:.1} B/event), \
         binary {} bytes ({:.1} B/event)",
        text.len(),
        text.len() as f64 / n as f64,
        bin.len(),
        bin.len() as f64 / n as f64
    );

    let text_ns = median_ns(samples, || {
        let parsed = reader::read_history(&text).expect("text parse");
        assert_eq!(parsed.events().len(), n);
    });
    let bin_ns = median_ns(samples, || {
        let parsed = reader::read_history(&bin).expect("binary parse");
        assert_eq!(parsed.events().len(), n);
    });
    // Bulk path: decode event chunks into reusable scratch buffers,
    // skipping `History` construction — the floor for wire-parse cost.
    let mut scratch = binary::ScratchDecoder::new();
    let scratch_ns = median_ns(samples, || {
        let events = scratch.decode_events(&bin).expect("scratch decode");
        assert_eq!(events.len(), n);
    });

    let text_eps = events_per_sec(n, text_ns);
    let bin_eps = events_per_sec(n, bin_ns);
    let scratch_eps = events_per_sec(n, scratch_ns);
    let speedup = bin_eps as f64 / text_eps as f64;
    println!(
        "trace_ingestion/read_history: text {text_eps} events/s, \
         binary {bin_eps} events/s ({speedup:.2}x), scratch {scratch_eps} events/s"
    );

    // Verdict agreement between eager and compacting monitors is checked
    // at a small size: the eager checker re-certifies a witness against
    // the whole retained history on every push, so it is super-quadratic
    // in trace length and only the compacting monitor scales.
    let agree_cfg = HistoryGenConfig::large_streaming().with_txns(128);
    let agree_h = HistoryGen::new(agree_cfg, 7).generate();
    let agree_bin = binary::encode(&agree_h);
    let (eager_peak, eager_ok) = monitor_peak(&agree_bin, None);
    let (_, compacted_ok) = monitor_peak(&agree_bin, Some(256));
    assert_eq!(eager_ok, compacted_ok, "compaction changed the verdict");
    assert_eq!(
        eager_peak,
        agree_h.events().len(),
        "eager peak must be the whole trace"
    );

    let mon_cfg = HistoryGenConfig::large_streaming().with_txns(monitor_txns);
    let mon_h = HistoryGen::new(mon_cfg, 7).generate();
    let mon_bin = binary::encode(&mon_h);
    let mon_n = mon_h.events().len();
    // An eager monitor retains every event by definition, so the full
    // materialisation peak is the trace length — no need to pay the
    // super-quadratic eager run at this size.
    let full_peak = mon_n;
    let (stream_peak, stream_ok) = monitor_peak(&mon_bin, Some(256));
    assert!(stream_ok, "simulated-mode trace must stay du-opaque");
    println!(
        "trace_ingestion/monitor ({mon_n} events): eager peak {full_peak} \
         resident events, streaming+compaction peak {stream_peak} \
         ({:.1}% of full)",
        100.0 * stream_peak as f64 / full_peak as f64
    );

    if smoke {
        println!("smoke run (--test): BENCH_6.json left untouched");
        return;
    }
    assert!(
        speedup >= 3.0,
        "binary ingestion is only {speedup:.2}x text (need >= 3x)"
    );
    assert!(stream_peak < full_peak, "compaction did not bound memory");

    let results: Vec<(&str, u64)> = vec![
        ("trace_ingestion/events", n as u64),
        ("trace_ingestion/text_bytes", text.len() as u64),
        ("trace_ingestion/binary_bytes", bin.len() as u64),
        ("trace_ingestion/text_events_per_sec", text_eps),
        ("trace_ingestion/binary_events_per_sec", bin_eps),
        ("trace_ingestion/scratch_events_per_sec", scratch_eps),
        (
            "trace_ingestion/binary_vs_text_speedup_milli",
            (speedup * 1000.0) as u64,
        ),
        ("trace_ingestion/monitor_events", mon_n as u64),
        (
            "trace_ingestion/monitor_full_peak_resident_events",
            full_peak as u64,
        ),
        (
            "trace_ingestion/monitor_streaming_peak_resident_events",
            stream_peak as u64,
        ),
    ];
    let mut json = String::from("{\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, json).expect("write BENCH_6.json");
    println!("wrote {path}");
}
