//! One benchmark per paper figure: the cost of deciding each criterion on
//! the exact histories the paper's claims are made about (E1–E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher};
use duop_core::tms2_automaton::check_tms2_automaton;
use duop_core::{Criterion, DuOpacity, FinalStateOpacity, Opacity, ReadCommitOrderOpacity, Tms2};
use duop_experiments::figures;

fn bench_figures(c: &mut Bencher) {
    let mut group = c.benchmark_group("fig_histories");
    let figures = vec![
        ("fig1", figures::fig1()),
        ("fig3", figures::fig3()),
        ("fig4", figures::fig4()),
        ("fig5", figures::fig5()),
        ("fig6", figures::fig6()),
    ];
    for (name, h) in &figures {
        group.bench_with_input(BenchmarkId::new("du_opacity", name), h, |b, h| {
            b.iter(|| DuOpacity::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("final_state_opacity", name), h, |b, h| {
            b.iter(|| FinalStateOpacity::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("opacity", name), h, |b, h| {
            b.iter(|| Opacity::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("tms2", name), h, |b, h| {
            b.iter(|| Tms2::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("read_commit_order", name), h, |b, h| {
            b.iter(|| ReadCommitOrderOpacity::new().check(h))
        });
        group.bench_with_input(BenchmarkId::new("tms2_automaton", name), h, |b, h| {
            b.iter(|| check_tms2_automaton(h, None))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figures
}
criterion_main!(benches);
