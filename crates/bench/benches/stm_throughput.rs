//! STM engine throughput (E10): transaction attempts per second for each
//! engine under read-heavy and write-heavy workloads, plus the cost of
//! checking the recorded histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bencher, Throughput};
use duop_core::{Criterion, DuOpacity};
use duop_stm::engines::{DirtyRead, Dstm, Eager2Pl, NoRec, Pessimistic, Tl2};
use duop_stm::{run_workload, Engine, WorkloadConfig};

fn workload(read_ratio: f64) -> WorkloadConfig {
    WorkloadConfig {
        threads: 4,
        txns_per_thread: 50,
        ops_per_txn: (2, 5),
        read_ratio,
        unique_values: true,
        max_attempts: 4,
        yield_between_ops: false,
        seed: 41,
    }
}

type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;

fn engines() -> Vec<(&'static str, EngineFactory)> {
    vec![
        ("tl2", Box::new(|| Box::new(Tl2::new(16)))),
        ("norec", Box::new(|| Box::new(NoRec::new(16)))),
        ("dstm", Box::new(|| Box::new(Dstm::new(16)))),
        ("eager_2pl", Box::new(|| Box::new(Eager2Pl::new(16)))),
        ("pessimistic", Box::new(|| Box::new(Pessimistic::new(16)))),
        ("dirty_read", Box::new(|| Box::new(DirtyRead::new(16)))),
    ]
}

fn bench_throughput(c: &mut Bencher, group_name: &str, read_ratio: f64) {
    let mut group = c.benchmark_group(group_name);
    let cfg = workload(read_ratio);
    group.throughput(Throughput::Elements(
        (cfg.threads * cfg.txns_per_thread) as u64,
    ));
    for (name, make) in engines() {
        group.bench_function(BenchmarkId::new(name, "run"), |b| {
            b.iter(|| {
                let engine = make();
                run_workload(engine.as_ref(), &cfg)
            })
        });
    }
    group.finish();
}

fn bench_read_heavy(c: &mut Bencher) {
    bench_throughput(c, "stm_read_heavy", 0.8);
}

fn bench_write_heavy(c: &mut Bencher) {
    bench_throughput(c, "stm_write_heavy", 0.2);
}

fn bench_trace_checking(c: &mut Bencher) {
    let mut group = c.benchmark_group("stm_trace_checking");
    for (name, make) in engines() {
        if name == "dirty_read" || name == "pessimistic" {
            continue; // violating traces short-circuit; not comparable
        }
        let engine = make();
        let (h, _) = run_workload(engine.as_ref(), &workload(0.6));
        group.throughput(Throughput::Elements(h.txn_count() as u64));
        group.bench_function(BenchmarkId::new("du_check", name), |b| {
            b.iter(|| DuOpacity::new().check(&h))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_read_heavy, bench_write_heavy, bench_trace_checking
}
criterion_main!(benches);
