//! Serve-daemon throughput and verdict latency.
//!
//! Three ingestion paths over the same generated workload, reported as
//! events/sec:
//!
//! * `serve_throughput/direct` — `TraceReader` straight into a
//!   [`duop_serve::Session`], no sockets: the ceiling the HTTP layer is
//!   measured against.
//! * `serve_throughput/http_text` — loopback HTTP/1.1, trace-text bodies
//!   streamed in chunks over one keep-alive connection.
//! * `serve_throughput/http_binary` — loopback HTTP/1.1, one `.duob`
//!   binary body per trace.
//!
//! Plus p99 verdict latency with {1, 16, 64} concurrent sessions, each
//! client hammering `GET /v1/session/:id/verdict` over its own
//! keep-alive connection.
//!
//! Custom harness (no criterion): results land in `BENCH_9.json` at the
//! repository root with an honest `host_cores` field — on a small host
//! the concurrent-session latencies simply report queueing. `--test`
//! runs a quick smoke pass without touching the JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use duop_core::available_threads;
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::reader::TraceReader;
use duop_history::trace::format_trace;
use duop_history::{binary, History};
use duop_serve::{ServeConfig, Server, Session, ShutdownHandle};

fn spawn_server() -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("server run");
    });
    (addr, handle, join)
}

/// A keep-alive loopback connection speaking just enough HTTP/1.1 for
/// the bench: send a request, read status + headers + content-length
/// body, repeat.
struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Conn {
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: Option<(&str, &[u8])>) -> (u16, Vec<u8>) {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\n");
        if let Some((ctype, b)) = body {
            head.push_str(&format!(
                "Content-Type: {ctype}\r\nContent-Length: {}\r\n",
                b.len()
            ));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes()).expect("write head");
        if let Some((_, b)) = body {
            stream.write_all(b).expect("write body");
        }
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    len = v.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload).expect("body");
        (status, payload)
    }

    fn create_session(&mut self) -> u64 {
        let (status, body) = self.request("POST", "/v1/session", Some(("text/plain", b"")));
        assert_eq!(status, 201, "session create");
        let text = String::from_utf8(body).expect("utf8");
        let rest = &text[text.find("\"session\":").expect("session field") + 10..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().expect("session id")
    }
}

/// The workload: `traces` clean-leaning simulated histories.
fn corpus(traces: usize, txns: usize) -> Vec<History> {
    (0..traces)
        .map(|seed| {
            let cfg = HistoryGenConfig::medium_simulated().with_txns(txns);
            HistoryGen::new(cfg, seed as u64).generate()
        })
        .collect()
}

fn events_per_sec(events: usize, ns: u64) -> u64 {
    (events as f64 / (ns as f64 / 1e9)) as u64
}

/// Direct path: parse trace text through `TraceReader` and push into a
/// `Session`, no sockets.
fn bench_direct(texts: &[String]) -> u64 {
    let mut total_events = 0usize;
    let start = Instant::now();
    for (i, text) in texts.iter().enumerate() {
        let mut session = Session::new(i as u64, None);
        let mut rd = TraceReader::new(text.as_bytes()).expect("reader");
        let mut events = Vec::new();
        while let Some(ev) = rd.next_event().expect("event") {
            events.push(ev);
        }
        total_events += events.len();
        session.ingest(&events).expect("ingest");
    }
    events_per_sec(total_events, start.elapsed().as_nanos() as u64)
}

/// HTTP text path: one keep-alive connection, trace text in
/// `chunk_lines`-line bodies.
fn bench_http_text(addr: &str, texts: &[String], total_events: usize, chunk_lines: usize) -> u64 {
    let mut conn = Conn::open(addr);
    let start = Instant::now();
    for text in texts {
        let sid = conn.create_session();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        for chunk in lines.chunks(chunk_lines) {
            let body = format!("{}\n", chunk.join("\n"));
            let (status, _) = conn.request(
                "POST",
                &format!("/v1/session/{sid}/events"),
                Some(("text/plain", body.as_bytes())),
            );
            assert_eq!(status, 200, "text ingest");
        }
    }
    events_per_sec(total_events, start.elapsed().as_nanos() as u64)
}

/// HTTP binary path: one `.duob` body per trace on a keep-alive
/// connection.
fn bench_http_binary(addr: &str, corpus: &[History], total_events: usize) -> u64 {
    let encoded: Vec<Vec<u8>> = corpus.iter().map(binary::encode).collect();
    let mut conn = Conn::open(addr);
    let start = Instant::now();
    for body in &encoded {
        let sid = conn.create_session();
        let (status, _) = conn.request(
            "POST",
            &format!("/v1/session/{sid}/events"),
            Some(("application/octet-stream", body)),
        );
        assert_eq!(status, 200, "binary ingest");
    }
    events_per_sec(total_events, start.elapsed().as_nanos() as u64)
}

/// p99 verdict latency (nanoseconds) with `sessions` concurrent clients,
/// each owning one pre-loaded session and issuing `reqs` verdict GETs on
/// its own keep-alive connection.
fn bench_verdict_p99(addr: &str, seed_history: &History, sessions: usize, reqs: usize) -> u64 {
    let body = binary::encode(seed_history);
    let handles: Vec<_> = (0..sessions)
        .map(|_| {
            let addr = addr.to_owned();
            let body = body.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::open(&addr);
                let sid = conn.create_session();
                let (status, _) = conn.request(
                    "POST",
                    &format!("/v1/session/{sid}/events"),
                    Some(("application/octet-stream", &body)),
                );
                assert_eq!(status, 200, "seed ingest");
                let mut lat = Vec::with_capacity(reqs);
                for _ in 0..reqs {
                    let t = Instant::now();
                    let (status, _) =
                        conn.request("GET", &format!("/v1/session/{sid}/verdict"), None);
                    lat.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "verdict");
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("latency client"))
        .collect();
    all.sort_unstable();
    all[((all.len() * 99) / 100).min(all.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");

    let (traces, txns) = if smoke { (4, 12) } else { (64, 96) };
    let corpus = corpus(traces, txns);
    let texts: Vec<String> = corpus.iter().map(format_trace).collect();
    let total_events: usize = corpus.iter().map(|h| h.events().len()).sum();
    println!("serve_throughput: {traces} traces, {total_events} events");

    let direct = bench_direct(&texts);
    println!("serve_throughput/direct: {direct} events/s");

    let (addr, handle, join) = spawn_server();
    let chunk_lines = if smoke { 8 } else { 64 };
    let http_text = bench_http_text(&addr, &texts, total_events, chunk_lines);
    println!("serve_throughput/http_text: {http_text} events/s");
    let http_binary = bench_http_binary(&addr, &corpus, total_events);
    println!("serve_throughput/http_binary: {http_binary} events/s");

    // Latency seed: one moderate history per session, so each verdict
    // GET pays a real (but bounded) batch check.
    let seed = &corpus[0];
    let session_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 16, 64] };
    let reqs = if smoke { 5 } else { 50 };
    let mut p99s = Vec::new();
    for &s in session_counts {
        let p99 = bench_verdict_p99(&addr, seed, s, reqs);
        p99s.push((s, p99));
        println!(
            "serve_throughput/verdict_p99 sessions={s}: {:.3}ms",
            p99 as f64 / 1e6
        );
    }

    handle.shutdown();
    join.join().expect("server thread");

    let host_cores = available_threads();
    println!("serve_throughput: host_cores={host_cores}");
    assert!(
        http_binary > 0 && http_text > 0 && direct > 0,
        "all paths must move events"
    );

    if smoke {
        println!("smoke run (--test): BENCH_9.json left untouched");
        return;
    }

    let mut results: Vec<(String, u64)> = vec![
        ("serve_throughput/traces".to_owned(), traces as u64),
        ("serve_throughput/events".to_owned(), total_events as u64),
        ("serve_throughput/host_cores".to_owned(), host_cores as u64),
        ("serve_throughput/direct_events_per_sec".to_owned(), direct),
        (
            "serve_throughput/http_text_events_per_sec".to_owned(),
            http_text,
        ),
        (
            "serve_throughput/http_binary_events_per_sec".to_owned(),
            http_binary,
        ),
    ];
    for (s, p99) in &p99s {
        results.push((format!("serve_throughput/verdict_p99_ns_s{s}"), *p99));
    }
    let mut json = String::from("{\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, json).expect("write BENCH_9.json");
    println!("wrote {path}");
}
