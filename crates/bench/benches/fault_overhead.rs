//! Fault-injection and budget-governance overhead.
//!
//! Two costs ride on every hot path after the robustness work: the
//! per-injection-point probe the engines make on each operation (inert
//! when the plan is [`FaultPlan::none`]) and the deadline sampling the
//! searcher performs every 1024 expansions. Both are meant to be noise;
//! this bench puts numbers on them:
//!
//! * `stm/*` — a fixed single-threaded TL2 workload with the inert plan
//!   vs an active plan (aborts + crashes). The inert run is the
//!   every-commit cost of having the hooks compiled in; the active run
//!   shows what real injection adds.
//! * `search/*` — the du-opacity search over a generated corpus with no
//!   deadline vs a generous one (which never fires, so the difference is
//!   pure bookkeeping: one `Instant::now` per 1024 expansions).
//!
//! Custom harness (no criterion): medians are written to `BENCH_4.json`
//! at the repository root — machine-readable `{bench name: median ns}` —
//! so the perf trajectory is trackable across PRs. `--test` runs a quick
//! smoke pass without touching the JSON.

use duop_core::{Criterion, DuOpacity, SearchConfig, Verdict};
use duop_gen::{HistoryGen, HistoryGenConfig};
use duop_history::History;
use duop_stm::engines::Tl2;
use duop_stm::{run_workload, run_workload_faulted, FaultPlan, WorkloadConfig};
use std::time::{Duration, Instant};

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        threads: 1,
        txns_per_thread: 200,
        ops_per_txn: (2, 4),
        read_ratio: 0.6,
        unique_values: true,
        max_attempts: 2,
        yield_between_ops: false,
        seed,
    }
}

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn search_corpus(seeds: u64) -> Vec<History> {
    (0..seeds)
        .map(|seed| HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate())
        .collect()
}

fn check_all(corpus: &[History], deadline: Option<Duration>) {
    let checker = DuOpacity::with_config(SearchConfig {
        threads: Some(1),
        deadline,
        ..SearchConfig::default()
    });
    for h in corpus {
        let verdict = checker.check(h);
        assert!(
            !matches!(verdict, Verdict::Unknown { .. }),
            "a generous deadline must never fire"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let samples = if smoke { 5 } else { 31 };
    let seeds = if smoke { 40 } else { 120 };

    let mut results: Vec<(String, u64)> = Vec::new();

    // STM side. First, determinism: the inert plan must be byte-identical
    // to the unfaulted entry point (it is the same code path).
    let none = FaultPlan::none();
    // Aborts and delays only: crashes truncate the workload (killed
    // threads run fewer transactions), which would make the wall-clock
    // comparison measure run length, not injection cost.
    let active = FaultPlan::parse("abort=0.05,delay=0.1")
        .expect("spec is valid")
        .with_seed(7);
    {
        let engine = Tl2::new(6);
        let (h_plain, _) = run_workload(&engine, &workload(7));
        let engine = Tl2::new(6);
        let (h_none, _) = run_workload_faulted(&engine, &workload(7), &none);
        assert_eq!(h_plain, h_none, "inert plan diverged from run_workload");
    }
    let none_ns = median_ns(samples, || {
        let engine = Tl2::new(6);
        let (h, _) = run_workload_faulted(&engine, &workload(7), &none);
        assert!(!h.is_empty());
    });
    let faulted_ns = median_ns(samples, || {
        let engine = Tl2::new(6);
        let (h, _) = run_workload_faulted(&engine, &workload(7), &active);
        assert!(!h.is_empty());
    });
    println!(
        "fault_overhead/stm: inert plan {none_ns} ns/run, active plan {faulted_ns} ns/run \
         ({:+.1}% from injection)",
        (faulted_ns as f64 / none_ns as f64 - 1.0) * 100.0
    );
    results.push(("fault_overhead/stm/none_ns".into(), none_ns));
    results.push(("fault_overhead/stm/faulted_ns".into(), faulted_ns));

    // Search side: deadline bookkeeping that never fires.
    let corpus = search_corpus(seeds);
    let no_deadline_ns = median_ns(samples, || check_all(&corpus, None));
    let generous_ns = median_ns(samples, || {
        check_all(&corpus, Some(Duration::from_secs(3600)));
    });
    println!(
        "fault_overhead/search ({} histories): no deadline {no_deadline_ns} ns/sweep, \
         generous deadline {generous_ns} ns/sweep ({:+.1}% from sampling)",
        corpus.len(),
        (generous_ns as f64 / no_deadline_ns as f64 - 1.0) * 100.0
    );
    results.push((
        "fault_overhead/search/no_deadline_ns".into(),
        no_deadline_ns,
    ));
    results.push((
        "fault_overhead/search/generous_deadline_ns".into(),
        generous_ns,
    ));

    if smoke {
        println!("smoke run (--test): BENCH_4.json left untouched");
        return;
    }

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {ns}{comma}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    std::fs::write(path, json).expect("write BENCH_4.json");
    println!("wrote {path}");
}
