//! The paper's Figures 1–6, transcribed event-for-event.
//!
//! Each function returns the history drawn in the corresponding figure;
//! the accompanying tests (and the experiment harness) mechanically
//! re-derive the claim the paper makes about it.

use duop_history::{History, HistoryBuilder, ObjId, TxnId, Value};

fn t(k: u32) -> TxnId {
    TxnId::new(k)
}

fn x() -> ObjId {
    ObjId::new(0)
}

fn y() -> ObjId {
    ObjId::new(1)
}

fn v(n: u64) -> Value {
    Value::new(n)
}

/// Figure 1: a du-opaque history with serialization `T2 · T3 · T1 · T4`.
///
/// `T2` and `T3` both commit the value `v = 1` to `X` (non-unique writes —
/// the subtlety the figure is built on): `T1` reads `1` *from `T2`* in its
/// local serialization (only `T2` has invoked `tryC` by then) while
/// serializing after `T3` globally, which also wrote `1`.
pub fn fig1() -> History {
    HistoryBuilder::new()
        // T2 writes 1 to X and commits.
        .committed_writer(t(2), x(), v(1))
        // T1 reads 1 (from T2 locally; from T3 in the global order).
        .read(t(1), x(), v(1))
        // T3 writes 1 and starts committing only after T1's read returned.
        .write(t(3), x(), v(1))
        .inv_try_commit(t(3))
        // T1 writes 2 and commits.
        .write(t(1), x(), v(2))
        .commit(t(1))
        // T3's commit lands.
        .resp_committed(t(3))
        // T4, after T1, reads T1's value and commits.
        .committed_reader(t(4), x(), v(2))
        .build()
}

/// Figure 2, cut to a finite prefix with `readers` single-read
/// transactions: `T1` writes 1 and its `tryC` hangs forever; `T2` reads 1
/// through the pending commit; `T3, T4, ...` each read the initial value 0
/// while overlapping both.
///
/// Every finite prefix is du-opaque (serialize the readers of 0, then `T1`
/// committed, then `T2`), but any serialization must place *all* readers
/// before `T1` — so in the infinite limit `T1` has no position, which is
/// exactly Proposition 1 (du-opacity is not limit-closed).
pub fn fig2_prefix(readers: usize) -> History {
    let mut b = HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .inv_try_commit(t(1))
        .inv_read(t(2), x())
        .resp_value(t(2), v(1));
    for i in 0..readers {
        let id = t(3 + i as u32);
        b = b.inv_read(id, x()).resp_value(id, v(0));
    }
    b.build()
}

/// Figure 3: a final-state opaque history whose prefix is not final-state
/// opaque — final-state opacity is not prefix-closed.
///
/// `T1`'s write completes, `T2` reads it and commits, then `T1` commits.
/// The whole history serializes as `T1 · T2`, but the prefix ending after
/// `T2`'s read (both transactions then completed with aborts by
/// Definition 2) leaves `T2`'s read of 1 with no committed writer.
pub fn fig3() -> History {
    HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .read(t(2), x(), v(1))
        .commit(t(2))
        .commit(t(1))
        .build()
}

/// The length of the prefix of [`fig3`] the paper calls `H'` (the events
/// up to and including `T2`'s read response).
pub const FIG3_PREFIX_LEN: usize = 4;

/// Figure 4: an opaque history that is **not** du-opaque — the separation
/// witness of Proposition 2 / Theorem 10.
///
/// `T1` writes 1, its commit attempt spans the whole history and fails at
/// the very end; `T2` reads 1 while only `T1` has started committing; `T3`
/// writes the same value 1 and commits, but invokes `tryC` only after
/// `T2`'s read returned. Every prefix is final-state opaque (before `A_1`
/// lands, a completion may commit `T1`), yet the only final-state
/// serialization of the whole history is `T1 · T3 · T2`, whose local
/// serialization for `read_2(X)` is `T1 · read_2(X)` — and `T1` aborted.
pub fn fig4() -> History {
    HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .inv_try_commit(t(1))
        .read(t(2), x(), v(1))
        .write(t(3), x(), v(1))
        .commit(t(3))
        .resp_aborted(t(1))
        .build()
}

/// Figure 5: a *sequential* du-opaque history that is not opaque under the
/// read-commit-order definition of Guerraoui–Henzinger–Singh (Section
/// 4.2).
///
/// `T2`'s read of `X` precedes `T3`'s `tryC`, so that definition demands
/// `T2 < T3`; but `T2` then reads `Y = 1`, which only `T3` wrote — the
/// only serialization is `T1 · T3 · T2`.
pub fn fig5() -> History {
    HistoryBuilder::new()
        .committed_writer(t(1), x(), v(1))
        .read(t(2), x(), v(1))
        .write(t(3), x(), v(1))
        .write(t(3), y(), v(1))
        .commit(t(3))
        .read(t(2), y(), v(1))
        .build()
}

/// Figure 6: a du-opaque history that is not TMS2.
///
/// `T1` and `T2` both read `X = 0`; `T1` commits `X = 1` before `T2`
/// invokes `tryC`; `T2` commits `Y = 1`. TMS2's commit-order condition
/// forces `T1 < T2`, making `T2`'s read of 0 illegal; du-opacity is happy
/// with `T2 · T1`.
pub fn fig6() -> History {
    HistoryBuilder::new()
        .read(t(1), x(), v(0))
        .write(t(1), x(), v(1))
        .read(t(2), x(), v(0))
        .commit(t(1))
        .write(t(2), y(), v(1))
        .commit(t(2))
        .build()
}

/// A **reproduction finding**, not a paper figure: the Section 4.2
/// *informal rendering* of TMS2 does **not** imply du-opacity, although the
/// paper conjectures the implication for (full) TMS2.
///
/// `T3` is a live transaction that never invokes `tryC`: it reads `X2 = 2`
/// from `T1` *before* `T1` starts committing — a textbook deferred-update
/// violation. The informal TMS2 condition ("if `X ∈ Wset(T1) ∩ Rset(T2)`
/// and `tryC_1` precedes `tryC_2`, then `T1 < T2`") only constrains
/// transactions that invoke `tryC`, so it says nothing about `T3` and the
/// history passes (the rendering is phrased over final-state
/// serializations, so it does not even imply opacity — the prefix ending
/// at `T3`'s second read is not final-state opaque). The full TMS2
/// automaton validates every read's response against a prefix of
/// *committed* transactions and would reject this history; the gap is in
/// the rendering, not the conjecture.
///
/// Discovered by differential testing of this reproduction (the corpus in
/// `tests/hierarchy.rs`), minimized to two transactions.
pub fn tms2_rendering_gap() -> History {
    HistoryBuilder::new()
        .read(t(3), ObjId::new(2), v(0))
        .inv_read(t(3), x())
        .inv_write(t(1), x(), v(2))
        .resp_ok(t(1))
        .resp_value(t(3), v(2))
        .inv_write(t(3), x(), v(1))
        .read(t(1), y(), v(0))
        .commit(t(1))
        .build()
}

/// All fixed-size figures with their names (Figure 2 is parameterized and
/// therefore excluded).
pub fn all_figures() -> Vec<(&'static str, History)> {
    vec![
        ("Figure 1", fig1()),
        ("Figure 3", fig3()),
        ("Figure 4", fig4()),
        ("Figure 5", fig5()),
        ("Figure 6", fig6()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_core::{
        check_witness, Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity,
        ReadCommitOrderOpacity, Tms2,
    };

    #[test]
    fn fig1_is_du_opaque_with_the_papers_serialization() {
        let h = fig1();
        let verdict = DuOpacity::new().check(&h);
        let w = verdict.witness().expect("Figure 1 is du-opaque");
        assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
        // The paper's serialization is also accepted.
        let papers = duop_core::Witness::new(vec![t(2), t(3), t(1), t(4)], Default::default());
        assert_eq!(check_witness(&h, &papers, CriterionKind::DuOpacity), Ok(()));
    }

    #[test]
    fn fig2_prefixes_are_du_opaque_and_t1_trails_all_readers() {
        for readers in [0, 1, 3, 8, 20] {
            let h = fig2_prefix(readers);
            let verdict = DuOpacity::new().check(&h);
            let w = verdict.witness().unwrap_or_else(|| {
                panic!("Figure 2 prefix with {readers} readers must be du-opaque")
            });
            // T1 commits in every witness (T2 read its value), and every
            // reader of 0 precedes it.
            assert_eq!(w.commit_choice(t(1)), Some(true));
            let p1 = w.position(t(1)).unwrap();
            for i in 0..readers {
                let pi = w.position(t(3 + i as u32)).unwrap();
                assert!(pi < p1, "reader {} after T1", 3 + i);
            }
            assert!(p1 >= readers, "T1's position is unbounded in the limit");
        }
    }

    #[test]
    fn fig2_exhaustive_check_no_witness_places_t1_early() {
        // For a small instance, verify by enumeration that *every* valid
        // witness puts all readers before T1 — the heart of Proposition 1.
        let readers = 3;
        let h = fig2_prefix(readers);
        let ids: Vec<TxnId> = h.txn_ids().collect();
        let mut valid = 0;
        // All permutations of 5 transactions, T1 committed (forced by T2's
        // read); readers and T2 have no commit choice.
        let mut perm = ids.clone();
        permutations(&mut perm, 0, &mut |order: &[TxnId]| {
            let w = duop_core::Witness::new(
                order.to_vec(),
                std::collections::BTreeMap::from([(t(1), true)]),
            );
            if check_witness(&h, &w, CriterionKind::DuOpacity).is_ok() {
                valid += 1;
                let p1 = w.position(t(1)).unwrap();
                for i in 0..readers {
                    assert!(
                        w.position(t(3 + i as u32)).unwrap() < p1,
                        "a witness placed a reader after T1"
                    );
                }
            }
        });
        assert!(valid > 0);
    }

    fn permutations(items: &mut Vec<TxnId>, k: usize, f: &mut impl FnMut(&[TxnId])) {
        if k + 1 >= items.len() {
            f(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permutations(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn fig3_separates_final_state_opacity_from_opacity() {
        let h = fig3();
        assert!(FinalStateOpacity::new().check(&h).is_satisfied());
        assert!(
            FinalStateOpacity::new()
                .check(&h.prefix(FIG3_PREFIX_LEN))
                .is_violated(),
            "the prefix H' must not be final-state opaque"
        );
        assert!(Opacity::new().check(&h).is_violated());
        assert!(DuOpacity::new().check(&h).is_violated());
    }

    #[test]
    fn fig4_separates_opacity_from_du_opacity() {
        let h = fig4();
        assert!(
            Opacity::new().check(&h).is_satisfied(),
            "Figure 4 is opaque"
        );
        assert!(
            DuOpacity::new().check(&h).is_violated(),
            "Figure 4 is not du-opaque"
        );
    }

    #[test]
    fn fig4_papers_final_state_serialization() {
        // The paper: the only final-state serialization is T1 · T3 · T2.
        let h = fig4();
        let w = duop_core::Witness::new(vec![t(1), t(3), t(2)], Default::default());
        assert_eq!(
            check_witness(&h, &w, CriterionKind::FinalStateOpacity),
            Ok(())
        );
        // And it is not a du-witness.
        assert!(check_witness(&h, &w, CriterionKind::DuOpacity).is_err());
    }

    #[test]
    fn fig5_is_du_opaque_but_not_rco() {
        let h = fig5();
        assert!(h.is_sequential(), "Figure 5 is a sequential history");
        let verdict = DuOpacity::new().check(&h);
        assert!(verdict.is_satisfied(), "Figure 5 is du-opaque: {verdict}");
        assert!(
            Opacity::new().check(&h).is_satisfied(),
            "du-opaque implies opaque (Theorem 10)"
        );
        assert!(
            ReadCommitOrderOpacity::new().check(&h).is_violated(),
            "Figure 5 is not opaque per the read-commit-order definition"
        );
        // The paper's (only) serialization.
        let w = duop_core::Witness::new(vec![t(1), t(3), t(2)], Default::default());
        assert_eq!(check_witness(&h, &w, CriterionKind::DuOpacity), Ok(()));
    }

    #[test]
    fn fig6_is_du_opaque_but_not_tms2() {
        let h = fig6();
        assert!(DuOpacity::new().check(&h).is_satisfied());
        assert!(Tms2::new().check(&h).is_violated());
        // The paper's du serialization: T2 · T1.
        let w = duop_core::Witness::new(vec![t(2), t(1)], Default::default());
        assert_eq!(check_witness(&h, &w, CriterionKind::DuOpacity), Ok(()));
    }

    #[test]
    fn tms2_rendering_gap_is_tms2_but_not_du() {
        let h = tms2_rendering_gap();
        assert!(
            Tms2::new().check(&h).is_satisfied(),
            "the informal TMS2 rendering accepts the gap history"
        );
        assert!(
            DuOpacity::new().check(&h).is_violated(),
            "du-opacity rejects the read from a not-yet-committing transaction"
        );
        // The rendering is phrased over final-state serializations: the
        // history is final-state opaque, but not opaque (the prefix ending
        // at T3's second read fails), confirming how coarse the informal
        // condition is.
        assert!(FinalStateOpacity::new().check(&h).is_satisfied());
        assert!(Opacity::new().check(&h).is_violated());
    }

    #[test]
    fn figures_are_well_formed_and_named() {
        let figs = all_figures();
        assert_eq!(figs.len(), 5);
        for (name, h) in figs {
            assert!(!h.is_empty(), "{name} is empty");
        }
    }
}
