//! Prints the full experiment table (E1–E10): the paper's claim next to
//! the measured verdict for every figure and theorem.
//!
//! Usage: `cargo run -p duop-experiments --bin experiments [--quick]`

use duop_experiments::runner::run_all;
use duop_history::render::render_lanes;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Reproduction of \"Safety of Deferred Update in Transactional Memory\"");
    println!("(Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013)\n");

    println!("== The paper's figures ==\n");
    for (name, h) in duop_experiments::figures::all_figures() {
        println!("{name}:");
        print!("{}", render_lanes(&h));
        println!();
    }
    println!("Figure 2 (prefix with 3 readers):");
    print!(
        "{}",
        render_lanes(&duop_experiments::figures::fig2_prefix(3))
    );
    println!();

    println!("== Experiments ==\n");
    let results = run_all(quick);
    let mut failures = 0;
    for r in &results {
        println!(
            "[{}] {} — {}",
            r.id,
            r.title,
            if r.pass { "PASS" } else { "FAIL" }
        );
        println!("    paper:    {}", r.claim);
        println!("    measured: {}", r.measured);
        println!();
        if !r.pass {
            failures += 1;
        }
    }
    println!(
        "{}/{} experiments confirm the paper's claims",
        results.len() - failures,
        results.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
