//! Prints the full experiment table (E1–E10): the paper's claim next to
//! the measured verdict for every figure and theorem.
//!
//! Usage: `cargo run -p duop-experiments --bin experiments [--quick] [--threads N]
//! [--no-decompose] [--no-prelint] [--no-saturate] [--no-ladder] [--deadline MS]`
//!
//! `--threads N` fans the corpus experiments (E7–E9, E11, E13, E14) out
//! over N worker threads (0 = all hardware threads). The reported numbers
//! are identical to the serial run. `--no-decompose` disables the search
//! planner's conflict-graph decomposition in every check (ablation; the
//! verdicts must not change). `--no-prelint` likewise disables the
//! polynomial lint prefilter in every check (ablation; same contract),
//! and `--no-saturate` the certifying must-precede saturation pass
//! (ablation; saturation is sound, so no verdict may change — though
//! E20's agreement sweep runs it explicitly regardless).
//! `--deadline MS` bounds every serialization search by a wall-clock
//! deadline; searches that run out report `unknown (deadline ...)` and
//! the affected experiment fails rather than hangs. `--no-ladder`
//! disables the budget-exhaustion degradation ladder in every check
//! (ablation; the ladder is sound, so no decided verdict may change).

use duop_experiments::runner::run_all_with;
use duop_history::render::render_lanes;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Hidden worker mode: E19's coordinator re-executes this binary as a
    // shard worker. Must run before anything prints to stdout — the
    // worker's stdout is the wire.
    if args.get(1).map(String::as_str) == Some("shard-worker") {
        std::process::exit(duop_shard::worker_main());
    }
    if let Ok(exe) = std::env::current_exe() {
        duop_experiments::runner::set_shard_worker_cmd(vec![
            exe.to_string_lossy().into_owned(),
            "shard-worker".to_owned(),
        ]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--no-decompose") {
        duop_core::set_default_decompose(false);
    }
    if args.iter().any(|a| a == "--no-prelint") {
        duop_core::set_default_prelint(false);
    }
    if args.iter().any(|a| a == "--no-saturate") {
        duop_core::set_default_saturate(false);
    }
    if args.iter().any(|a| a == "--no-ladder") {
        duop_core::set_default_ladder(false);
    }
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" || a == "-j" {
            let n: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads needs a number");
                std::process::exit(2);
            });
            threads = if n == 0 {
                duop_core::available_threads()
            } else {
                n
            };
        }
        if a == "--deadline" {
            let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--deadline needs milliseconds");
                std::process::exit(2);
            });
            duop_core::set_default_deadline(Some(std::time::Duration::from_millis(ms)));
        }
    }

    println!("Reproduction of \"Safety of Deferred Update in Transactional Memory\"");
    println!("(Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013)\n");

    println!("== The paper's figures ==\n");
    for (name, h) in duop_experiments::figures::all_figures() {
        println!("{name}:");
        print!("{}", render_lanes(&h));
        println!();
    }
    println!("Figure 2 (prefix with 3 readers):");
    print!(
        "{}",
        render_lanes(&duop_experiments::figures::fig2_prefix(3))
    );
    println!();

    println!("== Experiments ==\n");
    let results = run_all_with(quick, threads);
    let mut failures = 0;
    for r in &results {
        println!(
            "[{}] {} — {}",
            r.id,
            r.title,
            if r.pass { "PASS" } else { "FAIL" }
        );
        println!("    paper:    {}", r.claim);
        println!("    measured: {}", r.measured);
        println!();
        if !r.pass {
            failures += 1;
        }
    }
    println!(
        "{}/{} experiments confirm the paper's claims",
        results.len() - failures,
        results.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
