//! The experiment suite: every figure and theorem of the paper, re-derived
//! mechanically. Consumed by the `experiments` binary and the integration
//! tests; EXPERIMENTS.md records its output.

use crate::figures;
use duop_core::lemmas::{live_set_reorder, restrict_witness};
use duop_core::unique::{check_unique_writes_fast, has_unique_writes};
use duop_core::{
    check_witness, Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity,
    ReadCommitOrderOpacity, Tms2,
};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::History;
use duop_stm::engines::{DirtyRead, Eager2Pl, NoRec, Tl2};
use duop_stm::{run_workload, Engine, WorkloadConfig};

/// Outcome of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment identifier (E1–E10).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// The paper's claim.
    pub claim: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement confirms the claim.
    pub pass: bool,
}

/// Runs every experiment serially. `quick` trims the statistical sample
/// sizes (used by the integration tests); the binary runs the full sizes.
pub fn run_all(quick: bool) -> Vec<ExperimentResult> {
    run_all_with(quick, 1)
}

/// As [`run_all`], fanning the corpus experiments (E7–E9, E11, E13, E14)
/// out over `threads` workers with [`duop_core::par_map`]. Results are
/// identical to the serial run — per-seed work is independent and is
/// reduced in seed order. The STM experiments (E10, E12) stay serial
/// because their workloads already spawn real threads.
pub fn run_all_with(quick: bool, threads: usize) -> Vec<ExperimentResult> {
    vec![
        e1_fig1(),
        e2_fig2(),
        e3_fig3(),
        e4_fig4(),
        e5_fig5(),
        e6_fig6(),
        e7_theorem11(if quick { 60 } else { 400 }, threads),
        e8_prefix_closure(if quick { 30 } else { 150 }, threads),
        e9_lemma4(if quick { 30 } else { 150 }, threads),
        e10_stm(if quick { 4 } else { 20 }),
        e11_tms2_conjecture(if quick { 80 } else { 300 }, threads),
        e12_pessimistic(if quick { 4 } else { 20 }),
        e13_search_ablation(if quick { 40 } else { 150 }, threads),
        e14_discrimination(if quick { 60 } else { 250 }, threads),
        e15_lint_agreement(if quick { 40 } else { 150 }, threads),
        e16_crash_consistency(if quick { 6 } else { 25 }),
        e17_kill_resume(if quick { 60 } else { 150 }, threads),
        e18_trace_ingestion(quick, threads),
        e19_sharded_equivalence(if quick { 6 } else { 20 }),
        e20_three_way_certified(if quick { 60 } else { 200 }, threads),
        e21_serve_equivalence(if quick { 10 } else { 40 }, threads),
        e22_remote_shard(if quick { 4 } else { 12 }),
    ]
}

/// The command E19 spawns shard workers with. The `experiments` binary
/// registers itself (it carries the `shard-worker` hook at the top of
/// its `main`); embedding test harnesses have no such hook, so when
/// nothing is registered E19 falls back to the sibling `duop` binary in
/// the same target directory.
static SHARD_WORKER_CMD: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();

/// Registers the worker command for [`run_all`]'s sharded-equivalence
/// experiment (first registration wins). The command must speak the
/// shard protocol on stdin/stdout.
pub fn set_shard_worker_cmd(cmd: Vec<String>) {
    let _ = SHARD_WORKER_CMD.set(cmd);
}

fn shard_worker_cmd() -> Option<Vec<String>> {
    if let Some(cmd) = SHARD_WORKER_CMD.get() {
        return Some(cmd.clone());
    }
    // Test harnesses run from target/<profile>/deps/<test-bin>; the CLI
    // binary whose hidden `shard-worker` mode is the canonical worker
    // lives one or two directories up.
    let exe = std::env::current_exe().ok()?;
    let name = format!("duop{}", std::env::consts::EXE_SUFFIX);
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(&name))
        .find(|cand| cand.is_file())
        .map(|path| {
            vec![
                path.to_string_lossy().into_owned(),
                "shard-worker".to_owned(),
            ]
        })
}

/// Maps `f` over the seed range `0..samples` on `threads` workers,
/// returning per-seed rows in seed order.
fn par_seeds<R, F>(samples: u64, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..samples).collect();
    duop_core::par_map(&seeds, threads, |&seed| f(seed))
}

fn verdict_str(sat: bool) -> &'static str {
    if sat {
        "sat"
    } else {
        "viol"
    }
}

fn e1_fig1() -> ExperimentResult {
    let h = figures::fig1();
    let du = DuOpacity::new().check(&h);
    let papers = duop_core::Witness::new(
        vec![2, 3, 1, 4]
            .into_iter()
            .map(duop_history::TxnId::new)
            .collect(),
        Default::default(),
    );
    let papers_ok = check_witness(&h, &papers, CriterionKind::DuOpacity).is_ok();
    let pass = du.is_satisfied() && papers_ok;
    ExperimentResult {
        id: "E1",
        title: "Figure 1",
        claim: "du-opaque, with serialization T2·T3·T1·T4",
        measured: format!(
            "du-opacity {}; paper's witness T2·T3·T1·T4 {}",
            verdict_str(du.is_satisfied()),
            if papers_ok { "validates" } else { "rejected" }
        ),
        pass,
    }
}

fn e2_fig2() -> ExperimentResult {
    let sizes = [1usize, 2, 4, 8, 16, 32];
    let mut all_du = true;
    let mut positions = Vec::new();
    for &n in &sizes {
        let h = figures::fig2_prefix(n);
        match DuOpacity::new().check(&h).witness().cloned() {
            Some(w) => {
                let p1 = w.position(duop_history::TxnId::new(1)).unwrap();
                positions.push(p1);
                if p1 < n {
                    all_du = false;
                }
            }
            None => all_du = false,
        }
    }
    let diverges = positions.windows(2).all(|w| w[1] > w[0]);
    ExperimentResult {
        id: "E2",
        title: "Figure 2 / Proposition 1",
        claim: "every finite prefix du-opaque; T1's witness position is unbounded (no limit serialization)",
        measured: format!(
            "prefixes with {sizes:?} readers all du-opaque: {all_du}; T1 witness positions {positions:?} strictly increase: {diverges}"
        ),
        pass: all_du && diverges,
    }
}

fn e3_fig3() -> ExperimentResult {
    let h = figures::fig3();
    let fso_full = FinalStateOpacity::new().check(&h).is_satisfied();
    let fso_prefix = FinalStateOpacity::new()
        .check(&h.prefix(figures::FIG3_PREFIX_LEN))
        .is_satisfied();
    let opaque = Opacity::new().check(&h).is_satisfied();
    ExperimentResult {
        id: "E3",
        title: "Figure 3",
        claim: "final-state opaque, but its prefix H' is not (FSO is not prefix-closed)",
        measured: format!(
            "H: final-state {}; H' (4 events): final-state {}; opacity {}",
            verdict_str(fso_full),
            verdict_str(fso_prefix),
            verdict_str(opaque)
        ),
        pass: fso_full && !fso_prefix && !opaque,
    }
}

fn e4_fig4() -> ExperimentResult {
    let h = figures::fig4();
    let opaque = Opacity::new().check(&h).is_satisfied();
    let du = DuOpacity::new().check(&h).is_satisfied();
    ExperimentResult {
        id: "E4",
        title: "Figure 4 / Proposition 2, Theorem 10",
        claim: "opaque but not du-opaque (DU-Opacity ⊊ Opacity)",
        measured: format!(
            "opacity {}; du-opacity {}",
            verdict_str(opaque),
            verdict_str(du)
        ),
        pass: opaque && !du,
    }
}

fn e5_fig5() -> ExperimentResult {
    let h = figures::fig5();
    let du = DuOpacity::new().check(&h).is_satisfied();
    let rco = ReadCommitOrderOpacity::new().check(&h).is_satisfied();
    ExperimentResult {
        id: "E5",
        title: "Figure 5",
        claim: "sequential, du-opaque, but not opaque per the read-commit-order definition [6]",
        measured: format!(
            "sequential: {}; du-opacity {}; read-commit-order {}",
            h.is_sequential(),
            verdict_str(du),
            verdict_str(rco)
        ),
        pass: h.is_sequential() && du && !rco,
    }
}

fn e6_fig6() -> ExperimentResult {
    let h = figures::fig6();
    let du = DuOpacity::new().check(&h).is_satisfied();
    let tms2 = Tms2::new().check(&h).is_satisfied();
    ExperimentResult {
        id: "E6",
        title: "Figure 6",
        claim: "du-opaque but not TMS2",
        measured: format!("du-opacity {}; TMS2 {}", verdict_str(du), verdict_str(tms2)),
        pass: du && !tms2,
    }
}

fn e7_theorem11(samples: u64, threads: usize) -> ExperimentResult {
    let cfg = HistoryGenConfig {
        unique_writes: true,
        mode: GenMode::Adversarial,
        ..HistoryGenConfig::small_adversarial()
    };
    // Per seed: (agrees, fast path fell back, du-satisfiable); None when
    // the generated history is outside the unique-writes regime.
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(cfg.clone(), seed).generate();
        if !has_unique_writes(&h) {
            return None;
        }
        let opaque = Opacity::new().check(&h).is_satisfied();
        let du = DuOpacity::new().check(&h).is_satisfied();
        let (fast, stats) = check_unique_writes_fast(&h);
        Some((
            opaque == du && fast.is_satisfied() == du,
            stats.fell_back,
            du,
        ))
    });
    let total = rows.iter().flatten().count() as u64;
    let agree = rows.iter().flatten().filter(|r| r.0).count() as u64;
    let fallbacks = rows.iter().flatten().filter(|r| r.1).count() as u64;
    let sat = rows.iter().flatten().filter(|r| r.2).count() as u64;
    ExperimentResult {
        id: "E7",
        title: "Theorem 11 (unique writes)",
        claim: "under unique writes, Opacity = DU-Opacity; fast path agrees with search",
        measured: format!(
            "{agree}/{total} histories agree across opacity, du-opacity and the fast path ({sat} satisfiable, {fallbacks} fast-path fallbacks)"
        ),
        pass: total > 0 && agree == total,
    }
}

fn e8_prefix_closure(samples: u64, threads: usize) -> ExperimentResult {
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate();
        let Some(w) = DuOpacity::new().check(&h).witness().cloned() else {
            return (0u64, false);
        };
        let mut checked = 0u64;
        let mut ok = true;
        for i in 0..=h.len() {
            let prefix = h.prefix(i);
            let restricted = restrict_witness(&h, &w, i);
            if check_witness(&prefix, &restricted, CriterionKind::DuOpacity).is_err() {
                ok = false;
            }
            checked += 1;
        }
        (checked, ok)
    });
    let checked: u64 = rows.iter().map(|r| r.0).sum();
    let ok = rows.iter().all(|r| r.1);
    ExperimentResult {
        id: "E8",
        title: "Lemma 1 / Corollary 2 (prefix-closure)",
        claim: "the restriction of a du-serialization serializes every prefix",
        measured: format!("{checked} prefix witnesses constructed and validated"),
        pass: ok && checked > 0,
    }
}

fn e9_lemma4(samples: u64, threads: usize) -> ExperimentResult {
    let cfg = HistoryGenConfig {
        stall_prob: 0.0,
        ..HistoryGenConfig::small_simulated()
    };
    // Per seed: Some(lemma holds); None when the history is incomplete.
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(cfg.clone(), seed).generate();
        if !h.is_complete() {
            return None;
        }
        let Some(w) = DuOpacity::new().check(&h).witness().cloned() else {
            return Some(false);
        };
        let reordered = live_set_reorder(&h, &w);
        let mut ok = check_witness(&h, &reordered, CriterionKind::DuOpacity).is_ok();
        let ids: Vec<_> = h.txn_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a != b
                    && h.precedes_ls(a, b)
                    && reordered.position(a).unwrap() >= reordered.position(b).unwrap()
                {
                    ok = false;
                }
            }
        }
        Some(ok)
    });
    let checked = rows.iter().flatten().count() as u64;
    let ok = rows.iter().flatten().all(|&b| b);
    ExperimentResult {
        id: "E9",
        title: "Lemma 4 (live-set reordering)",
        claim: "on complete histories, serializations can be reordered to respect ≺LS",
        measured: format!("{checked} witnesses reordered and revalidated"),
        pass: ok && checked > 0,
    }
}

fn e11_tms2_conjecture(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::tms2_automaton::{check_tms2_automaton, replay};

    // The conjecture, against its actual subject: every history accepted
    // by the full TMS2 automaton must be du-opaque.
    // Per seed: (accepted, replayed, du-holds) over both generator modes.
    let rows = par_seeds(samples, threads, |seed| {
        let mut acc = (0u64, 0u64, 0u64);
        for cfg in [
            HistoryGenConfig::small_adversarial(),
            HistoryGenConfig::small_simulated(),
        ] {
            let h = HistoryGen::new(cfg, seed).generate();
            let verdict = check_tms2_automaton(&h, Some(2_000_000));
            if let Some(exec) = verdict.execution() {
                acc.0 += 1;
                if replay(&h, exec).is_ok() {
                    acc.1 += 1;
                }
                if DuOpacity::new().check(&h).is_satisfied() {
                    acc.2 += 1;
                }
            }
        }
        acc
    });
    let accepted: u64 = rows.iter().map(|r| r.0).sum();
    let replayed: u64 = rows.iter().map(|r| r.1).sum();
    let du_holds: u64 = rows.iter().map(|r| r.2).sum();
    // The rendering gap: the informal Section 4.2 condition accepts a
    // history the automaton (and du-opacity) rejects.
    let gap = figures::tms2_rendering_gap();
    let rendering_accepts = Tms2::new().check(&gap).is_satisfied();
    let automaton_rejects = !check_tms2_automaton(&gap, None).is_accepted();
    let du_rejects = DuOpacity::new().check(&gap).is_violated();
    let fig6_rejected = !check_tms2_automaton(&figures::fig6(), None).is_accepted();

    let pass = accepted > 0
        && du_holds == accepted
        && replayed == accepted
        && rendering_accepts
        && automaton_rejects
        && du_rejects
        && fig6_rejected;
    ExperimentResult {
        id: "E11",
        title: "TMS2 conjecture (Section 4.2), via the full automaton",
        claim: "every TMS2 history is du-opaque (conjectured); Figure 6 is not TMS2",
        measured: format!(
            "full-automaton checker: {accepted} corpus histories accepted, {du_holds} du-opaque, {replayed} certificates replay; Figure 6 rejected by the automaton: {fig6_rejected}; the informal rendering's gap history is accepted by the rendering ({rendering_accepts}) but rejected by the automaton ({automaton_rejects}) and by du-opacity ({du_rejects})"
        ),
        pass,
    }
}

fn e14_discrimination(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::tms2_automaton::check_tms2_automaton;

    // How often do the criteria actually disagree? Satisfaction rates over
    // an adversarial corpus, ordered by strictness. The counts quantify
    // the hierarchy the figures establish pointwise.
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        [
            duop_core::StrictSerializability::new()
                .check(&h)
                .is_satisfied(),
            FinalStateOpacity::new().check(&h).is_satisfied(),
            Opacity::new().check(&h).is_satisfied(),
            DuOpacity::new().check(&h).is_satisfied(),
            ReadCommitOrderOpacity::new().check(&h).is_satisfied(),
            check_tms2_automaton(&h, Some(2_000_000)).is_accepted(),
        ]
    });
    let n = rows.len() as u64;
    let mut sat = [0u64; 6]; // strict, fso, opacity, du, rco, tms2-automaton
    for row in &rows {
        for (slot, v) in sat.iter_mut().zip(row) {
            if *v {
                *slot += 1;
            }
        }
    }
    // Monotone non-increasing along strict ⊇ fso ⊇ opacity ⊇ du ⊇ rco and
    // du ⊇ tms2-automaton (on this corpus).
    let monotone = sat[0] >= sat[1]
        && sat[1] >= sat[2]
        && sat[2] >= sat[3]
        && sat[3] >= sat[4]
        && sat[3] >= sat[5];
    ExperimentResult {
        id: "E14",
        title: "Criterion discrimination rates",
        claim: "the hierarchy strict ⊇ FSO ⊇ opacity ⊇ du ⊇ RCO (and du ⊇ TMS2) holds pointwise",
        measured: format!(
            "satisfaction over {n} adversarial histories: strict {}, final-state {}, opacity {}, du {}, rco {}, tms2-automaton {}; monotone: {monotone}",
            sat[0], sat[1], sat[2], sat[3], sat[4], sat[5]
        ),
        pass: monotone && n > 0,
    }
}

fn e13_search_ablation(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::SearchConfig;

    // Quantify the two design choices DESIGN.md calls out: failed-state
    // memoization and forward feasibility pruning. Compare explored-state
    // counts with memoization on vs off across a mixed corpus, and count
    // the work the dead-end pruner saves on Figure-2-style histories.
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let on = DuOpacity::with_config(SearchConfig {
            memo: true,
            ..SearchConfig::default()
        })
        .check_with_stats(&h);
        let off = DuOpacity::with_config(SearchConfig {
            memo: false,
            max_states: Some(2_000_000),
            ..SearchConfig::default()
        })
        .check_with_stats(&h);
        let agree = matches!(off.0, duop_core::Verdict::Unknown { .. })
            || on.0.is_satisfied() == off.0.is_satisfied();
        (on.1, off.1, agree)
    });
    let explored_on: u64 = rows.iter().map(|r| r.0.explored).sum();
    let explored_off: u64 = rows.iter().map(|r| r.1.explored).sum();
    let memo_hits: u64 = rows.iter().map(|r| r.0.memo_hits).sum();
    let dead_ends: u64 = rows.iter().map(|r| r.0.dead_ends).sum();
    let agree = rows.iter().all(|r| r.2);
    // The dead-end pruner is what makes Figure 2 linear; measure it.
    let fig2 = figures::fig2_prefix(64);
    let (v, fig2_stats) = DuOpacity::new().check_with_stats(&fig2);
    let fig2_linear = v.is_satisfied() && fig2_stats.explored <= 4 * (fig2.txn_count() as u64);

    ExperimentResult {
        id: "E13",
        title: "Search ablation (memoization + dead-end pruning)",
        claim: "design choices in DESIGN.md §6: lossless memoization and feasibility pruning keep the NP-hard search practical",
        measured: format!(
            "du-opacity over {samples} adversarial histories: {explored_on} states with memo vs {explored_off} without ({memo_hits} memo hits, {dead_ends} dead-end prunes); verdicts agree: {agree}; Figure 2 with 64 readers explored {} states for {} transactions (linear: {fig2_linear})",
            fig2_stats.explored,
            fig2.txn_count(),
        ),
        pass: agree && explored_on <= explored_off && fig2_linear,
    }
}

fn e15_lint_agreement(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::lint::{lint, LintScope};
    use duop_core::SearchConfig;

    // The lint soundness contract, measured: whenever an Error-severity
    // diagnostic refutes a criterion scope, the full (prelint-off) search
    // for that criterion must say Violated; and turning the prefilter on
    // must never change any is_satisfied answer.
    let no_prelint = || SearchConfig {
        prelint: false,
        ..SearchConfig::default()
    };
    let with_prelint = || SearchConfig {
        prelint: true,
        ..SearchConfig::default()
    };
    let rows = par_seeds(samples, threads, |seed| {
        let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let report = lint(&h);
        let mut sound = true;
        let mut agree = true;
        let mut refuted = 0u64;
        type ScopedPair = (LintScope, Box<dyn Criterion>, Box<dyn Criterion>);
        let checks: [ScopedPair; 3] = [
            (
                LintScope::Du,
                Box::new(DuOpacity::with_config(no_prelint())),
                Box::new(DuOpacity::with_config(with_prelint())),
            ),
            (
                LintScope::Rco,
                Box::new(ReadCommitOrderOpacity::with_config(no_prelint())),
                Box::new(ReadCommitOrderOpacity::with_config(with_prelint())),
            ),
            (
                LintScope::Tms2,
                Box::new(Tms2::with_config(no_prelint())),
                Box::new(Tms2::with_config(with_prelint())),
            ),
        ];
        for (scope, off, on) in checks {
            let off_verdict = off.check(&h);
            let on_verdict = on.check(&h);
            agree &= off_verdict.is_satisfied() == on_verdict.is_satisfied();
            if report.first_error_for(scope).is_some() {
                refuted += 1;
                sound &= off_verdict.is_violated();
            }
        }
        (sound, agree, refuted)
    });
    let sound = rows.iter().all(|r| r.0);
    let agree = rows.iter().all(|r| r.1);
    let refuted: u64 = rows.iter().map(|r| r.2).sum();
    let total = samples * 3;

    ExperimentResult {
        id: "E15",
        title: "Lint-vs-search agreement (prefilter soundness)",
        claim: "every Error-severity lint rule is a necessary condition: lint refutations imply search violations, and the prefilter changes no verdict",
        measured: format!(
            "{samples} adversarial histories x 3 criteria (du, rco, tms2): {refuted}/{total} checks lint-refuted; every refutation confirmed by the full search: {sound}; prelint on/off verdicts agree: {agree}"
        ),
        pass: sound && agree && refuted > 0,
    }
}

fn e12_pessimistic(runs: u64) -> ExperimentResult {
    use duop_stm::engines::{Dstm, Pessimistic};

    // DSTM (stamp-validated, deferred update): du-opaque in every run.
    let mut dstm_du = true;
    for seed in 0..runs {
        let engine = Dstm::new(6);
        let cfg = WorkloadConfig {
            threads: 4,
            txns_per_thread: 10,
            ops_per_txn: (1, 4),
            read_ratio: 0.6,
            unique_values: false,
            max_attempts: 3,
            yield_between_ops: false,
            seed,
        };
        let (h, _) = run_workload(&engine, &cfg);
        dstm_du &= DuOpacity::new().check(&h).is_satisfied();
    }

    // Pessimistic (no-abort, in-place): never aborts, and contended runs
    // produce du-opacity violations — the paper's Section 5 claim.
    let mut caught = 0u64;
    let mut hunted = 0u64;
    let mut aborts = 0usize;
    for seed in 0..200u64 {
        hunted += 1;
        let engine = Pessimistic::new(2);
        let cfg = WorkloadConfig {
            threads: 8,
            txns_per_thread: 12,
            ops_per_txn: (2, 5),
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 1,
            yield_between_ops: true,
            seed,
        };
        let (h, stats) = run_workload(&engine, &cfg);
        aborts += stats.aborted;
        if DuOpacity::new().check(&h).is_violated() {
            caught += 1;
            if caught >= runs {
                break;
            }
        }
    }

    ExperimentResult {
        id: "E12",
        title: "DSTM + pessimistic STM (Section 5)",
        claim: "DSTM is du-opaque; the pessimistic no-abort STM [1] is not du-opaque",
        measured: format!(
            "DSTM du-opaque in {runs}/{runs} runs: {dstm_du}; pessimistic engine: {aborts} aborts (never aborts), {caught} du-opacity violations caught across {hunted} contended runs"
        ),
        pass: dstm_du && aborts == 0 && caught > 0,
    }
}

fn e10_stm(runs: u64) -> ExperimentResult {
    let mut lines = Vec::new();
    let mut pass = true;

    let check_engine =
        |engine: &dyn Engine, unique: bool, seed: u64| -> (bool, bool, usize, usize) {
            let cfg = WorkloadConfig {
                threads: 4,
                txns_per_thread: 10,
                ops_per_txn: (1, 4),
                read_ratio: 0.6,
                unique_values: unique,
                max_attempts: 3,
                yield_between_ops: false,
                seed,
            };
            let (h, stats) = run_workload(engine, &cfg);
            let du = DuOpacity::new().check(&h).is_satisfied();
            let fso = FinalStateOpacity::new().check(&h).is_satisfied();
            (du, fso, stats.committed, stats.aborted)
        };

    // TL2 and eager 2PL: du-opaque in every run.
    type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;
    let factories: Vec<(&str, EngineFactory)> = vec![
        ("TL2", Box::new(|| Box::new(Tl2::new(6)))),
        ("eager 2PL", Box::new(|| Box::new(Eager2Pl::new(6)))),
    ];
    for (name, make) in factories {
        let mut du_all = true;
        let mut committed = 0usize;
        let mut aborted = 0usize;
        for seed in 0..runs {
            let engine = make();
            let (du, _, c, a) = check_engine(engine.as_ref(), false, seed);
            du_all &= du;
            committed += c;
            aborted += a;
        }
        lines.push(format!(
            "{name}: du-opaque {}/{} runs ({committed} commits, {aborted} aborts)",
            if du_all { runs } else { 0 },
            runs
        ));
        pass &= du_all;
    }

    // NOrec: du-opaque with unique values; final-state opaque always; the
    // ABA regime (small value domain) may lose du-opacity.
    {
        let mut du_unique = true;
        let mut fso_all = true;
        let mut aba_du_violations = 0u64;
        for seed in 0..runs {
            let engine = NoRec::new(6);
            let (du, _, _, _) = check_engine(&engine, true, seed);
            du_unique &= du;
            let engine = NoRec::new(2);
            let (du_aba, fso, _, _) = check_engine(&engine, false, seed);
            fso_all &= fso;
            if !du_aba {
                aba_du_violations += 1;
            }
        }
        lines.push(format!(
            "NOrec: du-opaque with unique values {}/{} runs; final-state opaque {}/{} runs; ABA regime lost du-opacity in {aba_du_violations} runs",
            if du_unique { runs } else { 0 },
            runs,
            if fso_all { runs } else { 0 },
            runs,
        ));
        pass &= du_unique && fso_all;
    }

    // Dirty-read: violations must be caught. The interleaving is
    // timing-dependent, so hunt across seeds (yielding between operations
    // to widen race windows) until one surfaces.
    {
        let mut caught = 0u64;
        let mut hunted = 0u64;
        for seed in 0..200u64 {
            hunted += 1;
            let engine = DirtyRead::new(1);
            let cfg = WorkloadConfig {
                threads: 8,
                txns_per_thread: 16,
                ops_per_txn: (3, 6),
                read_ratio: 0.5,
                unique_values: true,
                max_attempts: 1,
                yield_between_ops: true,
                seed,
            };
            let (h, _) = run_workload(&engine, &cfg);
            if DuOpacity::new().check(&h).is_violated() {
                caught += 1;
                if caught >= runs {
                    break;
                }
            }
        }
        lines.push(format!(
            "dirty-read: {caught} du-opacity violations caught across {hunted} contended runs"
        ));
        pass &= caught > 0;
    }

    ExperimentResult {
        id: "E10",
        title: "STM engines (Section 5 discussion)",
        claim: "deferred-update engines produce du-opaque histories; the unsafe engine is rejected",
        measured: lines.join(" | "),
        pass,
    }
}

/// E16: crash consistency under deterministic fault injection. Every
/// fault-injected run of the five safe engines must record a du-opaque
/// history — and, by Lemma 1, so must every prefix of it (crashes leave
/// pending operations and commit-pending transactions dangling, which is
/// exactly what prefixes exercise) — while the dirty engine's leaked
/// in-place writes are refuted. Every verdict must be decided: a crash
/// must never push the checker into `Unknown`.
fn e16_crash_consistency(runs: u64) -> ExperimentResult {
    use duop_stm::engines::{Dstm, Pessimistic};
    use duop_stm::{run_workload_faulted, FaultPlan};

    let plan = FaultPlan::parse("abort=0.08,crash=0.08,delay=0.05,thread-crash=0.3")
        .expect("spec is valid");
    // Single worker thread: the run (and any finding) replays exactly
    // from the seed, and the pessimistic engine — which is only unsafe
    // under contention — is expected to stay du-opaque here.
    let cfg = |seed| WorkloadConfig {
        threads: 1,
        txns_per_thread: 12,
        ops_per_txn: (1, 4),
        read_ratio: 0.6,
        unique_values: true,
        max_attempts: 3,
        yield_between_ops: false,
        seed,
    };

    type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;
    let safe: Vec<(&str, EngineFactory)> = vec![
        ("TL2", Box::new(|| Box::new(Tl2::new(5)))),
        ("NOrec", Box::new(|| Box::new(NoRec::new(5)))),
        ("DSTM", Box::new(|| Box::new(Dstm::new(5)))),
        ("eager 2PL", Box::new(|| Box::new(Eager2Pl::new(5)))),
        ("pessimistic", Box::new(|| Box::new(Pessimistic::new(5)))),
    ];
    let mut safe_ok = true;
    let mut histories = 0u64;
    let mut prefixes = 0u64;
    let mut crashed = 0usize;
    let mut undecided = 0u64;
    for (_, make) in &safe {
        for seed in 0..runs {
            let engine = make();
            let (h, stats) =
                run_workload_faulted(engine.as_ref(), &cfg(seed), &plan.with_seed(seed));
            crashed += stats.crashed;
            let verdict = DuOpacity::new().check(&h);
            if matches!(verdict, duop_core::Verdict::Unknown { .. }) {
                undecided += 1;
            }
            let Some(w) = verdict.witness().cloned() else {
                safe_ok = false;
                continue;
            };
            histories += 1;
            for i in 0..=h.len() {
                let prefix = h.prefix(i);
                let restricted = restrict_witness(&h, &w, i);
                if check_witness(&prefix, &restricted, CriterionKind::DuOpacity).is_err() {
                    safe_ok = false;
                }
                prefixes += 1;
            }
        }
    }

    // The negative control: under the same faults the dirty engine leaks
    // in-place writes of crashed transactions, and the checker must say so.
    let mut dirty_refuted = 0u64;
    for seed in 0..runs.max(20) {
        let engine = DirtyRead::new(5);
        let (h, _) = run_workload_faulted(&engine, &cfg(seed), &plan.with_seed(seed));
        let verdict = DuOpacity::new().check(&h);
        if matches!(verdict, duop_core::Verdict::Unknown { .. }) {
            undecided += 1;
        }
        if verdict.is_violated() {
            dirty_refuted += 1;
        }
    }

    let pass = safe_ok && histories > 0 && crashed > 0 && dirty_refuted > 0 && undecided == 0;
    ExperimentResult {
        id: "E16",
        title: "Crash consistency under fault injection",
        claim: "deferred-update engines stay du-opaque (all prefixes included) under injected aborts and crashes; the dirty engine is refuted; every verdict is decided",
        measured: format!(
            "{histories} fault-injected histories du-opaque across 5 engines ({crashed} crashed attempts); {prefixes} prefix witnesses validated; dirty engine refuted in {dirty_refuted} runs; {undecided} undecided verdicts"
        ),
        pass,
    }
}

/// E17: kill/resume equivalence for the anytime checker. Every (seed,
/// kill-point) pair simulates a mid-flight death — a budgeted
/// [`ResumableCheck`] that trips, exports its decided component
/// fragments (a sample of them round-tripped through the real snapshot
/// file format), and resumes in a fresh driver with the budget lifted.
/// The resumed verdict must equal the uninterrupted run's on every pair,
/// and on at least one multi-component pair the resumed search must
/// explore strictly fewer states than from scratch (cached fragments
/// replay instead of re-searching). A real SIGKILL + `duop resume` of
/// the same pipeline runs in CI; this experiment covers the state-space
/// contract at corpus scale.
fn e17_kill_resume(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::snapshot::{
        load, save, CheckSnapshot, CheckableCriterion, InFlight, ResumableCheck, Snapshot,
    };
    use duop_core::{SearchConfig, Verdict};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    // Sequential planned engine (fragments flow through it), prelint off
    // (every pair actually searches) and ladder off (the budget genuinely
    // trips instead of being soundly rescued).
    let cfg = |max_states: Option<u64>| SearchConfig {
        prelint: false,
        ladder: false,
        max_states,
        ..SearchConfig::default()
    };

    // Fully concurrent independent write/read clusters on distinct
    // objects: guaranteed multi-component, so a tripped budget has
    // decided fragments to carry across the kill.
    let multi_cluster = |clusters: u64, seed: u64| {
        let mut b = HistoryBuilder::new();
        for c in 0..clusters {
            let writer = TxnId::new((2 * c + 1) as u32);
            let val = Value::new(seed * 10 + c + 1);
            b = b
                .inv_write(writer, ObjId::new(c as u32), val)
                .resp_ok(writer);
        }
        for c in 0..clusters {
            b = b.inv_try_commit(TxnId::new((2 * c + 1) as u32));
        }
        for c in 0..clusters {
            let reader = TxnId::new((2 * c + 2) as u32);
            let val = Value::new(seed * 10 + c + 1);
            b = b.read(reader, ObjId::new(c as u32), val);
        }
        for c in 0..clusters {
            b = b.commit(TxnId::new((2 * c + 2) as u32));
        }
        b.build()
    };

    // Per seed: rows of (verdict_equal, resumed_explored, fresh_explored,
    // fragments_carried, roundtripped).
    let rows = par_seeds(samples, threads, |seed| {
        let h = match seed % 4 {
            0 => multi_cluster(2 + seed % 3, seed),
            1 => HistoryGen::new(HistoryGenConfig::small_simulated(), seed).generate(),
            _ => HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate(),
        };
        let (truth, fresh_stats) =
            ResumableCheck::new().check(&h, CheckableCriterion::DuOpacity, &cfg(None));
        if matches!(truth, Verdict::Unknown { .. }) {
            return Vec::new();
        }
        // Kill points: budgets strictly below the uninterrupted explored
        // count, so the budgeted attempt is guaranteed to die mid-search.
        let mut kills = vec![
            1u64,
            fresh_stats.explored / 2,
            fresh_stats.explored.saturating_sub(1),
        ];
        kills.sort_unstable();
        kills.dedup();
        let mut out = Vec::new();
        for &budget in kills.iter().filter(|&&b| b > 0 && b < fresh_stats.explored) {
            let mut killed = ResumableCheck::new();
            let (v1, _) = killed.check(&h, CheckableCriterion::DuOpacity, &cfg(Some(budget)));
            if !matches!(v1, Verdict::Unknown { .. }) {
                // Memoization can decide under a budget the unbudgeted
                // run exceeded; that is not a kill, skip the pair.
                continue;
            }
            let mut fragments = killed.fragments();
            let carried = !fragments.is_empty();

            // A sample of pairs round-trips the fragments through the
            // real checkpoint file format (save → load → resume).
            let mut roundtripped = false;
            if seed % 3 == 0 && budget == 1 {
                let path =
                    std::env::temp_dir().join(format!("duop-e17-{}-{seed}.ck", std::process::id()));
                let path = path.to_string_lossy().into_owned();
                let snap = Snapshot::Check(CheckSnapshot {
                    events: h.events().to_vec(),
                    criteria: vec!["du".to_string()],
                    format: "text".to_string(),
                    max_states: budget,
                    escalate_milli: 2000,
                    current: Some(InFlight {
                        name: "du".to_string(),
                        explored: budget,
                        fragments: fragments.clone(),
                    }),
                    ..CheckSnapshot::default()
                });
                if save(&path, &snap).is_ok() {
                    if let Ok(Snapshot::Check(cs)) = load(&path) {
                        if let Some(current) = cs.current {
                            fragments = current.fragments;
                            roundtripped = true;
                        }
                    }
                    let _ = std::fs::remove_file(&path);
                }
            }

            let mut resumed = ResumableCheck::new();
            resumed.preload(fragments);
            let (v2, resumed_stats) = resumed.check(&h, CheckableCriterion::DuOpacity, &cfg(None));
            let equal = v2.is_satisfied() == truth.is_satisfied()
                && v2.is_violated() == truth.is_violated();
            out.push((
                equal,
                resumed_stats.explored,
                fresh_stats.explored,
                carried,
                roundtripped,
            ));
        }
        out
    });

    let pairs: Vec<_> = rows.into_iter().flatten().collect();
    let total = pairs.len() as u64;
    let equal = pairs.iter().filter(|p| p.0).count() as u64;
    let strictly_below = pairs.iter().filter(|p| p.1 < p.2).count() as u64;
    let carried = pairs.iter().filter(|p| p.3).count() as u64;
    let roundtripped = pairs.iter().filter(|p| p.4).count() as u64;
    let pass = total >= 50 && equal == total && strictly_below >= 1 && roundtripped >= 1;
    ExperimentResult {
        id: "E17",
        title: "Kill/resume equivalence (anytime checking)",
        claim: "resuming a killed check from its checkpoint reaches the uninterrupted verdict, reusing decided components",
        measured: format!(
            "{equal}/{total} (seed, kill-point) pairs resume to the uninterrupted verdict; {carried} carried decided fragments across the kill ({roundtripped} via the on-disk snapshot format); resumed search explored strictly fewer states on {strictly_below} pairs"
        ),
        pass,
    }
}

fn e18_trace_ingestion(quick: bool, threads: usize) -> ExperimentResult {
    use duop_history::trace::{format_trace, to_json};
    use duop_history::{binary, reader};
    use std::time::Instant;

    // The generator emits ~9 events per transaction, so the full run
    // ingests a ~10^6-event trace; quick trims it for the test suite.
    let txns = if quick { 2_048 } else { 110_000 };
    let h = HistoryGen::new(HistoryGenConfig::large_streaming().with_txns(txns), 42).generate();
    let n = h.events().len();
    let text = format_trace(&h).into_bytes();
    let bin = binary::encode(&h);

    // Wall-clock ingestion (format sniff + parse + validation), best of
    // three; decoding to the identical history is the lossless check and
    // — verdicts being a function of the history — verdict agreement for
    // the large trace.
    let best_of = |bytes: &[u8]| -> (u64, bool) {
        let mut best = u64::MAX;
        let mut identical = true;
        for _ in 0..3 {
            let start = Instant::now();
            let parsed = reader::read_history(bytes);
            best = best.min(start.elapsed().as_nanos() as u64);
            identical &= parsed.map(|p| p == h).unwrap_or(false);
        }
        (best, identical)
    };
    let (text_ns, text_id) = best_of(&text);
    let (bin_ns, bin_id) = best_of(&bin);
    let speedup = text_ns as f64 / bin_ns as f64;

    // Verdict agreement, measured rather than argued: adversarial
    // histories (a mix of du-opaque and violating) must get the same
    // du-opacity verdict from every encoding.
    let agree_samples = if quick { 8 } else { 30 };
    let agreed = par_seeds(agree_samples, threads, |seed| {
        let g = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
        let truth = DuOpacity::new().check(&g).is_satisfied();
        [
            format_trace(&g).into_bytes(),
            to_json(&g).into_bytes(),
            binary::encode(&g),
        ]
        .iter()
        .all(|bytes| {
            let p = reader::read_history(bytes).expect("lossless encodings round-trip");
            DuOpacity::new().check(&p).is_satisfied() == truth
        })
    })
    .into_iter()
    .filter(|&a| a)
    .count();

    // The streaming monitor's memory high-water mark (peak resident
    // events — the process-RSS proxy the checker can measure exactly)
    // must stay below full materialization.
    let mon_txns = if quick { 256 } else { 1024 };
    let mh = HistoryGen::new(HistoryGenConfig::large_streaming().with_txns(mon_txns), 7).generate();
    let mbin = binary::encode(&mh);
    let mut rd = reader::TraceReader::new(&mbin).expect("valid binary trace");
    let mut mon = duop_core::online::OnlineChecker::new();
    mon.set_compact_every(Some(256));
    while let Some(ev) = rd.next_event().expect("valid binary trace") {
        let v = mon.push(ev).expect("generator histories are well-formed");
        assert!(!v.is_violated(), "simulated-mode trace must stay du-opaque");
    }
    let peak = mon.stats().peak_resident_events;
    let bounded = peak < mh.len();

    let pass = text_id
        && bin_id
        && agreed == agree_samples as usize
        && bounded
        && (quick || speedup >= 3.0);
    ExperimentResult {
        id: "E18",
        title: "Trace ingestion: binary vs text, streaming memory",
        claim: "binary and text encodings are verdict-identical; binary ingests >=3x faster; streaming+compaction bounds resident memory",
        measured: format!(
            "{n}-event trace: text {:.1} ms / binary {:.1} ms ({speedup:.1}x), both decode to the identical history ({}); du verdicts agree across text/json/binary on {agreed}/{agree_samples} adversarial histories; streaming monitor peak {peak}/{} resident events",
            text_ns as f64 / 1e6,
            bin_ns as f64 / 1e6,
            if text_id && bin_id { "lossless" } else { "MISMATCH" },
            mh.len(),
        ),
        pass,
    }
}

fn e19_sharded_equivalence(samples: u64) -> ExperimentResult {
    use duop_core::{check_criterion_with_stats, PlanCriterion, SearchConfig};
    use duop_shard::{run_sharded, ShardConfig, ShardCriterion, ShardJob, KILL_TASK_ENV};

    let Some(worker_cmd) = shard_worker_cmd() else {
        // No process to re-exec as a worker (e.g. a bare library build):
        // nothing to measure, nothing to claim.
        return ExperimentResult {
            id: "E19",
            title: "Sharded checking: distributed == in-process verdicts",
            claim: "the multi-process pipeline returns the exact in-process verdict, even across injected worker deaths",
            measured: "skipped: no shard-worker binary reachable from this process".to_owned(),
            pass: true,
        };
    };
    let shard_cfg = |worker_env: Vec<(String, String)>| ShardConfig {
        workers: 2,
        worker_cmd: worker_cmd.clone(),
        worker_env,
        ..ShardConfig::default()
    };
    let local_cfg = SearchConfig {
        prelint: true,
        ladder: true,
        decompose: true,
        ..SearchConfig::default()
    };
    let criteria = [
        PlanCriterion::Du,
        PlanCriterion::FinalState,
        PlanCriterion::Rco,
    ];

    // Per seed: one du-opaque-by-construction history and one adversarial
    // history, each checked under three criteria by the worker pool and
    // in-process; then the du check repeated with the first dispatched
    // task's worker killed (fault-injection hook), which must re-queue
    // and still produce the identical verdict.
    let mut compared = 0u64;
    let mut equal = 0u64;
    let mut killed_equal = 0u64;
    let mut satisfied = 0u64;
    for seed in 0..samples {
        let histories = [
            HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(24), seed).generate(),
            HistoryGen::new(
                HistoryGenConfig {
                    txns: 16,
                    objs: 4,
                    mode: GenMode::Adversarial,
                    ..HistoryGenConfig::medium_simulated()
                },
                seed,
            )
            .generate(),
        ];
        for h in &histories {
            let jobs: Vec<ShardJob> = criteria
                .iter()
                .map(|&c| ShardJob {
                    history: h.clone(),
                    criterion: ShardCriterion::Plan(c),
                })
                .collect();
            let Ok(verdicts) = run_sharded(jobs, &shard_cfg(Vec::new())) else {
                compared += criteria.len() as u64;
                continue;
            };
            for (&c, distributed) in criteria.iter().zip(&verdicts) {
                let (local, _) = check_criterion_with_stats(h, c, &local_cfg);
                compared += 1;
                if *distributed == local {
                    equal += 1;
                }
                if local.is_satisfied() {
                    satisfied += 1;
                }
            }
        }

        // Injected worker death on the very first task of a du check.
        let h = &histories[0];
        let (local, _) = check_criterion_with_stats(h, PlanCriterion::Du, &local_cfg);
        let killer = shard_cfg(vec![(KILL_TASK_ENV.to_owned(), "0".to_owned())]);
        let survived = run_sharded(
            vec![ShardJob {
                history: h.clone(),
                criterion: ShardCriterion::Plan(PlanCriterion::Du),
            }],
            &killer,
        );
        if survived.map(|v| v[0] == local).unwrap_or(false) {
            killed_equal += 1;
        }
    }

    let pass = equal == compared && killed_equal == samples && satisfied > 0;
    ExperimentResult {
        id: "E19",
        title: "Sharded checking: distributed == in-process verdicts",
        claim: "the multi-process pipeline returns the exact in-process verdict, even across injected worker deaths",
        measured: format!(
            "{equal}/{compared} verdicts identical (3 criteria x {samples} seeds x {{du-opaque, adversarial}}, {satisfied} satisfied); {killed_equal}/{samples} identical after killing the worker holding the first task"
        ),
        pass,
    }
}

/// E20: three-way agreement between the certifying saturation pass, the
/// backtracking search, and the full TMS2 automaton, over the anomaly
/// catalogue plus generated corpora under uniform, Zipfian, and hotspot
/// key distributions.
///
/// The contract being measured:
///
/// 1. Whenever saturation is decisive for a saturable criterion, the
///    search (both prefilters off, so the comparison is independent)
///    reaches the same verdict.
/// 2. Every saturation refutation carries a certificate that
///    [`duop_core::check_certificate`] independently validates against
///    the criterion-prepared history.
/// 3. Every certified du-opacity refutation is also rejected by the full
///    TMS2 automaton — the contrapositive of the E11 inclusion (every
///    automaton-accepted history is du-opaque). The Section 4.2
///    *rendering* is incomparable with the automaton (its commit-order
///    condition also binds aborted readers), so the rendering leg is
///    cross-checked against the search, not the automaton.
fn e20_three_way_certified(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::tms2_automaton::check_tms2_automaton;
    use duop_core::{
        check_certificate, saturate, PlanCriterion, SaturationOutcome, SearchConfig,
        StrictSerializability,
    };
    use duop_gen::{anomalies, KeyDist};

    let no_prefilter = || SearchConfig {
        prelint: false,
        saturate: false,
        ..SearchConfig::default()
    };
    let checkers = || -> Vec<(PlanCriterion, Box<dyn Criterion>)> {
        vec![
            (
                PlanCriterion::FinalState,
                Box::new(FinalStateOpacity::with_config(no_prefilter())),
            ),
            (
                PlanCriterion::Du,
                Box::new(DuOpacity::with_config(no_prefilter())),
            ),
            (
                PlanCriterion::Rco,
                Box::new(ReadCommitOrderOpacity::with_config(no_prefilter())),
            ),
            (
                PlanCriterion::Tms2,
                Box::new(Tms2::with_config(no_prefilter())),
            ),
            (
                PlanCriterion::Strict,
                Box::new(StrictSerializability::with_config(no_prefilter())),
            ),
        ]
    };

    // Per history: (decided, refuted, automaton cross-checks, disagreements).
    let sweep = |h: &History| -> (u64, u64, u64, u64) {
        let mut acc = (0u64, 0u64, 0u64, 0u64);
        for (criterion, checker) in checkers() {
            match saturate(h, criterion) {
                SaturationOutcome::Refuted(cert) => {
                    acc.1 += 1;
                    let prepared = criterion.prepare(h);
                    let hh = prepared.as_ref().unwrap_or(h);
                    if check_certificate(hh, &cert).is_err() || !checker.check(h).is_violated() {
                        acc.3 += 1;
                    }
                    if criterion == PlanCriterion::Du {
                        match check_tms2_automaton(h, Some(2_000_000)) {
                            v if v.is_accepted() => acc.3 += 1,
                            duop_core::tms2_automaton::Tms2Verdict::Unknown { .. } => {}
                            _ => acc.2 += 1,
                        }
                    }
                }
                SaturationOutcome::Decided(_) => {
                    acc.0 += 1;
                    if !checker.check(h).is_satisfied() {
                        acc.3 += 1;
                    }
                }
                SaturationOutcome::Inconclusive => {}
            }
        }
        acc
    };

    let dists: [(&str, KeyDist); 3] = [
        ("uniform", KeyDist::Uniform),
        ("zipfian", KeyDist::Zipfian { theta: 1.2 }),
        (
            "hotspot",
            KeyDist::Hotspot {
                hot_fraction: 0.25,
                hot_prob: 0.9,
            },
        ),
    ];
    let rows = par_seeds(samples, threads, |seed| {
        let mut acc = (0u64, 0u64, 0u64, 0u64);
        for (_, dist) in &dists {
            let cfg = HistoryGenConfig::small_adversarial().with_key_dist(*dist);
            let h = HistoryGen::new(cfg, seed).generate();
            let (d, r, a, x) = sweep(&h);
            acc = (acc.0 + d, acc.1 + r, acc.2 + a, acc.3 + x);
        }
        acc
    });
    let mut decided: u64 = rows.iter().map(|r| r.0).sum();
    let mut refuted: u64 = rows.iter().map(|r| r.1).sum();
    let mut automaton: u64 = rows.iter().map(|r| r.2).sum();
    let mut disagree: u64 = rows.iter().map(|r| r.3).sum();

    let mut catalogue_refuted = 0u64;
    for (_, h) in anomalies::catalogue() {
        let (d, r, a, x) = sweep(&h);
        decided += d;
        refuted += r;
        automaton += a;
        disagree += x;
        catalogue_refuted += r;
    }

    let histories = samples * dists.len() as u64 + anomalies::catalogue().len() as u64;
    let pass = disagree == 0 && decided > 0 && refuted > 0 && automaton > 0;
    ExperimentResult {
        id: "E20",
        title: "Three-way certified agreement (saturate / search / TMS2 automaton)",
        claim: "certified saturation verdicts agree with the search everywhere, and certified du refutations are never TMS2 histories",
        measured: format!(
            "{histories} histories (anomaly catalogue + {samples} seeds x {{uniform, zipfian, hotspot}}), {decided} saturation-decided, {refuted} certified refutations ({catalogue_refuted} on the catalogue), {automaton} automaton cross-checks; disagreements: {disagree}"
        ),
        pass,
    }
}

/// E21: the serve-daemon session layer is verdict-equivalent to batch
/// checking, across chunked churn, checkpoint/recover cycles, and
/// budget-forced degradation.
///
/// Three legs per seed, over one du-opaque-by-construction history and
/// one adversarial history:
///
/// 1. **Churn**: each history is streamed through its own
///    [`duop_serve::Session`] in small interleaved chunks (the two
///    sessions alternate, as concurrent daemon clients do) and the
///    session's JSON verdict line must equal the batch `DuOpacity`
///    verdict of the whole trace, byte for byte.
/// 2. **Kill/recover**: streaming is cut at every chunk boundary in
///    turn; the session is checkpointed, dropped, rebuilt with
///    [`duop_serve::Session::resume`] (which revalidates the history and
///    witness and re-derives any violation), fed the remaining suffix,
///    and must reach the same byte-identical verdict — recovery is
///    invisible in the output.
/// 3. **Degradation**: the same traces under a tiny retained-event
///    budget must either report `Unknown` with the state-budget reason
///    (never a false positive) or — when a violation landed before the
///    budget bit — keep the violation final; retained events must never
///    exceed the budget.
fn e21_serve_equivalence(samples: u64, threads: usize) -> ExperimentResult {
    use duop_core::{DuOpacity, SearchConfig, UnknownReason, Verdict};
    use duop_serve::Session;

    let batch_line = |h: &History| {
        let v = DuOpacity::with_config(SearchConfig::default()).check(h);
        serde_json::to_string(&v).expect("verdicts serialize")
    };
    let session_line = |s: &mut Session| {
        // `verdict_line(true)` wraps the same serialization; strip the
        // envelope (prefix and exactly one closing brace) so the
        // comparison is against the verdict JSON itself.
        let line = s.verdict_line(true);
        let inner = line
            .trim_end()
            .strip_suffix('}')
            .and_then(|l| l.strip_prefix("{\"criterion\":\"du-opacity\",\"verdict\":"))
            .expect("verdict line shape");
        inner.to_owned()
    };

    let rows = par_seeds(samples, threads, |seed| {
        let histories = [
            HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(16), seed).generate(),
            HistoryGen::new(
                HistoryGenConfig {
                    txns: 12,
                    objs: 3,
                    mode: GenMode::Adversarial,
                    ..HistoryGenConfig::medium_simulated()
                },
                seed,
            )
            .generate(),
        ];
        let chunks: Vec<Vec<&[duop_history::Event]>> = histories
            .iter()
            .map(|h| h.events().chunks(5).collect())
            .collect();

        // Leg 1: interleaved chunked streaming.
        let mut churn_equal = 0u64;
        let mut sessions = [Session::new(1, None), Session::new(2, None)];
        let rounds = chunks.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (i, per_history) in chunks.iter().enumerate() {
                if let Some(chunk) = per_history.get(round) {
                    sessions[i]
                        .ingest(chunk)
                        .expect("generator histories are well-formed");
                }
            }
        }
        for (s, h) in sessions.iter_mut().zip(&histories) {
            if session_line(s) == batch_line(h) {
                churn_equal += 1;
            }
        }

        // Leg 2: kill at every chunk boundary, recover, finish.
        let mut cuts = 0u64;
        let mut recovered_equal = 0u64;
        for (h, per_history) in histories.iter().zip(&chunks) {
            let expect = batch_line(h);
            for cut in 0..=per_history.len() {
                let mut s = Session::new(9, None);
                for chunk in &per_history[..cut] {
                    s.ingest(chunk).expect("prefix ingest");
                }
                let snap = s.snapshot();
                drop(s);
                let mut resumed = Session::resume(snap).expect("checkpoint resumes");
                for chunk in &per_history[cut..] {
                    resumed.ingest(chunk).expect("suffix ingest");
                }
                cuts += 1;
                if session_line(&mut resumed) == expect {
                    recovered_equal += 1;
                }
            }
        }

        // Leg 3: a budget far below the trace length forces compaction
        // or degradation; the verdict must stay sound either way.
        let mut degraded_sound = 0u64;
        for h in &histories {
            let mut s = Session::new(17, Some(4));
            s.ingest(h.events()).expect("budgeted ingest");
            let within_budget = s.retained() <= 4 || s.violated();
            let sound = match s.verdict() {
                Verdict::Unknown {
                    reason: UnknownReason::StateBudget,
                    ..
                } => true,
                v @ Verdict::Violated { .. } => {
                    // A violation reported under budget must be real.
                    v.is_violated()
                        && DuOpacity::with_config(SearchConfig::default())
                            .check(h)
                            .is_violated()
                }
                // With compaction the whole trace may still fit; then
                // the verdict must match batch.
                _ => session_line(&mut s) == batch_line(h),
            };
            if within_budget && sound {
                degraded_sound += 1;
            }
        }

        (churn_equal, cuts, recovered_equal, degraded_sound)
    });

    let mut churn_equal = 0u64;
    let mut cuts = 0u64;
    let mut recovered_equal = 0u64;
    let mut degraded_sound = 0u64;
    for (c, k, r, d) in rows {
        churn_equal += c;
        cuts += k;
        recovered_equal += r;
        degraded_sound += d;
    }
    let streams = samples * 2;
    let pass = churn_equal == streams && recovered_equal == cuts && degraded_sound == streams;
    ExperimentResult {
        id: "E21",
        title: "Serve sessions: daemon == batch verdicts across churn, recovery, degradation",
        claim: "chunk-streamed sessions, checkpoint/recover at every cut, and budget-degraded sessions never change or unsoundly decide a verdict",
        measured: format!(
            "{churn_equal}/{streams} interleaved streams byte-identical to batch; {recovered_equal}/{cuts} kill/recover cuts byte-identical; {degraded_sound}/{streams} budgeted sessions sound (Unknown{{state-budget}}, real violation, or compacted-and-identical)"
        ),
        pass,
    }
}

/// E22: multi-host sharding over TCP. A remote worker pool — in-process
/// `shard-serve` daemons behind the authenticated transport — must
/// return the exact in-process verdicts, through dropped connections
/// and partitioned (stalled) hosts; a pool whose every remote is dead
/// must degrade to `unknown (worker-death)` with a partial payload
/// instead of guessing or hanging; and wrong-secret or replayed hellos
/// must be rejected before a single task frame is read.
fn e22_remote_shard(samples: u64) -> ExperimentResult {
    use duop_core::{
        check_criterion_with_stats, PlanCriterion, SearchConfig, UnknownReason, Verdict,
    };
    use duop_shard::protocol::{
        auth_tag, decode_challenge, encode_auth, write_frame, FrameReader, FRAME_AUTH,
        FRAME_CHALLENGE, FRAME_HEARTBEAT, FRAME_HELLO,
    };
    use duop_shard::{
        run_sharded, ShardConfig, ShardCriterion, ShardJob, ShardServeConfig, ShardServeHandle,
        ShardServer, NET_TIMEOUT_ENV,
    };
    use std::net::{SocketAddr, TcpStream};

    // The stall drill waits out the liveness timeout; keep it short but
    // comfortably above the 1s heartbeat interval so healthy daemons are
    // never spuriously declared dead. Idempotent with the test suites.
    std::env::set_var(NET_TIMEOUT_ENV, "2500");

    const SECRET: &[u8] = b"e22-remote-shard";
    fn start_daemon(
        drop_conn: Option<u64>,
        stall_conn: Option<u64>,
    ) -> (SocketAddr, ShardServeHandle) {
        let server = ShardServer::bind(ShardServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            secret: SECRET.to_vec(),
            drop_conn,
            stall_conn,
        })
        .expect("bind shard-serve");
        let addr = server.local_addr().expect("local addr");
        let handle = server.shutdown_handle();
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = server.run(&mut sink);
        });
        (addr, handle)
    }
    // Remote-only pools never spawn a local worker, so no worker binary
    // is needed (unlike E19, this experiment has no skip path).
    let remote_cfg = |addrs: &[SocketAddr]| ShardConfig {
        workers: 0,
        connect: addrs.iter().map(|a| a.to_string()).collect(),
        secret: SECRET.to_vec(),
        ..ShardConfig::default()
    };
    // Mirror the shard pipeline's defaults explicitly: the equivalence
    // claim is against this exact in-process configuration.
    let local_cfg = SearchConfig {
        prelint: true,
        ladder: true,
        decompose: true,
        saturate: true,
        ..SearchConfig::default()
    };
    let criteria = [
        PlanCriterion::Du,
        PlanCriterion::FinalState,
        PlanCriterion::Rco,
    ];
    let batch = |h: &History| -> Vec<ShardJob> {
        criteria
            .iter()
            .map(|&c| ShardJob {
                history: h.clone(),
                criterion: ShardCriterion::Plan(c),
            })
            .collect()
    };
    let compare = |h: &History, verdicts: &[Verdict], equal: &mut u64, satisfied: &mut u64| {
        for (&c, remote) in criteria.iter().zip(verdicts) {
            let (local, _) = check_criterion_with_stats(h, c, &local_cfg);
            if *remote == local {
                *equal += 1;
            }
            if local.is_satisfied() {
                *satisfied += 1;
            }
        }
    };

    // Equivalence sweep: per seed one du-opaque-by-construction history
    // and one adversarial history, each under three criteria on a
    // two-daemon remote-only pool.
    let (addr1, h1) = start_daemon(None, None);
    let (addr2, h2) = start_daemon(None, None);
    let mut compared = 0u64;
    let mut equal = 0u64;
    let mut satisfied = 0u64;
    let mut sample_history = None;
    for seed in 0..samples {
        let histories = [
            HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(24), seed).generate(),
            HistoryGen::new(
                HistoryGenConfig {
                    txns: 16,
                    objs: 4,
                    mode: GenMode::Adversarial,
                    ..HistoryGenConfig::medium_simulated()
                },
                seed,
            )
            .generate(),
        ];
        for h in &histories {
            compared += criteria.len() as u64;
            if let Ok(verdicts) = run_sharded(batch(h), &remote_cfg(&[addr1, addr2])) {
                compare(h, &verdicts, &mut equal, &mut satisfied);
            }
        }
        sample_history.get_or_insert_with(|| histories[0].clone());
    }
    h1.shutdown();
    h2.shutdown();
    let sample = sample_history.expect("at least one seed");

    // Drop drill: the daemon hangs up on its first authenticated
    // connection; the coordinator must redial and the verdicts must
    // never notice.
    let mut drop_equal = 0u64;
    let (addr, handle) = start_daemon(Some(1), None);
    if let Ok(verdicts) = run_sharded(batch(&sample), &remote_cfg(&[addr])) {
        compare(&sample, &verdicts, &mut drop_equal, &mut 0);
    }
    handle.shutdown();

    // Stall drill: a partitioned host — connected, authenticated,
    // silent — is declared dead by the liveness timeout and its work
    // re-queued on the healthy daemon.
    let mut stall_equal = 0u64;
    let (stalled, h1) = start_daemon(None, Some(1));
    let (healthy, h2) = start_daemon(None, None);
    if let Ok(verdicts) = run_sharded(batch(&sample), &remote_cfg(&[stalled, healthy])) {
        compare(&sample, &verdicts, &mut stall_equal, &mut 0);
    }
    h1.shutdown();
    h2.shutdown();

    // All remotes dead for good (nothing ever listened): the run must
    // end degraded — unknown (worker-death) with a partial payload —
    // never a wrong verdict, never a hang. Prefilters off so the
    // coordinator cannot decide the history without dispatching.
    let dead_addr = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve a dead address")
        .local_addr()
        .expect("local addr");
    let mut dead_cfg = remote_cfg(&[dead_addr]);
    dead_cfg.prelint = false;
    dead_cfg.ladder = false;
    dead_cfg.saturate = false;
    let dead_ok = run_sharded(
        vec![ShardJob {
            history: sample.clone(),
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        }],
        &dead_cfg,
    )
    .map(|verdicts| {
        matches!(
            &verdicts[0],
            Verdict::Unknown {
                reason: UnknownReason::WorkerDeath,
                partial: Some(_),
                ..
            }
        )
    })
    .unwrap_or(false);

    // Auth drill: a wrong-secret tag and a tag replayed from another
    // connection's challenge must both be rejected before any task
    // frame — the daemon never answers with its worker hello (and
    // heartbeats only start post-auth).
    let (addr, handle) = start_daemon(None, None);
    let read_challenge = |stream: &TcpStream| {
        let mut reader = FrameReader::new(stream.try_clone().expect("clone stream"));
        let (ty, payload) = reader
            .read_frame()
            .expect("challenge frame decodes")
            .expect("daemon sends a challenge");
        assert_eq!(ty, FRAME_CHALLENGE);
        decode_challenge(payload).expect("challenge payload decodes")
    };
    let rejected = |stream: TcpStream, tag: &[u8; duop_shard::protocol::TAG_LEN]| -> bool {
        let mut w = stream.try_clone().expect("clone stream");
        if write_frame(&mut w, FRAME_AUTH, &encode_auth(tag)).is_err() {
            return true; // daemon already hung up: rejected
        }
        let mut reader = FrameReader::new(stream);
        loop {
            match reader.read_frame() {
                Ok(Some((ty, _))) if ty == FRAME_HELLO || ty == FRAME_HEARTBEAT => return false,
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return true,
            }
        }
    };
    let connect = || {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("set read timeout");
        stream
    };
    let mut auth_rejected = 0u64;
    let wrong = connect();
    let nonce = read_challenge(&wrong);
    if rejected(wrong, &auth_tag(b"not-the-secret", &nonce)) {
        auth_rejected += 1;
    }
    // Replay: a tag valid for connection A's nonce, presented on B.
    let conn_a = connect();
    let nonce_a = read_challenge(&conn_a);
    let conn_b = connect();
    let _nonce_b = read_challenge(&conn_b);
    if rejected(conn_b, &auth_tag(SECRET, &nonce_a)) {
        auth_rejected += 1;
    }
    drop(conn_a);
    handle.shutdown();

    let pass = equal == compared
        && drop_equal == 3
        && stall_equal == 3
        && dead_ok
        && auth_rejected == 2
        && satisfied > 0;
    ExperimentResult {
        id: "E22",
        title: "Multi-host sharding: remote TCP pools == in-process verdicts",
        claim: "authenticated remote pools return the exact in-process verdicts through drops and partitions, degrade to unknown (worker-death) only when every remote is gone, and reject hostile hellos before any task frame",
        measured: format!(
            "{equal}/{compared} remote verdicts identical (3 criteria x {samples} seeds x {{du-opaque, adversarial}}, {satisfied} satisfied); drop/stall drills {drop_equal}/3 and {stall_equal}/3 identical; all-remotes-dead degraded to unknown (worker-death): {dead_ok}; {auth_rejected}/2 hostile hellos rejected pre-task"
        ),
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The corpus experiments must report identical numbers regardless of
    /// worker count: per-seed rows are independent and reduced in seed
    /// order.
    #[test]
    fn parallel_fanout_matches_serial() {
        for (serial, parallel) in [
            (e7_theorem11(12, 1), e7_theorem11(12, 4)),
            (e9_lemma4(6, 1), e9_lemma4(6, 4)),
            (e14_discrimination(10, 1), e14_discrimination(10, 4)),
            (e17_kill_resume(12, 1), e17_kill_resume(12, 4)),
            (e20_three_way_certified(8, 1), e20_three_way_certified(8, 4)),
            (e21_serve_equivalence(4, 1), e21_serve_equivalence(4, 4)),
        ] {
            assert_eq!(serial.measured, parallel.measured);
            assert_eq!(serial.pass, parallel.pass);
        }
    }

    /// The remote-shard experiment end to end on a small sweep: TCP
    /// equivalence, drop/stall drills, dead-pool degradation, and the
    /// hostile-hello rejections must all hold.
    #[test]
    fn remote_shard_drills_pass() {
        let r = e22_remote_shard(2);
        assert!(r.pass, "E22 failed: {}", r.measured);
    }
}
