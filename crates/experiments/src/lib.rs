//! The paper's figures as history fixtures and the experiment suite that
//! re-derives every claim.
//!
//! * [`figures`] transcribes Figures 1–6 of *Safety of Deferred Update in
//!   Transactional Memory* event-for-event;
//! * [`litmus`] is a catalogue of named transactional anomalies with
//!   expected verdicts under every criterion;
//! * [`runner`] runs experiments E1–E10 (one per figure/theorem, plus the
//!   STM study) and reports paper-claim vs measured-verdict;
//! * the `experiments` binary prints the table recorded in
//!   `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use duop_experiments::figures;
//! use duop_core::{Criterion, DuOpacity, Opacity};
//!
//! // Figure 4 separates opacity from du-opacity.
//! let h = figures::fig4();
//! assert!(Opacity::new().check(&h).is_satisfied());
//! assert!(DuOpacity::new().check(&h).is_violated());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod litmus;
pub mod runner;
