//! A litmus catalogue: named transactional anomalies and boundary cases
//! from the TM-correctness literature, each with its expected verdict
//! under every criterion.
//!
//! The catalogue serves three purposes: it documents, one anomaly at a
//! time, what each criterion does and does not forbid; it is a regression
//! corpus for the checkers (the tests assert every expectation and
//! cross-validate against the brute-force oracle); and `duop litmus`
//! prints it as a quick reference.

use duop_history::{History, HistoryBuilder, ObjId, TxnId, Value};

fn t(k: u32) -> TxnId {
    TxnId::new(k)
}
fn x() -> ObjId {
    ObjId::new(0)
}
fn y() -> ObjId {
    ObjId::new(1)
}
fn v(n: u64) -> Value {
    Value::new(n)
}

/// Expected verdict of one criterion for a litmus history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expected {
    /// Final-state opacity (Definition 4).
    pub final_state: bool,
    /// Opacity (Definition 5).
    pub opacity: bool,
    /// DU-opacity (Definition 3).
    pub du_opacity: bool,
    /// Strict serializability of the committed projection.
    pub strict_serializability: bool,
}

impl Expected {
    /// Everything satisfied.
    pub const ALL: Expected = Expected {
        final_state: true,
        opacity: true,
        du_opacity: true,
        strict_serializability: true,
    };

    /// Everything violated.
    pub const NONE: Expected = Expected {
        final_state: false,
        opacity: false,
        du_opacity: false,
        strict_serializability: false,
    };
}

/// One catalogue entry.
#[derive(Clone, Debug)]
pub struct Litmus {
    /// Short kebab-case name.
    pub name: &'static str,
    /// What the history exhibits and why the verdicts are what they are.
    pub description: &'static str,
    /// The history itself.
    pub history: History,
    /// Expected verdicts.
    pub expected: Expected,
}

/// The full catalogue.
pub fn catalogue() -> Vec<Litmus> {
    vec![
        Litmus {
            name: "serial-baseline",
            description: "A committed writer followed by a committed reader of its \
                          value: the trivially correct history every criterion accepts.",
            history: HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_reader(t(2), x(), v(1))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "dirty-read",
            description: "T2 reads a value whose only writer later aborts, and commits. \
                          The read has no committed source, so even strict \
                          serializability fails.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .read(t(2), x(), v(1))
                .commit(t(2))
                .commit_aborted(t(1))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "lost-update",
            description: "Two read-modify-writes of the same object both read the \
                          initial value and both commit: one update is lost; no \
                          serial order explains both reads.",
            history: HistoryBuilder::new()
                .inv_read(t(1), x())
                .resp_value(t(1), v(0))
                .inv_read(t(2), x())
                .resp_value(t(2), v(0))
                .write(t(1), x(), v(1))
                .write(t(2), x(), v(2))
                .commit(t(1))
                .commit(t(2))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "write-skew",
            description: "T1 reads X and writes Y; T2 reads Y and writes X; both read \
                          initial values and commit. Permitted by snapshot isolation, \
                          rejected by every serializability-based criterion here.",
            history: HistoryBuilder::new()
                .read(t(1), x(), v(0))
                .read(t(2), y(), v(0))
                .write(t(1), y(), v(1))
                .write(t(2), x(), v(1))
                .commit(t(1))
                .commit(t(2))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "read-skew-committed",
            description: "T2 reads X before T1's atomic {X,Y} commit and Y after it, \
                          then commits: a torn snapshot in a committed transaction — \
                          nothing accepts it.",
            history: HistoryBuilder::new()
                .read(t(2), x(), v(0))
                .write(t(1), x(), v(1))
                .write(t(1), y(), v(1))
                .commit(t(1))
                .read(t(2), y(), v(1))
                .commit(t(2))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "zombie-doomed-reader",
            description: "The same torn snapshot, but the reader aborts. The committed \
                          projection is fine (strict serializability holds); the \
                          opacity family still rejects — aborted transactions' views \
                          matter. This is the paper's motivating scenario.",
            history: HistoryBuilder::new()
                .read(t(2), x(), v(0))
                .write(t(1), x(), v(1))
                .write(t(1), y(), v(1))
                .commit(t(1))
                .read(t(2), y(), v(1))
                .commit_aborted(t(2))
                .build(),
            expected: Expected {
                final_state: false,
                opacity: false,
                du_opacity: false,
                strict_serializability: true,
            },
        },
        Litmus {
            name: "read-through-pending-commit",
            description: "T2 reads T1's value while T1's tryC is still pending. A \
                          completion may commit T1, and T1 *has started committing* — \
                          deferred update is respected; everything accepts.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .inv_try_commit(t(1))
                .read(t(2), x(), v(1))
                .commit(t(2))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "read-before-try-commit",
            description: "T2 reads T1's value *before* T1 invokes tryC (T1 commits \
                          later). Final-state opacity is satisfied — the full history \
                          serializes — but the prefix at the read's response has no \
                          committable writer, so opacity fails, and du-opacity fails \
                          by definition. Separates final-state opacity from opacity.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .read(t(2), x(), v(1))
                .commit(t(1))
                .commit(t(2))
                .build(),
            expected: Expected {
                final_state: true,
                opacity: false,
                du_opacity: false,
                strict_serializability: true,
            },
        },
        Litmus {
            name: "aba-value-coincidence",
            description: "T2 reads X = 1 (from W1); W3 — which had already invoked \
                          tryC — then commits X = 2; W4 commits X = 1 again together \
                          with Y, which T2 reads next. Globally legal by the value \
                          coincidence, and opaque; but T2's local serialization for \
                          the X-read retains the eligible W3 and yields 2 — not \
                          du-opaque. The ABA shape value-validating TMs (NOrec) emit.",
            history: HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .inv_write(t(3), x(), v(2))
                .resp_ok(t(3))
                .inv_try_commit(t(3))
                .read(t(2), x(), v(1))
                .resp_committed(t(3))
                .write(t(4), x(), v(1))
                .write(t(4), y(), v(5))
                .commit(t(4))
                .read(t(2), y(), v(5))
                .commit(t(2))
                .build(),
            expected: Expected {
                final_state: true,
                opacity: true,
                du_opacity: false,
                strict_serializability: true,
            },
        },
        Litmus {
            name: "cascading-pending-commits",
            description: "A chain of reads through pending commits: T2 reads T1's \
                          pending value and goes commit-pending itself; T3 reads T2's \
                          pending value and commits. The completion must commit both \
                          T1 and T2 — and may, so everything accepts.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .inv_try_commit(t(1))
                .read(t(2), x(), v(1))
                .write(t(2), y(), v(2))
                .inv_try_commit(t(2))
                .read(t(3), y(), v(2))
                .commit(t(3))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "aborted-writer-invisible",
            description: "A writer aborts; a later reader correctly sees the initial \
                          value. Everything accepts — recoverability in action.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(9))
                .commit_aborted(t(1))
                .committed_reader(t(2), x(), v(0))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "aborted-writer-observed",
            description: "A later reader sees the value of a writer that already \
                          aborted, and commits: rejected by everything.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(9))
                .commit_aborted(t(1))
                .committed_reader(t(2), x(), v(9))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "stale-read-after-commit",
            description: "T2 begins after T1's commit yet reads the pre-commit value: \
                          real-time order pins T2 after T1, so nothing accepts.",
            history: HistoryBuilder::new()
                .committed_writer(t(1), x(), v(1))
                .committed_reader(t(2), x(), v(0))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "overlapping-snapshot-reader",
            description: "A reader overlapping a writer returns the initial value: it \
                          serializes before the writer. Everything accepts.",
            history: HistoryBuilder::new()
                .inv_write(t(1), x(), v(1))
                .inv_read(t(2), x())
                .resp_value(t(2), v(0))
                .resp_ok(t(1))
                .commit(t(1))
                .commit(t(2))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "all-operations-pending",
            description: "Every operation is still waiting for its response; \
                          completions abort everyone and nothing constrains anything.",
            history: HistoryBuilder::new()
                .inv_write(t(1), x(), v(1))
                .inv_read(t(2), x())
                .inv_try_abort(t(3))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "read-own-write",
            description: "A transaction reads back its own earlier write; internal \
                          consistency, independent of every other transaction.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(7))
                .read(t(1), x(), v(7))
                .commit(t(1))
                .committed_reader(t(2), x(), v(7))
                .build(),
            expected: Expected::ALL,
        },
        Litmus {
            name: "read-own-write-wrong",
            description: "A transaction reads back a value different from its own \
                          latest write: internally inconsistent; no serialization of \
                          any kind exists, and the committed projection itself is \
                          illegal.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(7))
                .read(t(1), x(), v(8))
                .commit(t(1))
                .build(),
            expected: Expected::NONE,
        },
        Litmus {
            name: "intermediate-value-observed",
            description: "T1 writes 1 then overwrites with 2 and commits; T2 reads 1. \
                          Only a transaction's last write per object is observable, \
                          so the read is unserviceable under every criterion.",
            history: HistoryBuilder::new()
                .write(t(1), x(), v(1))
                .write(t(1), x(), v(2))
                .commit(t(1))
                .committed_reader(t(2), x(), v(1))
                .build(),
            expected: Expected::NONE,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_core::reference::check_by_enumeration;
    use duop_core::{
        Criterion, CriterionKind, DuOpacity, FinalStateOpacity, Opacity, StrictSerializability,
    };

    #[test]
    fn every_expectation_holds() {
        for entry in catalogue() {
            let h = &entry.history;
            assert_eq!(
                FinalStateOpacity::new().check(h).is_satisfied(),
                entry.expected.final_state,
                "final-state opacity mismatch for `{}`:\n{h}",
                entry.name
            );
            assert_eq!(
                Opacity::new().check(h).is_satisfied(),
                entry.expected.opacity,
                "opacity mismatch for `{}`:\n{h}",
                entry.name
            );
            assert_eq!(
                DuOpacity::new().check(h).is_satisfied(),
                entry.expected.du_opacity,
                "du-opacity mismatch for `{}`:\n{h}",
                entry.name
            );
            assert_eq!(
                StrictSerializability::new().check(h).is_satisfied(),
                entry.expected.strict_serializability,
                "strict serializability mismatch for `{}`:\n{h}",
                entry.name
            );
        }
    }

    #[test]
    fn catalogue_cross_validates_with_the_oracle() {
        for entry in catalogue() {
            let h = &entry.history;
            if h.txn_count() > duop_core::reference::MAX_ENUMERABLE_TXNS {
                continue;
            }
            assert_eq!(
                check_by_enumeration(h, CriterionKind::DuOpacity).is_satisfied(),
                entry.expected.du_opacity,
                "oracle disagrees on du-opacity for `{}`",
                entry.name
            );
            assert_eq!(
                check_by_enumeration(h, CriterionKind::FinalStateOpacity).is_satisfied(),
                entry.expected.final_state,
                "oracle disagrees on final-state opacity for `{}`",
                entry.name
            );
        }
    }

    #[test]
    fn names_are_unique_and_descriptions_nonempty() {
        let entries = catalogue();
        let mut names = std::collections::HashSet::new();
        for e in &entries {
            assert!(names.insert(e.name), "duplicate litmus name `{}`", e.name);
            assert!(!e.description.is_empty());
            assert!(!e.history.is_empty());
        }
        assert!(entries.len() >= 15);
    }

    #[test]
    fn hierarchy_is_respected_within_the_catalogue() {
        for e in catalogue() {
            // du ⇒ opacity ⇒ final-state ⇒ strict serializability.
            if e.expected.du_opacity {
                assert!(e.expected.opacity, "`{}` breaks du ⊆ opacity", e.name);
            }
            if e.expected.opacity {
                assert!(e.expected.final_state, "`{}` breaks opacity ⊆ FSO", e.name);
            }
            if e.expected.final_state {
                assert!(
                    e.expected.strict_serializability,
                    "`{}` breaks FSO ⊆ strict-ser",
                    e.name
                );
            }
        }
    }
}
