//! Differential test of du-opacity's prefix-closure (Theorem 5) on
//! fault-injected STM histories.
//!
//! Crashes leave pending operations and commit-pending transactions
//! dangling — exactly the shapes prefixes exercise — so every
//! fault-injected history that checks du-opaque must have every prefix
//! check du-opaque too. Where the completion space (Definition 2) is small
//! enough to enumerate, the direct verdict on a prefix must also agree
//! with quantifying over its completions: du-opaque iff some completion
//! serializes.

use duop_core::{Criterion, DuOpacity};
use duop_history::History;
use duop_stm::engines::{DirtyRead, Dstm, Eager2Pl, NoRec, Pessimistic, Tl2};
use duop_stm::{run_workload_faulted, Engine, FaultPlan, WorkloadConfig};

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::parse("abort=0.1,crash=0.1,thread-crash=0.3")
        .expect("spec is valid")
        .with_seed(seed)
}

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        threads: 1, // deterministic: the history is a pure function of the seed
        txns_per_thread: 6,
        ops_per_txn: (1, 3),
        read_ratio: 0.6,
        unique_values: true,
        max_attempts: 2,
        yield_between_ops: false,
        seed,
    }
}

/// Enumerating 2^p completions is only sane for small p.
const MAX_ENUMERABLE_PENDING: usize = 5;

/// Checks one prefix directly and, when enumerable, differentially against
/// its completion space.
fn assert_prefix_du_opaque(h: &History, i: usize, label: &str) {
    let prefix = h.prefix(i);
    let checker = DuOpacity::new();
    let direct = checker.check(&prefix);
    assert!(
        direct.is_satisfied(),
        "{label}: prefix of length {i} lost du-opacity:\n{prefix}"
    );
    let pending = prefix.commit_pending_txns();
    if pending.len() <= MAX_ENUMERABLE_PENDING {
        let mut some_completion_serializes = false;
        for completion in prefix.completions() {
            assert!(
                completion.is_completion_of(&prefix),
                "{label}: enumerated history is not a completion of its prefix (len {i})"
            );
            if checker.check(&completion).is_satisfied() {
                some_completion_serializes = true;
            }
        }
        assert!(
            some_completion_serializes,
            "{label}: prefix of length {i} checks du-opaque but no completion \
             serializes:\n{prefix}"
        );
    }
}

#[test]
fn fault_injected_histories_are_prefix_closed_across_engines() {
    type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;
    let engines: Vec<(&str, EngineFactory)> = vec![
        ("tl2", Box::new(|| Box::new(Tl2::new(4)))),
        ("norec", Box::new(|| Box::new(NoRec::new(4)))),
        ("dstm", Box::new(|| Box::new(Dstm::new(4)))),
        ("2pl", Box::new(|| Box::new(Eager2Pl::new(4)))),
        ("pessimistic", Box::new(|| Box::new(Pessimistic::new(4)))),
    ];
    let mut crashed_total = 0usize;
    let mut prefixes_checked = 0usize;
    for (name, make) in &engines {
        for seed in 0..6u64 {
            let engine = make();
            let (h, stats) = run_workload_faulted(engine.as_ref(), &cfg(seed), &plan(seed));
            crashed_total += stats.crashed;
            let label = format!("{name} seed {seed}");
            assert!(
                DuOpacity::new().check(&h).is_satisfied(),
                "{label}: fault-injected history is not du-opaque:\n{h}"
            );
            for i in 0..=h.len() {
                assert_prefix_du_opaque(&h, i, &label);
                prefixes_checked += 1;
            }
        }
    }
    // The corpus must actually contain crashes — otherwise this tests
    // nothing fault-related.
    assert!(crashed_total > 0, "no crashes injected across the corpus");
    assert!(
        prefixes_checked > 100,
        "corpus too small: {prefixes_checked}"
    );
}

#[test]
fn dirty_violations_have_no_serializing_completion() {
    // The contrapositive side: when the dirty engine's leaked writes make
    // a history non-du-opaque, the verdict must agree with the completion
    // space — no enumerable completion serializes.
    let checker = DuOpacity::new();
    let mut violated = 0usize;
    for seed in 0..30u64 {
        let engine = DirtyRead::new(4);
        let (h, _) = run_workload_faulted(&engine, &cfg(seed), &plan(seed));
        if !checker.check(&h).is_violated() {
            continue;
        }
        violated += 1;
        if h.commit_pending_txns().len() <= MAX_ENUMERABLE_PENDING {
            for completion in h.completions() {
                assert!(
                    checker.check(&completion).is_violated(),
                    "seed {seed}: a completion of a violated history serializes:\n{completion}"
                );
            }
        }
        // Prefix-closure, contrapositive: once a prefix is violated, every
        // longer prefix stays violated.
        let mut seen_violation = false;
        for i in 0..=h.len() {
            let v = checker.check(&h.prefix(i)).is_violated();
            if seen_violation {
                assert!(
                    v,
                    "seed {seed}: violation vanished when extending to prefix {i}:\n{h}"
                );
            }
            seen_violation |= v;
        }
        assert!(seen_violation);
        if violated >= 5 {
            break;
        }
    }
    assert!(violated > 0, "the dirty engine never produced a violation");
}
