//! Lint coverage over the paper corpus: each figure, litmus history and
//! anomaly shape asserts the exact set of rule ids that fire, and
//! histories that satisfy a criterion lint clean at `Error` severity for
//! that criterion's scope.

use duop_core::lint::{lint, LintScope};
use duop_experiments::{figures, litmus};

fn rule_ids(h: &duop_history::History) -> Vec<&'static str> {
    lint(h).rule_ids()
}

#[test]
fn figures_fire_exact_rule_sets() {
    // Figure 1: opaque (two writers of the same value — Theorem 11's
    // unique-writes hypothesis fails, which is exactly UW007's point).
    assert_eq!(rule_ids(&figures::fig1()), vec!["UW007"]);
    // Figure 2: du-opaque dirty read — DU002 warning only.
    assert_eq!(rule_ids(&figures::fig2_prefix(1)), vec!["DU002"]);
    assert_eq!(rule_ids(&figures::fig2_prefix(3)), vec!["DU002"]);
    // Figure 3: final-state opaque but not du-opaque (DU002 error), and
    // not rco-opaque (CY004 rco cycle + RCO006 inversion).
    assert_eq!(rule_ids(&figures::fig3()), vec!["CY004", "DU002", "RCO006"]);
    // Figure 4: same rule family — the reader observes the value before
    // any writer invoked tryC.
    assert_eq!(rule_ids(&figures::fig4()), vec!["CY004", "DU002", "RCO006"]);
    // Figure 5: du-opaque but not rco-opaque.
    assert_eq!(rule_ids(&figures::fig5()), vec!["CY004", "RCO006", "UW007"]);
    // Figure 6: du-opaque but rejected by TMS2's commit-order edge.
    assert_eq!(rule_ids(&figures::fig6()), vec!["CY004"]);
}

#[test]
fn figures_lint_clean_for_criteria_they_satisfy() {
    let report = lint(&figures::fig1());
    for scope in [LintScope::Plain, LintScope::Du] {
        assert!(report.first_error_for(scope).is_none(), "fig1 {scope:?}");
    }
    // Figure 2 is du-opaque: no Error at all (its only finding is the
    // DU002 dirty-read warning).
    let report = lint(&figures::fig2_prefix(2));
    assert_eq!(report.error_count(), 0);
    // Figure 3 is final-state opaque; figures 5 and 6 are du-opaque.
    assert!(lint(&figures::fig3())
        .first_error_for(LintScope::Plain)
        .is_none());
    for scope in [LintScope::Plain, LintScope::Du] {
        assert!(
            lint(&figures::fig5()).first_error_for(scope).is_none(),
            "fig5 {scope:?}"
        );
        assert!(
            lint(&figures::fig6()).first_error_for(scope).is_none(),
            "fig6 {scope:?}"
        );
    }
    // Figure 5's refutation is rco-scoped; figure 6's is tms2-scoped.
    assert!(lint(&figures::fig5())
        .first_error_for(LintScope::Rco)
        .is_some());
    assert!(lint(&figures::fig6())
        .first_error_for(LintScope::Tms2)
        .is_some());
}

#[test]
fn litmus_catalogue_fires_expected_rules() {
    let expected: &[(&str, &[&str])] = &[
        ("serial-baseline", &[]),
        ("dirty-read", &["RF003"]),
        ("lost-update", &["AN005", "CY004"]),
        ("write-skew", &["AN005", "CY004"]),
        ("read-skew-committed", &["CY004", "RCO006"]),
        ("zombie-doomed-reader", &["CY004", "RCO006"]),
        ("read-through-pending-commit", &["DU002"]),
        ("read-before-try-commit", &["CY004", "DU002", "RCO006"]),
        ("aba-value-coincidence", &["CY004", "RCO006", "UW007"]),
        ("cascading-pending-commits", &["DU002"]),
        ("aborted-writer-invisible", &[]),
        ("aborted-writer-observed", &["RF003"]),
        ("stale-read-after-commit", &["CY004"]),
        ("overlapping-snapshot-reader", &["CY004"]),
        ("all-operations-pending", &[]),
        ("read-own-write", &[]),
        ("read-own-write-wrong", &["WF001"]),
        ("intermediate-value-observed", &["RF003"]),
    ];
    let catalogue = litmus::catalogue();
    assert_eq!(catalogue.len(), expected.len(), "litmus catalogue changed");
    for entry in catalogue {
        let (_, want) = expected
            .iter()
            .find(|(n, _)| *n == entry.name)
            .unwrap_or_else(|| panic!("no expectation for litmus `{}`", entry.name));
        assert_eq!(
            rule_ids(&entry.history),
            *want,
            "litmus `{}` fired the wrong rules",
            entry.name
        );
        // Soundness against the recorded expectations: a du-scope Error
        // is only allowed when du-opacity is expected violated, a plain
        // Error only when final-state opacity is.
        let report = lint(&entry.history);
        if report.first_error_for(LintScope::Plain).is_some() {
            assert!(
                !entry.expected.final_state,
                "litmus `{}` is final-state opaque but lint refutes it",
                entry.name
            );
        }
        if report.first_error_for(LintScope::Du).is_some() {
            assert!(
                !entry.expected.du_opacity,
                "litmus `{}` is du-opaque but lint refutes it",
                entry.name
            );
        }
    }
}

#[test]
fn anomaly_catalogue_fires_expected_rules() {
    let expected: &[(&str, &[&str])] = &[
        ("dirty-read", &["DU002"]),
        ("premature-read", &["CY004", "DU002", "RCO006"]),
        ("stale-read", &["CY004"]),
        ("orphan-read", &["RF003"]),
        ("lost-update", &["AN005", "CY004"]),
        ("write-skew", &["AN005", "CY004"]),
        ("rco-inversion", &["CY004", "RCO006"]),
        ("ambiguous-suppliers", &["UW007"]),
    ];
    for (name, h) in duop_gen::anomalies::catalogue() {
        let (_, want) = expected
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no expectation for anomaly `{name}`"));
        assert_eq!(
            rule_ids(&h),
            *want,
            "anomaly `{name}` fired the wrong rules"
        );
    }
}

#[test]
fn every_rule_id_is_covered_by_some_corpus_entry() {
    let mut fired: Vec<&'static str> = Vec::new();
    for (_, h) in figures::all_figures() {
        fired.extend(rule_ids(&h));
    }
    for entry in litmus::catalogue() {
        fired.extend(rule_ids(&entry.history));
    }
    for (_, h) in duop_gen::anomalies::catalogue() {
        fired.extend(rule_ids(&h));
    }
    fired.sort_unstable();
    fired.dedup();
    let mut all: Vec<&'static str> = duop_core::lint::rules().iter().map(|r| r.id).collect();
    all.sort_unstable();
    assert_eq!(fired, all, "some registered rule never fires on the corpus");
}
