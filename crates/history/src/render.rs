//! ASCII rendering of histories in the style of the paper's figures.
//!
//! Each transaction gets a lane; events are placed in the global column of
//! their history index, so concurrency is visible at a glance:
//!
//! ```text
//! T1 | W(X0,1) ok                  tryC C
//! T2 |            R(X0)        0
//! T3 |                   R(X0)           0
//! ```

use crate::{EventKind, History};

/// Renders a history as per-transaction ASCII lanes.
///
/// Column `i` of every lane corresponds to event `i` of the history, so
/// vertical alignment shows the real-time interleaving.
///
/// # Examples
///
/// ```
/// use duop_history::{render::render_lanes, HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .build();
/// let art = render_lanes(&h);
/// assert!(art.contains("T1"));
/// assert!(art.contains("W(X0,1)"));
/// ```
pub fn render_lanes(history: &History) -> String {
    if history.is_empty() {
        return String::from("(empty history)\n");
    }
    // Token for each event.
    let tokens: Vec<String> = history
        .events()
        .iter()
        .map(|ev| match ev.kind {
            EventKind::Inv(op) => op.to_string(),
            EventKind::Resp(ret) => ret.to_string(),
        })
        .collect();
    let widths: Vec<usize> = tokens.iter().map(String::len).collect();

    let label_width = history
        .txn_ids()
        .map(|id| id.to_string().len())
        .max()
        .unwrap_or(2);

    let mut out = String::new();
    for txn in history.txn_ids() {
        let label = txn.to_string();
        out.push_str(&format!("{label:<label_width$} |"));
        for (i, ev) in history.events().iter().enumerate() {
            out.push(' ');
            if ev.txn == txn {
                out.push_str(&tokens[i]);
            } else {
                out.push_str(&" ".repeat(widths[i]));
            }
        }
        // Trim trailing spaces on the lane.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ObjId, TxnId, Value};

    #[test]
    fn empty_history_renders_placeholder() {
        assert_eq!(render_lanes(&History::empty()), "(empty history)\n");
    }

    use crate::History;

    #[test]
    fn lanes_align_by_event_index() {
        let (t1, t2) = (TxnId::new(1), TxnId::new(2));
        let x = ObjId::new(0);
        let h = HistoryBuilder::new()
            .inv_write(t1, x, Value::new(1))
            .inv_read(t2, x)
            .resp_ok(t1)
            .resp_value(t2, Value::new(0))
            .build();
        let art = render_lanes(&h);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("T1 |"));
        assert!(lines[1].starts_with("T2 |"));
        // T2's read token appears strictly to the right of T1's write token.
        let w_pos = lines[0].find("W(X0,1)").unwrap();
        let r_pos = lines[1].find("R(X0)").unwrap();
        assert!(r_pos > w_pos);
    }

    #[test]
    fn every_event_token_appears() {
        let t1 = TxnId::new(1);
        let h = HistoryBuilder::new()
            .committed_writer(t1, ObjId::new(0), Value::new(3))
            .build();
        let art = render_lanes(&h);
        for token in ["W(X0,3)", "ok", "tryC", "C"] {
            assert!(art.contains(token), "missing {token} in:\n{art}");
        }
    }
}
