//! Completions of a history (Definition 2).
//!
//! A completion `H̄` of `H` closes every transaction: incomplete
//! `read`/`write`/`tryA` operations are answered with `A_k`, an incomplete
//! `tryC_k()` is answered with either `C_k` or `A_k`, and a complete but not
//! t-complete transaction is extended with `tryC_k · A_k`.

use crate::{CommitCapability, Event, History, Op, Ret, TxnId};

impl History {
    /// Transactions with an incomplete `tryC_k()` — the only transactions
    /// for which a completion has a choice (commit or abort).
    ///
    /// Ordered by first appearance.
    pub fn commit_pending_txns(&self) -> Vec<TxnId> {
        self.txns()
            .filter(|t| t.commit_capability() == CommitCapability::CommitPending)
            .map(|t| t.id())
            .collect()
    }

    /// Materializes a completion of this history.
    ///
    /// For every transaction with an incomplete `tryC_k()`, `decide`
    /// chooses the inserted response: `true` for `C_k`, `false` for `A_k`.
    /// All inserted events are appended after the original events (a valid
    /// choice of "somewhere after the invocation").
    ///
    /// The result is t-complete and is a completion of `self` in the sense
    /// of Definition 2 (see [`History::is_completion_of`]).
    pub fn complete_with(&self, mut decide: impl FnMut(TxnId) -> bool) -> History {
        let mut events = self.events().to_vec();
        for t in self.txns() {
            if t.is_t_complete() {
                continue;
            }
            match t.ops().last() {
                Some(last) if !last.is_complete() => {
                    let ret = if last.op.is_try_commit() && decide(t.id()) {
                        Ret::Committed
                    } else {
                        Ret::Aborted
                    };
                    events.push(Event::resp(t.id(), ret));
                }
                _ => {
                    // Complete but not t-complete: append tryC_k · A_k.
                    events.push(Event::inv(t.id(), Op::TryCommit));
                    events.push(Event::resp(t.id(), Ret::Aborted));
                }
            }
        }
        History::new(events).expect("completion of a well-formed history is well-formed")
    }

    /// Materializes the completion that aborts every unresolved
    /// transaction.
    pub fn complete_aborting(&self) -> History {
        self.complete_with(|_| false)
    }

    /// Enumerates all completions of this history (one per assignment of
    /// commit/abort to each commit-pending transaction), up to the
    /// placement of inserted events.
    ///
    /// The number of completions is `2^p` where `p` is the number of
    /// commit-pending transactions; intended for small histories and
    /// differential testing.
    pub fn completions(&self) -> impl Iterator<Item = History> + '_ {
        let pending = self.commit_pending_txns();
        let n = pending.len();
        assert!(
            n < usize::BITS as usize,
            "too many commit-pending transactions to enumerate"
        );
        (0..(1usize << n)).map(move |mask| {
            self.complete_with(|id| {
                let bit = pending.iter().position(|p| *p == id).expect("pending txn");
                mask & (1 << bit) != 0
            })
        })
    }

    /// Returns `true` if `self` is a completion of `h` per Definition 2.
    ///
    /// Checks that per transaction `self|k` extends `h|k` exactly as the
    /// definition allows, and that the events of `h` form a subsequence of
    /// the events of `self`.
    pub fn is_completion_of(&self, h: &History) -> bool {
        // txns must coincide.
        if self.txn_count() != h.txn_count() {
            return false;
        }
        for t in h.txns() {
            let Some(mine) = self.txn(t.id()) else {
                return false;
            };
            let orig: Vec<_> = t.events().collect();
            let ext: Vec<_> = mine.events().collect();
            if ext.len() < orig.len() || ext[..orig.len()] != orig[..] {
                return false;
            }
            let added = &ext[orig.len()..];
            let ok = if t.is_t_complete() {
                added.is_empty()
            } else {
                match t.commit_capability() {
                    CommitCapability::CommitPending => {
                        added.len() == 1
                            && matches!(
                                added[0].kind,
                                crate::EventKind::Resp(Ret::Committed | Ret::Aborted)
                            )
                    }
                    CommitCapability::NeverCommitted => {
                        match t.ops().last() {
                            Some(last) if !last.is_complete() => {
                                // Incomplete read/write/tryA: one A_k response.
                                added.len() == 1
                                    && matches!(added[0].kind, crate::EventKind::Resp(Ret::Aborted))
                            }
                            _ => {
                                // Complete, no tryC: tryC_k · A_k.
                                added.len() == 2
                                    && matches!(added[0].kind, crate::EventKind::Inv(Op::TryCommit))
                                    && matches!(added[1].kind, crate::EventKind::Resp(Ret::Aborted))
                            }
                        }
                    }
                    CommitCapability::Committed => false, // t-complete handled above
                }
            };
            if !ok {
                return false;
            }
        }
        // Original events must embed as a subsequence.
        let mut it = self.events().iter();
        h.events()
            .iter()
            .all(|orig| it.any(|candidate| candidate == orig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ObjId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn t_complete_history_is_its_own_completion() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        let c = h.complete_aborting();
        assert_eq!(c, h);
        assert!(h.is_completion_of(&h));
        assert!(h.commit_pending_txns().is_empty());
    }

    #[test]
    fn pending_try_commit_offers_choice() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .build();
        assert_eq!(h.commit_pending_txns(), vec![t(1)]);

        let committed = h.complete_with(|_| true);
        assert!(committed.txn(t(1)).unwrap().is_committed());
        assert!(committed.is_completion_of(&h));

        let aborted = h.complete_with(|_| false);
        assert!(aborted.txn(t(1)).unwrap().is_aborted());
        assert!(aborted.is_completion_of(&h));
    }

    #[test]
    fn incomplete_read_gets_aborted() {
        let h = HistoryBuilder::new().inv_read(t(1), x()).build();
        let c = h.complete_aborting();
        assert!(c.txn(t(1)).unwrap().is_aborted());
        assert!(c.is_completion_of(&h));
        // The read itself returned A_k.
        assert_eq!(c.txn(t(1)).unwrap().ops()[0].resp, Some(Ret::Aborted));
    }

    #[test]
    fn complete_but_not_t_complete_gets_try_commit_abort() {
        let h = HistoryBuilder::new().read(t(1), x(), v(0)).build();
        let c = h.complete_aborting();
        let view = c.txn(t(1)).unwrap();
        assert!(view.is_aborted());
        assert_eq!(view.ops().len(), 2);
        assert!(view.ops()[1].op.is_try_commit());
        assert!(c.is_completion_of(&h));
    }

    #[test]
    fn completions_enumerates_choice_space() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .inv_try_commit(t(1))
            .write(t(2), x(), v(2))
            .inv_try_commit(t(2))
            .build();
        let all: Vec<_> = h.completions().collect();
        assert_eq!(all.len(), 4);
        let committed_counts: Vec<usize> = all
            .iter()
            .map(|c| c.txns().filter(|t| t.is_committed()).count())
            .collect();
        let mut sorted = committed_counts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 1, 2]);
        for c in &all {
            assert!(c.is_t_complete());
            assert!(c.is_completion_of(&h));
        }
    }

    #[test]
    fn unrelated_history_is_not_a_completion() {
        let h = HistoryBuilder::new().inv_read(t(1), x()).build();
        let other = HistoryBuilder::new()
            .committed_writer(t(2), x(), v(1))
            .build();
        assert!(!other.is_completion_of(&h));
    }

    #[test]
    fn changing_a_value_is_not_a_completion() {
        let h = HistoryBuilder::new().read(t(1), x(), v(0)).build();
        let tampered = HistoryBuilder::new()
            .read(t(1), x(), v(9))
            .commit_aborted(t(1))
            .build();
        assert!(!tampered.is_completion_of(&h));
    }
}
