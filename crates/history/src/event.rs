//! The event alphabet of transactional histories.
//!
//! A history is a sequence of *invocation* and *response* events of
//! t-operations (Section 2 of the paper). Each t-operation is a matching
//! pair of an [`Op`] invocation and a [`Ret`] response:
//!
//! 1. `read_k(X)` returns a value in `V` or `A_k` (abort);
//! 2. `write_k(X, v)` returns `ok_k` or `A_k`;
//! 3. `tryC_k` returns `C_k` (commit) or `A_k`;
//! 4. `tryA_k` returns `A_k`.

use crate::{ObjId, TxnId, Value};
use std::fmt;

/// Invocation of a t-operation.
///
/// # Examples
///
/// ```
/// use duop_history::{ObjId, Op, Value};
///
/// let read = Op::Read(ObjId::new(0));
/// let write = Op::Write(ObjId::new(0), Value::new(1));
/// assert_eq!(read.obj(), Some(ObjId::new(0)));
/// assert!(write.is_write());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `read_k(X)`: read t-object `X`.
    Read(ObjId),
    /// `write_k(X, v)`: write value `v` to t-object `X`.
    Write(ObjId, Value),
    /// `tryC_k()`: attempt to commit.
    TryCommit,
    /// `tryA_k()`: abort.
    TryAbort,
}

impl Op {
    /// The t-object this operation accesses, if it is a read or a write.
    pub fn obj(self) -> Option<ObjId> {
        match self {
            Op::Read(x) | Op::Write(x, _) => Some(x),
            Op::TryCommit | Op::TryAbort => None,
        }
    }

    /// Returns `true` for `read_k(X)`.
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read(_))
    }

    /// Returns `true` for `write_k(X, v)`.
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write(_, _))
    }

    /// Returns `true` for `tryC_k()`.
    pub fn is_try_commit(self) -> bool {
        matches!(self, Op::TryCommit)
    }

    /// Returns `true` for `tryA_k()`.
    pub fn is_try_abort(self) -> bool {
        matches!(self, Op::TryAbort)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(x) => write!(f, "R({x})"),
            Op::Write(x, v) => write!(f, "W({x},{v})"),
            Op::TryCommit => write!(f, "tryC"),
            Op::TryAbort => write!(f, "tryA"),
        }
    }
}

/// Response of a t-operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ret {
    /// A value returned by a read.
    Value(Value),
    /// `ok_k`: successful write.
    Ok,
    /// `C_k`: the transaction committed.
    Committed,
    /// `A_k`: the transaction aborted.
    Aborted,
}

impl Ret {
    /// Returns the read value, if this response carries one.
    pub fn value(self) -> Option<Value> {
        match self {
            Ret::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` for the abort response `A_k`.
    pub fn is_abort(self) -> bool {
        matches!(self, Ret::Aborted)
    }

    /// Returns `true` for the commit response `C_k`.
    pub fn is_commit(self) -> bool {
        matches!(self, Ret::Committed)
    }

    /// Returns `true` if `self` is a valid response for invocation `op`.
    ///
    /// Matches the signatures in Section 2: reads return values or `A_k`,
    /// writes return `ok_k` or `A_k`, `tryC` returns `C_k` or `A_k` and
    /// `tryA` returns only `A_k`.
    pub fn matches(self, op: Op) -> bool {
        matches!(
            (op, self),
            (Op::Read(_), Ret::Value(_) | Ret::Aborted)
                | (Op::Write(_, _), Ret::Ok | Ret::Aborted)
                | (Op::TryCommit, Ret::Committed | Ret::Aborted)
                | (Op::TryAbort, Ret::Aborted)
        )
    }
}

impl fmt::Display for Ret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ret::Value(v) => write!(f, "{v}"),
            Ret::Ok => write!(f, "ok"),
            Ret::Committed => write!(f, "C"),
            Ret::Aborted => write!(f, "A"),
        }
    }
}

/// Either half of a t-operation: an invocation or a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An invocation event.
    Inv(Op),
    /// A response event.
    Resp(Ret),
}

impl EventKind {
    /// Returns `true` if this is an invocation event.
    pub fn is_inv(self) -> bool {
        matches!(self, EventKind::Inv(_))
    }

    /// Returns `true` if this is a response event.
    pub fn is_resp(self) -> bool {
        matches!(self, EventKind::Resp(_))
    }
}

/// A single event of a history: an invocation or a response, tagged with the
/// transaction it belongs to.
///
/// # Examples
///
/// ```
/// use duop_history::{Event, EventKind, Op, ObjId, TxnId};
///
/// let e = Event::inv(TxnId::new(1), Op::Read(ObjId::new(0)));
/// assert_eq!(e.txn, TxnId::new(1));
/// assert!(e.kind.is_inv());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The transaction this event belongs to.
    pub txn: TxnId,
    /// Invocation or response payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an invocation event for transaction `txn`.
    pub fn inv(txn: TxnId, op: Op) -> Self {
        Event {
            txn,
            kind: EventKind::Inv(op),
        }
    }

    /// Creates a response event for transaction `txn`.
    pub fn resp(txn: TxnId, ret: Ret) -> Self {
        Event {
            txn,
            kind: EventKind::Resp(ret),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Inv(op) => write!(f, "{}:{}", self.txn, op),
            EventKind::Resp(ret) => write!(f, "{}->{}", self.txn, ret),
        }
    }
}

/// A fixed-width, u32/u64-packed form of an [`Event`].
///
/// This is the interned in-memory layout the binary trace decoder fills
/// and the layout hashed into planner/search memo keys: one tag byte plus
/// three integer operands, with unused operands zeroed so equal events
/// always pack to bit-identical records.
///
/// # Examples
///
/// ```
/// use duop_history::{Event, ObjId, Op, PackedEvent, TxnId, Value};
///
/// let e = Event::inv(TxnId::new(1), Op::Write(ObjId::new(2), Value::new(3)));
/// let p = PackedEvent::pack(e);
/// assert_eq!(p.tag, PackedEvent::TAG_INV_WRITE);
/// assert_eq!(p.unpack(), Some(e));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackedEvent {
    /// Event kind tag, one of the `TAG_*` constants.
    pub tag: u8,
    /// Transaction index.
    pub txn: u32,
    /// T-object index, or 0 when the kind carries no object.
    pub obj: u32,
    /// Value operand, or 0 when the kind carries no value.
    pub value: u64,
}

impl PackedEvent {
    /// `read_k(X)` invocation: operands `txn`, `obj`.
    pub const TAG_INV_READ: u8 = 0;
    /// `write_k(X, v)` invocation: operands `txn`, `obj`, `value`.
    pub const TAG_INV_WRITE: u8 = 1;
    /// `tryC_k` invocation: operand `txn`.
    pub const TAG_INV_TRY_COMMIT: u8 = 2;
    /// `tryA_k` invocation: operand `txn`.
    pub const TAG_INV_TRY_ABORT: u8 = 3;
    /// Read-value response: operands `txn`, `value`.
    pub const TAG_RESP_VALUE: u8 = 4;
    /// `ok_k` response: operand `txn`.
    pub const TAG_RESP_OK: u8 = 5;
    /// `C_k` response: operand `txn`.
    pub const TAG_RESP_COMMITTED: u8 = 6;
    /// `A_k` response: operand `txn`.
    pub const TAG_RESP_ABORTED: u8 = 7;
    /// The largest valid tag.
    pub const TAG_MAX: u8 = 7;

    /// Packs an event into the fixed-width layout.
    pub fn pack(ev: Event) -> Self {
        let txn = ev.txn.index();
        let (tag, obj, value) = match ev.kind {
            EventKind::Inv(Op::Read(x)) => (Self::TAG_INV_READ, x.index(), 0),
            EventKind::Inv(Op::Write(x, v)) => (Self::TAG_INV_WRITE, x.index(), v.get()),
            EventKind::Inv(Op::TryCommit) => (Self::TAG_INV_TRY_COMMIT, 0, 0),
            EventKind::Inv(Op::TryAbort) => (Self::TAG_INV_TRY_ABORT, 0, 0),
            EventKind::Resp(Ret::Value(v)) => (Self::TAG_RESP_VALUE, 0, v.get()),
            EventKind::Resp(Ret::Ok) => (Self::TAG_RESP_OK, 0, 0),
            EventKind::Resp(Ret::Committed) => (Self::TAG_RESP_COMMITTED, 0, 0),
            EventKind::Resp(Ret::Aborted) => (Self::TAG_RESP_ABORTED, 0, 0),
        };
        PackedEvent {
            tag,
            txn,
            obj,
            value,
        }
    }

    /// Unpacks into an [`Event`], or `None` if the tag is invalid.
    pub fn unpack(self) -> Option<Event> {
        let txn = TxnId::new(self.txn);
        let kind = match self.tag {
            Self::TAG_INV_READ => EventKind::Inv(Op::Read(ObjId::new(self.obj))),
            Self::TAG_INV_WRITE => {
                EventKind::Inv(Op::Write(ObjId::new(self.obj), Value::new(self.value)))
            }
            Self::TAG_INV_TRY_COMMIT => EventKind::Inv(Op::TryCommit),
            Self::TAG_INV_TRY_ABORT => EventKind::Inv(Op::TryAbort),
            Self::TAG_RESP_VALUE => EventKind::Resp(Ret::Value(Value::new(self.value))),
            Self::TAG_RESP_OK => EventKind::Resp(Ret::Ok),
            Self::TAG_RESP_COMMITTED => EventKind::Resp(Ret::Committed),
            Self::TAG_RESP_ABORTED => EventKind::Resp(Ret::Aborted),
            _ => return None,
        };
        Some(Event { txn, kind })
    }
}

/// A complete t-operation: an invocation with its response (when present).
///
/// Produced by [`TxnView::ops`](crate::TxnView::ops); `resp` is `None` for
/// the final, incomplete t-operation of a transaction that is still waiting
/// for a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// The invocation.
    pub op: Op,
    /// The matching response, or `None` if the operation is incomplete.
    pub resp: Option<Ret>,
    /// Index of the invocation event in the history.
    pub inv_index: usize,
    /// Index of the response event in the history, if complete.
    pub resp_index: Option<usize>,
}

impl OpRecord {
    /// Returns `true` if the operation has received its response.
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }

    /// Returns the read value for a complete, non-aborted `read` operation.
    pub fn read_value(&self) -> Option<Value> {
        if self.op.is_read() {
            self.resp.and_then(Ret::value)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> ObjId {
        ObjId::new(0)
    }

    #[test]
    fn response_matching_follows_signatures() {
        assert!(Ret::Value(Value::new(3)).matches(Op::Read(x())));
        assert!(Ret::Aborted.matches(Op::Read(x())));
        assert!(!Ret::Ok.matches(Op::Read(x())));
        assert!(!Ret::Committed.matches(Op::Read(x())));

        assert!(Ret::Ok.matches(Op::Write(x(), Value::new(1))));
        assert!(Ret::Aborted.matches(Op::Write(x(), Value::new(1))));
        assert!(!Ret::Value(Value::new(1)).matches(Op::Write(x(), Value::new(1))));

        assert!(Ret::Committed.matches(Op::TryCommit));
        assert!(Ret::Aborted.matches(Op::TryCommit));
        assert!(!Ret::Ok.matches(Op::TryCommit));

        assert!(Ret::Aborted.matches(Op::TryAbort));
        assert!(!Ret::Committed.matches(Op::TryAbort));
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Read(x()).obj(), Some(x()));
        assert_eq!(Op::Write(x(), Value::new(1)).obj(), Some(x()));
        assert_eq!(Op::TryCommit.obj(), None);
        assert!(Op::Read(x()).is_read());
        assert!(Op::Write(x(), Value::new(1)).is_write());
        assert!(Op::TryCommit.is_try_commit());
        assert!(Op::TryAbort.is_try_abort());
    }

    #[test]
    fn event_constructors() {
        let t = TxnId::new(2);
        let e = Event::inv(t, Op::TryCommit);
        assert!(e.kind.is_inv());
        assert!(!e.kind.is_resp());
        let r = Event::resp(t, Ret::Committed);
        assert!(r.kind.is_resp());
    }

    #[test]
    fn display_forms() {
        let t = TxnId::new(1);
        assert_eq!(Event::inv(t, Op::Read(x())).to_string(), "T1:R(X0)");
        assert_eq!(
            Event::resp(t, Ret::Value(Value::new(5))).to_string(),
            "T1->5"
        );
        assert_eq!(Event::resp(t, Ret::Committed).to_string(), "T1->C");
        assert_eq!(
            Event::inv(t, Op::Write(x(), Value::new(2))).to_string(),
            "T1:W(X0,2)"
        );
    }

    #[test]
    fn ret_accessors() {
        assert_eq!(Ret::Value(Value::new(4)).value(), Some(Value::new(4)));
        assert_eq!(Ret::Ok.value(), None);
        assert!(Ret::Aborted.is_abort());
        assert!(Ret::Committed.is_commit());
        assert!(!Ret::Ok.is_abort());
    }

    #[test]
    fn serde_roundtrip() {
        let e = Event::inv(TxnId::new(1), Op::Write(x(), Value::new(9)));
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
