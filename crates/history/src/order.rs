//! Orders on transactions beyond real-time: live sets and the `≺LS`
//! relation used by Lemma 4 and Theorem 5.

use crate::{History, TxnId};

impl History {
    /// The *live set* `Lset_H(T)` of transaction `txn` (Section 3).
    ///
    /// Contains every transaction `T'` (including `T` itself) such that
    /// neither the last event of `T'` precedes the first event of `T` nor
    /// the last event of `T` precedes the first event of `T'` — i.e. the
    /// transactions whose event spans intersect `T`'s span.
    ///
    /// Returns an empty vector if `txn` does not participate in the
    /// history. Results are ordered by first appearance.
    pub fn live_set(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(t) = self.txn(txn) else {
            return Vec::new();
        };
        let (first, last) = (t.first_event_index(), t.last_event_index());
        self.txns()
            .filter(|other| {
                let (of, ol) = (other.first_event_index(), other.last_event_index());
                ol >= first && last >= of
            })
            .map(|other| other.id())
            .collect()
    }

    /// The live-set precedence `T ≺LS T'` (Section 3): every transaction in
    /// `Lset_H(T)` is complete and its last event precedes the first event
    /// of `T'`.
    ///
    /// Returns `false` if either transaction does not participate.
    pub fn precedes_ls(&self, t: TxnId, t_prime: TxnId) -> bool {
        let Some(target) = self.txn(t_prime) else {
            return false;
        };
        if !self.participates(t) {
            return false;
        }
        let first_of_target = target.first_event_index();
        let live = self.live_set(t);
        if live.is_empty() {
            return false;
        }
        live.into_iter().all(|id| {
            let view = self.txn(id).expect("live set members participate");
            view.is_complete() && view.last_event_index() < first_of_target
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn live_set_contains_self() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert_eq!(h.live_set(t(1)), vec![t(1)]);
    }

    #[test]
    fn live_set_of_missing_txn_is_empty() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert!(h.live_set(t(9)).is_empty());
    }

    #[test]
    fn overlapping_txns_are_in_each_others_live_sets() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .build();
        assert_eq!(h.live_set(t(1)), vec![t(1), t(2)]);
        assert_eq!(h.live_set(t(2)), vec![t(1), t(2)]);
    }

    #[test]
    fn disjoint_spans_are_not_live() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert_eq!(h.live_set(t(1)), vec![t(1)]);
        assert_eq!(h.live_set(t(2)), vec![t(2)]);
    }

    #[test]
    fn precedes_ls_requires_whole_live_set_to_finish() {
        // T1 and T2 overlap; T3 starts after both finish.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_value(t(2), v(0))
            .resp_ok(t(1))
            .commit(t(1))
            .commit(t(2))
            .committed_reader(t(3), x(), v(1))
            .build();
        assert!(h.precedes_ls(t(1), t(3)));
        assert!(h.precedes_ls(t(2), t(3)));
        assert!(!h.precedes_ls(t(1), t(2)), "T2 is in T1's live set");
        assert!(!h.precedes_ls(t(3), t(1)));
    }

    #[test]
    fn precedes_ls_fails_when_live_peer_still_running() {
        // T2 overlaps T1 and is still incomplete when T3 starts.
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_ok(t(1))
            .commit(t(1))
            .committed_reader(t(3), x(), v(1))
            .resp_value(t(2), v(0))
            .build();
        assert!(
            !h.precedes_ls(t(1), t(3)),
            "T2 in Lset(T1) ends after T3 begins"
        );
    }

    #[test]
    fn precedes_ls_implies_rt() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(h.precedes_ls(t(1), t(2)));
        assert!(h.precedes_rt(t(1), t(2)));
    }
}
