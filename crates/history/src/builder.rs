//! Ergonomic construction of histories.
//!
//! [`HistoryBuilder`] is a consuming builder that appends invocation and
//! response events, with conveniences for whole t-operations and whole
//! transactions. It is the idiomatic way to transcribe paper-style figures
//! into [`History`] values.

use crate::{Event, History, MalformedHistoryError, ObjId, Op, Ret, TxnId, Value};

/// A consuming builder for [`History`] values.
///
/// Event-level methods (`inv_read`, `resp_value`, ...) give full control
/// over interleavings; op-level methods (`read`, `write`, `commit`, ...)
/// append an invocation immediately followed by its response.
///
/// # Examples
///
/// Transcribing "T1 writes 1 to X and commits; T2 then reads 1":
///
/// ```
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let (t1, t2) = (TxnId::new(1), TxnId::new(2));
/// let x = ObjId::new(0);
/// let h = HistoryBuilder::new()
///     .write(t1, x, Value::new(1))
///     .commit(t1)
///     .read(t2, x, Value::new(1))
///     .commit(t2)
///     .build();
/// assert!(h.is_t_complete());
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistoryBuilder {
    events: Vec<Event>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Appends a raw event.
    pub fn event(mut self, event: Event) -> Self {
        self.events.push(event);
        self
    }

    // --- event-level API -------------------------------------------------

    /// Appends the invocation of `read_k(X)`.
    pub fn inv_read(self, txn: TxnId, obj: ObjId) -> Self {
        self.event(Event::inv(txn, Op::Read(obj)))
    }

    /// Appends the invocation of `write_k(X, v)`.
    pub fn inv_write(self, txn: TxnId, obj: ObjId, value: Value) -> Self {
        self.event(Event::inv(txn, Op::Write(obj, value)))
    }

    /// Appends the invocation of `tryC_k()`.
    pub fn inv_try_commit(self, txn: TxnId) -> Self {
        self.event(Event::inv(txn, Op::TryCommit))
    }

    /// Appends the invocation of `tryA_k()`.
    pub fn inv_try_abort(self, txn: TxnId) -> Self {
        self.event(Event::inv(txn, Op::TryAbort))
    }

    /// Appends a value response (for a pending read).
    pub fn resp_value(self, txn: TxnId, value: Value) -> Self {
        self.event(Event::resp(txn, Ret::Value(value)))
    }

    /// Appends an `ok_k` response (for a pending write).
    pub fn resp_ok(self, txn: TxnId) -> Self {
        self.event(Event::resp(txn, Ret::Ok))
    }

    /// Appends a `C_k` response (for a pending `tryC_k()`).
    pub fn resp_committed(self, txn: TxnId) -> Self {
        self.event(Event::resp(txn, Ret::Committed))
    }

    /// Appends an `A_k` response (for any pending operation).
    pub fn resp_aborted(self, txn: TxnId) -> Self {
        self.event(Event::resp(txn, Ret::Aborted))
    }

    // --- op-level API ----------------------------------------------------

    /// Appends a complete `read_k(X) → v`.
    pub fn read(self, txn: TxnId, obj: ObjId, value: Value) -> Self {
        self.inv_read(txn, obj).resp_value(txn, value)
    }

    /// Appends a complete `write_k(X, v) → ok_k`.
    pub fn write(self, txn: TxnId, obj: ObjId, value: Value) -> Self {
        self.inv_write(txn, obj, value).resp_ok(txn)
    }

    /// Appends a complete `tryC_k() → C_k`.
    pub fn commit(self, txn: TxnId) -> Self {
        self.inv_try_commit(txn).resp_committed(txn)
    }

    /// Appends a complete `tryC_k() → A_k` (a failed commit attempt).
    pub fn commit_aborted(self, txn: TxnId) -> Self {
        self.inv_try_commit(txn).resp_aborted(txn)
    }

    /// Appends a complete `tryA_k() → A_k`.
    pub fn try_abort(self, txn: TxnId) -> Self {
        self.inv_try_abort(txn).resp_aborted(txn)
    }

    // --- transaction-level API -------------------------------------------

    /// Appends a whole transaction that writes `value` to `obj` and commits:
    /// `W(obj,value)·ok · tryC·C`.
    pub fn committed_writer(self, txn: TxnId, obj: ObjId, value: Value) -> Self {
        self.write(txn, obj, value).commit(txn)
    }

    /// Appends a whole transaction that reads `value` from `obj` and
    /// commits: `R(obj)→value · tryC·C`.
    pub fn committed_reader(self, txn: TxnId, obj: ObjId, value: Value) -> Self {
        self.read(txn, obj, value).commit(txn)
    }

    // --- terminal methods ------------------------------------------------

    /// Builds the history, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] if the assembled event sequence
    /// is not well-formed.
    pub fn try_build(self) -> Result<History, MalformedHistoryError> {
        History::new(self.events)
    }

    /// Builds the history.
    ///
    /// # Panics
    ///
    /// Panics if the assembled event sequence is not well-formed; use
    /// [`try_build`](Self::try_build) to handle the error instead. Intended
    /// for fixtures and tests where malformedness is a programming error.
    pub fn build(self) -> History {
        self.try_build()
            .expect("builder assembled a malformed history")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn interleaved_construction() {
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .inv_read(t(2), x())
            .resp_ok(t(1))
            .resp_value(t(2), v(0))
            .build();
        assert_eq!(h.len(), 4);
        assert!(h.overlaps(t(1), t(2)));
    }

    #[test]
    fn op_level_helpers_are_adjacent() {
        let h = HistoryBuilder::new().read(t(1), x(), v(0)).build();
        assert!(h.is_sequential());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn txn_level_helpers() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(h.is_t_sequential());
        assert!(h.txn(t(1)).unwrap().is_committed());
        assert!(h.txn(t(2)).unwrap().is_committed());
        assert!(h.precedes_rt(t(1), t(2)));
    }

    #[test]
    fn failed_commit_and_try_abort() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .commit_aborted(t(1))
            .read(t(2), x(), v(0))
            .try_abort(t(2))
            .build();
        assert!(h.txn(t(1)).unwrap().is_aborted());
        assert!(h.txn(t(2)).unwrap().is_aborted());
    }

    #[test]
    fn try_build_reports_malformedness() {
        let res = HistoryBuilder::new().resp_ok(t(1)).try_build();
        assert!(res.is_err());
    }

    #[test]
    #[should_panic(expected = "malformed history")]
    fn build_panics_on_malformedness() {
        HistoryBuilder::new().resp_ok(t(1)).build();
    }
}
