//! Identifier newtypes for transactions, t-objects and values.
//!
//! The paper's model (Section 2) ranges over transactions `T_k`, t-objects
//! `X` and values `v ∈ V`. We mirror those with strongly typed wrappers so
//! that a transaction identifier can never be confused with an object
//! identifier or a value.

use std::fmt;

/// Identifier of a transaction `T_k`.
///
/// Identifier `0` is reserved for the *imaginary* initial transaction `T_0`
/// that writes the initial value to every t-object and commits before any
/// other transaction begins (Section 2 of the paper). `T_0` never appears
/// explicitly in a [`History`](crate::History); it exists only as the
/// conventional source of [`Value::INITIAL`].
///
/// # Examples
///
/// ```
/// use duop_history::TxnId;
///
/// let t1 = TxnId::new(1);
/// assert_eq!(t1.index(), 1);
/// assert!(!t1.is_initial());
/// assert!(TxnId::INITIAL.is_initial());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(u32);

impl TxnId {
    /// The imaginary initial transaction `T_0`.
    pub const INITIAL: TxnId = TxnId(0);

    /// The reserved id of the synthetic baseline transaction a streaming
    /// monitor substitutes for a certified, compacted prefix (the paper's
    /// `T_0` convention generalised to a non-initial cut point). Trace
    /// parsers cap real ids at [`trace::MAX_ID`](crate::trace::MAX_ID), so
    /// this id can never collide with a transaction read from a trace.
    pub const BASELINE: TxnId = TxnId(u32::MAX);

    /// Creates a transaction identifier.
    pub const fn new(index: u32) -> Self {
        TxnId(index)
    }

    /// Returns the numeric index `k` of `T_k`.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the imaginary initial transaction `T_0`.
    pub const fn is_initial(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for TxnId {
    fn from(index: u32) -> Self {
        TxnId(index)
    }
}

/// Identifier of a transactional object (t-object) `X`.
///
/// # Examples
///
/// ```
/// use duop_history::ObjId;
///
/// let x = ObjId::new(0);
/// let y = ObjId::new(1);
/// assert_ne!(x, y);
/// assert_eq!(x.to_string(), "X0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u32);

impl ObjId {
    /// Creates a t-object identifier.
    pub const fn new(index: u32) -> Self {
        ObjId(index)
    }

    /// Returns the numeric index of this t-object.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl From<u32> for ObjId {
    fn from(index: u32) -> Self {
        ObjId(index)
    }
}

/// A value `v ∈ V` read from or written to a t-object.
///
/// The domain `V` is modelled as `u64`. By the paper's `T_0` convention,
/// every t-object holds [`Value::INITIAL`] before any transaction writes it.
///
/// # Examples
///
/// ```
/// use duop_history::Value;
///
/// assert_eq!(Value::INITIAL, Value::new(0));
/// assert_eq!(Value::new(7).get(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// The initial value written to every t-object by the imaginary
    /// transaction `T_0`.
    pub const INITIAL: Value = Value(0);

    /// Creates a value.
    pub const fn new(v: u64) -> Self {
        Value(v)
    }

    /// Returns the underlying integer.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_roundtrip() {
        let t = TxnId::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(TxnId::from(42u32), t);
        assert_eq!(format!("{t}"), "T42");
        assert_eq!(format!("{t:?}"), "T42");
    }

    #[test]
    fn initial_txn_is_zero() {
        assert!(TxnId::INITIAL.is_initial());
        assert!(!TxnId::new(1).is_initial());
        assert_eq!(TxnId::INITIAL.index(), 0);
    }

    #[test]
    fn obj_id_roundtrip() {
        let x = ObjId::new(3);
        assert_eq!(x.index(), 3);
        assert_eq!(ObjId::from(3u32), x);
        assert_eq!(format!("{x}"), "X3");
    }

    #[test]
    fn value_default_is_initial() {
        assert_eq!(Value::default(), Value::INITIAL);
        assert_eq!(Value::INITIAL.get(), 0);
        assert_eq!(Value::from(9u64), Value::new(9));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TxnId::new(1) < TxnId::new(2));
        assert!(ObjId::new(0) < ObjId::new(1));
        assert!(Value::new(5) < Value::new(6));
    }

    #[test]
    fn serde_transparent() {
        let t = TxnId::new(7);
        assert_eq!(serde_json::to_string(&t).unwrap(), "7");
        let back: TxnId = serde_json::from_str("7").unwrap();
        assert_eq!(back, t);
    }
}
