//! Formal model of transactional-memory histories.
//!
//! This crate implements Section 2 of *Safety of Deferred Update in
//! Transactional Memory* (Attiya, Hans, Kuznetsov, Ravi; ICDCS 2013): the
//! event alphabet of t-operations, well-formed histories, completeness and
//! t-completeness, the real-time order `≺RT`, live sets and `≺LS`,
//! completions (Definition 2), and legality of t-sequential histories.
//!
//! It is the substrate on which the [`duop-core`] checkers for du-opacity
//! and related correctness criteria are built.
//!
//! [`duop-core`]: https://example.org/du-opacity
//!
//! # Quick tour
//!
//! ```
//! use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
//!
//! let (t1, t2) = (TxnId::new(1), TxnId::new(2));
//! let x = ObjId::new(0);
//!
//! // T1 writes 1 to X and commits; T2 reads it back and commits.
//! let h = HistoryBuilder::new()
//!     .committed_writer(t1, x, Value::new(1))
//!     .committed_reader(t2, x, Value::new(1))
//!     .build();
//!
//! assert!(h.is_t_sequential());
//! assert!(h.is_legal());
//! assert!(h.precedes_rt(t1, t2));
//! ```
//!
//! Histories with concurrency are assembled event by event:
//!
//! ```
//! use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
//!
//! let (t1, t2) = (TxnId::new(1), TxnId::new(2));
//! let x = ObjId::new(0);
//!
//! // T2's read overlaps T1's commit attempt.
//! let h = HistoryBuilder::new()
//!     .write(t1, x, Value::new(1))
//!     .inv_try_commit(t1)
//!     .read(t2, x, Value::new(1))
//!     .resp_committed(t1)
//!     .build();
//!
//! assert!(h.overlaps(t1, t2));
//! assert_eq!(h.commit_pending_txns(), vec![]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod builder;
mod complete;
mod event;
mod history;
mod ids;
mod order;
mod seq;
mod serde_impls;
mod stats;

pub mod binary;
pub mod dbcop;
pub mod reader;
pub mod render;
pub mod trace;

pub use builder::HistoryBuilder;
pub use event::{Event, EventKind, Op, OpRecord, PackedEvent, Ret};
pub use history::{CommitCapability, History, MalformedHistoryError, TxnView};
pub use ids::{ObjId, TxnId, Value};
pub use seq::LegalityError;
pub use stats::HistoryStats;
