//! Hand-written serialization for the event alphabet.
//!
//! The serde shim (see `vendor/serde`) has no derive macro, so the
//! conversions live here. The encoding matches what `serde_derive` would
//! emit for the original annotations — transparent newtypes serialize as
//! bare integers, enums are externally tagged (`"TryCommit"`,
//! `{"Read":0}`, `{"Write":[0,1]}`) — so traces written by earlier builds
//! parse unchanged.

use crate::{Event, EventKind, ObjId, Op, Ret, TxnId, Value};
use serde::{Content, DeError, Deserialize, Serialize};

impl Serialize for TxnId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.index()))
    }
}

impl Deserialize for TxnId {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        u32::from_content(content).map(TxnId::new)
    }
}

impl Serialize for ObjId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.index()))
    }
}

impl Deserialize for ObjId {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        u32::from_content(content).map(ObjId::new)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Content::U64(self.get())
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        u64::from_content(content).map(Value::new)
    }
}

/// `"Tag"` for a unit variant.
fn unit_variant(tag: &str) -> Content {
    Content::Str(tag.to_owned())
}

/// `{"Tag": payload}` for a newtype or tuple variant.
fn tagged(tag: &str, payload: Content) -> Content {
    Content::Map(vec![(tag.to_owned(), payload)])
}

/// Splits an externally tagged variant into `(tag, payload)`; unit
/// variants yield no payload.
fn variant(content: &Content) -> Result<(&str, Option<&Content>), DeError> {
    match content {
        Content::Str(tag) => Ok((tag, None)),
        Content::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        _ => Err(DeError::custom("expected an externally tagged enum")),
    }
}

fn payload<'c>(tag: &str, payload: Option<&'c Content>) -> Result<&'c Content, DeError> {
    payload.ok_or_else(|| DeError::custom(format!("variant `{tag}` expects a payload")))
}

impl Serialize for Op {
    fn to_content(&self) -> Content {
        match self {
            Op::Read(x) => tagged("Read", x.to_content()),
            Op::Write(x, v) => tagged("Write", Content::Seq(vec![x.to_content(), v.to_content()])),
            Op::TryCommit => unit_variant("TryCommit"),
            Op::TryAbort => unit_variant("TryAbort"),
        }
    }
}

impl Deserialize for Op {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let (tag, body) = variant(content)?;
        match tag {
            "Read" => ObjId::from_content(payload(tag, body)?).map(Op::Read),
            "Write" => match payload(tag, body)? {
                Content::Seq(items) if items.len() == 2 => Ok(Op::Write(
                    ObjId::from_content(&items[0])?,
                    Value::from_content(&items[1])?,
                )),
                _ => Err(DeError::custom("`Write` expects [obj, value]")),
            },
            "TryCommit" => Ok(Op::TryCommit),
            "TryAbort" => Ok(Op::TryAbort),
            other => Err(DeError::custom(format!("unknown Op variant `{other}`"))),
        }
    }
}

impl Serialize for Ret {
    fn to_content(&self) -> Content {
        match self {
            Ret::Value(v) => tagged("Value", v.to_content()),
            Ret::Ok => unit_variant("Ok"),
            Ret::Committed => unit_variant("Committed"),
            Ret::Aborted => unit_variant("Aborted"),
        }
    }
}

impl Deserialize for Ret {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let (tag, body) = variant(content)?;
        match tag {
            "Value" => Value::from_content(payload(tag, body)?).map(Ret::Value),
            "Ok" => Ok(Ret::Ok),
            "Committed" => Ok(Ret::Committed),
            "Aborted" => Ok(Ret::Aborted),
            other => Err(DeError::custom(format!("unknown Ret variant `{other}`"))),
        }
    }
}

impl Serialize for EventKind {
    fn to_content(&self) -> Content {
        match self {
            EventKind::Inv(op) => tagged("Inv", op.to_content()),
            EventKind::Resp(ret) => tagged("Resp", ret.to_content()),
        }
    }
}

impl Deserialize for EventKind {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let (tag, body) = variant(content)?;
        match tag {
            "Inv" => Op::from_content(payload(tag, body)?).map(EventKind::Inv),
            "Resp" => Ret::from_content(payload(tag, body)?).map(EventKind::Resp),
            other => Err(DeError::custom(format!(
                "unknown EventKind variant `{other}`"
            ))),
        }
    }
}

impl Serialize for Event {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("txn".to_owned(), self.txn.to_content()),
            ("kind".to_owned(), self.kind.to_content()),
        ])
    }
}

impl Deserialize for Event {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let Content::Map(entries) = content else {
            return Err(DeError::custom("expected an Event object"));
        };
        let field = |name: &str| {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("Event missing field `{name}`")))
        };
        Ok(Event {
            txn: TxnId::from_content(field("txn")?)?,
            kind: EventKind::from_content(field("kind")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_serde_derive_shapes() {
        let e = Event::inv(TxnId::new(1), Op::Write(ObjId::new(0), Value::new(9)));
        assert_eq!(
            serde_json::to_string(&e).unwrap(),
            r#"{"txn":1,"kind":{"Inv":{"Write":[0,9]}}}"#
        );
        let r = Event::resp(TxnId::new(2), Ret::Committed);
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            r#"{"txn":2,"kind":{"Resp":"Committed"}}"#
        );
        let read = Event::inv(TxnId::new(3), Op::Read(ObjId::new(4)));
        assert_eq!(
            serde_json::to_string(&read).unwrap(),
            r#"{"txn":3,"kind":{"Inv":{"Read":4}}}"#
        );
    }

    #[test]
    fn all_variants_roundtrip() {
        let events = [
            Event::inv(TxnId::new(1), Op::Read(ObjId::new(0))),
            Event::resp(TxnId::new(1), Ret::Value(Value::new(5))),
            Event::inv(TxnId::new(1), Op::Write(ObjId::new(1), Value::new(2))),
            Event::resp(TxnId::new(1), Ret::Ok),
            Event::inv(TxnId::new(1), Op::TryCommit),
            Event::resp(TxnId::new(1), Ret::Committed),
            Event::inv(TxnId::new(2), Op::TryAbort),
            Event::resp(TxnId::new(2), Ret::Aborted),
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "roundtrip of {json}");
        }
    }

    #[test]
    fn malformed_variants_error() {
        assert!(serde_json::from_str::<Op>(r#""NoSuchOp""#).is_err());
        assert!(serde_json::from_str::<Op>(r#"{"Write":[0]}"#).is_err());
        assert!(serde_json::from_str::<Op>(r#""Read""#).is_err());
        assert!(serde_json::from_str::<Event>(r#"{"txn":1}"#).is_err());
        assert!(serde_json::from_str::<Event>("7").is_err());
    }
}
