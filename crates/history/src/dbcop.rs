//! Import and export of dbcop-style database histories.
//!
//! dbcop (<https://github.com/rnbguy/dbcop>) records a database execution
//! as sessions of transactions, each transaction a list of read/write
//! events over `(variable, version)` pairs. Its compact serialization
//! writes an event as the tuple `["r", variable, version]` or
//! `["w", variable, version]`; older builds write the tagged-enum form
//! `{"Read": {"variable": v, "version": n}}`. [`import`] accepts both,
//! mirroring dbcop's own backward-compatible decoder.
//!
//! # Model mapping
//!
//! A dbcop *version* becomes a [`Value`]; version `0` / `null` is the
//! uninitialized version, which matches this crate's `T_0` convention of
//! [`Value::INITIAL`]. Each dbcop transaction becomes one [`TxnId`] that
//! reads and writes, then invokes `tryC` (committed) or `tryA` (aborted)
//! according to its `success` flag. Sessions impose program order:
//! transaction `i+1` of a session begins after transaction `i` ends.
//!
//! Cross-session timing is not recorded by dbcop, so the import must pick
//! a concrete event schedule. Transactions at the same session position
//! form a *round*: each opens (its first invocation) in session order, so
//! every pair in a round overlaps and no real-time edges are fabricated —
//! the serialization search keeps its full freedom. The transactions then
//! complete one at a time in a dependency-aware order: a committed writer
//! completes before the readers of its versions, and a writer waits while
//! another transaction still needs the version it would overwrite. Under
//! deferred update a read response may only return an already-committed
//! version, so this scheduling is what lets a serializable dbcop history
//! reconstruct to a legal schedule at all; a greedy order that cannot be
//! found this way falls back to session order, and the checker then
//! reports the (genuine or schedule-induced) anomaly. Verdicts are thus
//! relative to the reconstructed schedule, which is the strongest
//! statement an event-level checker can make about an event-free input.
//!
//! Repeated reads of one variable inside a transaction keep only the first
//! — the paper assumes at most one read per t-object per transaction
//! (WLOG; later reads are served from the first result). String variable
//! names are interned to dense numeric ids and preserved in the binary
//! format's intern table, as are `s<session>_t<index>` provenance names for
//! transactions.

use crate::binary::{InternEntry, InternKind, InternTable};
use crate::trace::{TraceParseError, MAX_ID};
use crate::{Event, History, Op, Ret, TxnId, Value};
use serde::Content;
use std::collections::BTreeMap;

fn err(message: impl Into<String>) -> TraceParseError {
    TraceParseError::Json {
        message: message.into(),
    }
}

/// Interns dbcop variables: numeric variables map to themselves, string
/// variables to densely assigned ids recorded in the intern table.
struct VarIntern {
    by_name: BTreeMap<String, u32>,
    next: u32,
    entries: Vec<InternEntry>,
}

impl VarIntern {
    fn new() -> Self {
        VarIntern {
            by_name: BTreeMap::new(),
            next: 0,
            entries: Vec::new(),
        }
    }

    fn resolve(&mut self, content: &Content) -> Result<u32, TraceParseError> {
        if let Some(v) = content.as_u64() {
            if v > u64::from(MAX_ID) {
                return Err(err(format!("variable id {v} exceeds the maximum {MAX_ID}")));
            }
            // Keep dense ids clear of numerically named variables.
            self.next = self.next.max(v as u32 + 1);
            return Ok(v as u32);
        }
        let Some(name) = content.as_str() else {
            return Err(err("variable must be an integer or a string"));
        };
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        let id = self.next;
        if id > MAX_ID {
            return Err(err(format!("more than {MAX_ID} distinct variables")));
        }
        self.next += 1;
        self.by_name.insert(name.to_owned(), id);
        self.entries.push(InternEntry {
            kind: InternKind::Obj,
            id,
            name: name.to_owned(),
        });
        Ok(id)
    }
}

/// One parsed dbcop event.
enum DbcopEvent {
    Read { var: u32, version: Value },
    Write { var: u32, version: Value },
}

fn parse_version(content: &Content) -> Result<Value, TraceParseError> {
    match content {
        // dbcop encodes the uninitialized version as null.
        Content::Null => Ok(Value::INITIAL),
        other => other
            .as_u64()
            .map(Value::new)
            .ok_or_else(|| err("version must be an integer or null")),
    }
}

fn parse_event(content: &Content, vars: &mut VarIntern) -> Result<DbcopEvent, TraceParseError> {
    match content {
        // Compact form: ["r"|"w", variable, version].
        Content::Seq(items) if items.len() == 3 => {
            let tag = items[0]
                .as_str()
                .ok_or_else(|| err("event tuple must start with \"r\" or \"w\""))?;
            let var = vars.resolve(&items[1])?;
            let version = parse_version(&items[2])?;
            match tag {
                "r" => Ok(DbcopEvent::Read { var, version }),
                "w" => Ok(DbcopEvent::Write { var, version }),
                other => Err(err(format!("unknown event tag `{other}`"))),
            }
        }
        // Tagged-enum form: {"Read": {"variable": v, "version": n}}.
        Content::Map(entries) if entries.len() == 1 => {
            let (tag, body) = &entries[0];
            let Content::Map(fields) = body else {
                return Err(err(format!("`{tag}` event body must be an object")));
            };
            let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let var =
                vars.resolve(field("variable").ok_or_else(|| err("event is missing `variable`"))?)?;
            let version = match field("version") {
                Some(v) => parse_version(v)?,
                None => Value::INITIAL,
            };
            match tag.as_str() {
                "Read" => Ok(DbcopEvent::Read { var, version }),
                "Write" => Ok(DbcopEvent::Write { var, version }),
                other => Err(err(format!("unknown event variant `{other}`"))),
            }
        }
        _ => Err(err("event must be a 3-tuple or a tagged object")),
    }
}

/// One parsed dbcop transaction: its events and whether it committed.
struct DbcopTxn {
    events: Vec<DbcopEvent>,
    success: bool,
}

impl DbcopTxn {
    /// The reads that must be served by other transactions' commits: the
    /// first read per variable, unless an own write to that variable came
    /// first (those reads return the transaction's own value).
    fn external_reads(&self) -> Vec<(u32, Value)> {
        let mut written: Vec<u32> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match *ev {
                DbcopEvent::Read { var, version } => {
                    if !seen.contains(&var) {
                        seen.push(var);
                        if !written.contains(&var) {
                            out.push((var, version));
                        }
                    }
                }
                DbcopEvent::Write { var, .. } => written.push(var),
            }
        }
        out
    }

    /// The last write per variable (what a commit installs).
    fn final_writes(&self) -> Vec<(u32, Value)> {
        let mut out: Vec<(u32, Value)> = Vec::new();
        for ev in &self.events {
            if let DbcopEvent::Write { var, version } = *ev {
                match out.iter_mut().find(|(x, _)| *x == var) {
                    Some(slot) => slot.1 = version,
                    None => out.push((var, version)),
                }
            }
        }
        out
    }
}

fn parse_txn(content: &Content, vars: &mut VarIntern) -> Result<DbcopTxn, TraceParseError> {
    match content {
        // Object form: {"events": [...], "success": bool} (dbcop names the
        // flag `success` or `committed` depending on vintage).
        Content::Map(entries) => {
            let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let raw_events = field("events").ok_or_else(|| err("transaction missing `events`"))?;
            let Content::Seq(items) = raw_events else {
                return Err(err("transaction `events` must be an array"));
            };
            let events = items
                .iter()
                .map(|e| parse_event(e, vars))
                .collect::<Result<_, _>>()?;
            let success = match field("success").or_else(|| field("committed")) {
                Some(Content::Bool(b)) => *b,
                Some(_) => return Err(err("transaction `success` must be a boolean")),
                None => true,
            };
            Ok(DbcopTxn { events, success })
        }
        // Bare array form: just the events, implicitly committed.
        Content::Seq(items) => {
            let events = items
                .iter()
                .map(|e| parse_event(e, vars))
                .collect::<Result<_, _>>()?;
            Ok(DbcopTxn {
                events,
                success: true,
            })
        }
        _ => Err(err("transaction must be an object or an array of events")),
    }
}

/// Lowers one dbcop transaction to this crate's event alphabet.
fn lower_txn(txn: &DbcopTxn, id: TxnId) -> Vec<Event> {
    let mut out = Vec::with_capacity(txn.events.len() * 2 + 2);
    let mut read_vars: Vec<u32> = Vec::new();
    for ev in &txn.events {
        match *ev {
            DbcopEvent::Read { var, version } => {
                // Keep only the first read per variable (paper WLOG).
                if read_vars.contains(&var) {
                    continue;
                }
                read_vars.push(var);
                out.push(Event::inv(id, Op::Read(var.into())));
                out.push(Event::resp(id, Ret::Value(version)));
            }
            DbcopEvent::Write { var, version } => {
                out.push(Event::inv(id, Op::Write(var.into(), version)));
                out.push(Event::resp(id, Ret::Ok));
            }
        }
    }
    if txn.success {
        out.push(Event::inv(id, Op::TryCommit));
        out.push(Event::resp(id, Ret::Committed));
    } else {
        out.push(Event::inv(id, Op::TryAbort));
        out.push(Event::resp(id, Ret::Aborted));
    }
    out
}

/// Imports a dbcop history (JSON object with a `sessions` array) into a
/// validated [`History`] plus the intern table naming its ids.
///
/// # Errors
///
/// Returns [`TraceParseError::Json`] for malformed dbcop input and
/// [`TraceParseError::Malformed`] if the lowered events do not form a
/// well-formed history.
pub fn import(json: &str) -> Result<(History, InternTable), TraceParseError> {
    let root: Content = serde_json::from_str(json).map_err(|e| err(e.to_string()))?;
    let Content::Map(entries) = &root else {
        return Err(err("dbcop history must be a JSON object"));
    };
    let sessions = entries
        .iter()
        .find(|(k, _)| k == "sessions")
        .map(|(_, v)| v)
        .ok_or_else(|| err("dbcop history is missing `sessions`"))?;
    let Content::Seq(sessions) = sessions else {
        return Err(err("`sessions` must be an array"));
    };
    let mut vars = VarIntern::new();
    let parsed: Vec<Vec<DbcopTxn>> = sessions
        .iter()
        .map(|s| match s {
            Content::Seq(txns) => txns.iter().map(|t| parse_txn(t, &mut vars)).collect(),
            _ => Err(err("each session must be an array of transactions")),
        })
        .collect::<Result<_, _>>()?;

    let total_txns: usize = parsed.iter().map(Vec::len).sum();
    if total_txns > MAX_ID as usize {
        return Err(err(format!("more than {MAX_ID} transactions")));
    }

    let mut table = InternTable {
        entries: std::mem::take(&mut vars.entries),
    };
    let mut events = Vec::new();
    let rounds = parsed.iter().map(Vec::len).max().unwrap_or(0);
    let mut next_id = 1u32;
    // The committed store the reconstruction has installed so far.
    let mut store: BTreeMap<u32, Value> = BTreeMap::new();
    // Round r overlaps the r-th transaction of every session: each opens
    // in session order, then they complete one at a time in a
    // dependency-aware order. Rounds are sequential, which preserves
    // session program order. See the module docs for why.
    for round in 0..rounds {
        struct Open {
            /// Events after the opening invocation.
            rest: Vec<Event>,
            reads: Vec<(u32, Value)>,
            writes: Vec<(u32, Value)>,
            committed: bool,
        }
        let mut open: Vec<Open> = Vec::new();
        for (si, session) in parsed.iter().enumerate() {
            let Some(txn) = session.get(round) else {
                continue;
            };
            let id = TxnId::new(next_id);
            table.entries.push(InternEntry {
                kind: InternKind::Txn,
                id: next_id,
                name: format!("s{si}_t{round}"),
            });
            next_id += 1;
            let mut lowered = lower_txn(txn, id);
            // Opening invocation now; the rest completes later, so every
            // transaction in the round overlaps every other.
            events.push(lowered.remove(0));
            open.push(Open {
                rest: lowered,
                reads: txn.external_reads(),
                writes: txn.final_writes(),
                committed: txn.success,
            });
        }
        while !open.is_empty() {
            let current = |x: u32| store.get(&x).copied().unwrap_or(Value::INITIAL);
            // Ready: every external read is served by the current store.
            let ready = |o: &Open| o.reads.iter().all(|&(x, v)| v == current(x));
            // Clobbers: committing would overwrite a version some other
            // open transaction still needs to read.
            let clobbers = |i: usize| {
                open[i].committed
                    && open[i].writes.iter().any(|&(x, _)| {
                        open.iter().enumerate().any(|(j, o)| {
                            j != i && o.reads.iter().any(|&(rx, rv)| rx == x && rv == current(x))
                        })
                    })
            };
            let pick = (0..open.len())
                .find(|&i| ready(&open[i]) && !clobbers(i))
                .or_else(|| (0..open.len()).find(|&i| ready(&open[i])))
                // No transaction can read consistently: fall back to
                // session order and let the checker report the anomaly.
                .unwrap_or(0);
            let done = open.remove(pick);
            events.extend(done.rest);
            if done.committed {
                for (x, v) in done.writes {
                    store.insert(x, v);
                }
            }
        }
    }
    let history = History::new(events)?;
    Ok((history, table))
}

/// Exports a history as a dbcop-style JSON object.
///
/// Real-time order is not representable on the dbcop side beyond session
/// program order, so each transaction becomes its own single-transaction
/// session — concurrency information is lost (a lossy export, unlike the
/// text/JSON/binary round trips). Reads export as `["r", var, value]`,
/// writes as `["w", var, value]`; `success` reflects whether the
/// transaction committed.
pub fn export(history: &History) -> String {
    let sessions: Vec<Content> = history
        .txns()
        .map(|t| {
            let events: Vec<Content> = t
                .ops()
                .iter()
                .filter_map(|rec| {
                    let tag = |s: &str, var: u32, v: u64| {
                        Content::Seq(vec![
                            Content::Str(s.into()),
                            Content::U64(u64::from(var)),
                            Content::U64(v),
                        ])
                    };
                    match (rec.op, rec.resp) {
                        (Op::Read(x), Some(Ret::Value(v))) => Some(tag("r", x.index(), v.get())),
                        (Op::Write(x, v), _) => Some(tag("w", x.index(), v.get())),
                        _ => None,
                    }
                })
                .collect();
            let txn = Content::Map(vec![
                ("events".into(), Content::Seq(events)),
                ("success".into(), Content::Bool(t.is_committed())),
            ]);
            Content::Seq(vec![txn])
        })
        .collect();
    let root = Content::Map(vec![
        ("id".into(), Content::U64(0)),
        ("sessions".into(), Content::Seq(sessions)),
    ]);
    serde_json::to_string(&root).expect("content serializes infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjId;

    #[test]
    fn compact_tuples_import() {
        let json = r#"{"id": 7, "sessions": [
            [{"events": [["w", 0, 1]], "success": true}],
            [{"events": [["r", 0, 1]], "success": true}]
        ]}"#;
        let (h, table) = import(json).unwrap();
        assert_eq!(h.txn_count(), 2);
        assert!(h.txns().all(|t| t.is_committed()));
        // Both transactions sit at session position 0, so they overlap.
        assert!(h.overlaps(TxnId::new(1), TxnId::new(2)));
        // Numeric variables intern no names; txn provenance is recorded.
        assert_eq!(table.name(InternKind::Txn, 1), Some("s0_t0"));
        assert_eq!(table.name(InternKind::Txn, 2), Some("s1_t0"));
        assert_eq!(table.name(InternKind::Obj, 0), None);
    }

    #[test]
    fn string_variables_are_interned() {
        let json = r#"{"sessions": [[
            {"events": [["w", "x", 1], ["w", "y", 2], ["r", "x", 1]], "success": true}
        ]]}"#;
        let (h, table) = import(json).unwrap();
        assert_eq!(table.name(InternKind::Obj, 0), Some("x"));
        assert_eq!(table.name(InternKind::Obj, 1), Some("y"));
        let t = h.txn(TxnId::new(1)).unwrap();
        assert!(t.write_set().contains(&ObjId::new(1)));
    }

    #[test]
    fn tagged_enum_form_imports() {
        let json = r#"{"sessions": [[
            {"events": [
                {"Write": {"variable": 0, "version": 5}},
                {"Read": {"variable": 0, "version": 5}}
            ], "success": true}
        ]]}"#;
        let (h, _) = import(json).unwrap();
        assert_eq!(h.txn_count(), 1);
    }

    #[test]
    fn null_version_reads_initial() {
        let json = r#"{"sessions": [[{"events": [["r", 0, null]], "success": true}]]}"#;
        let (h, _) = import(json).unwrap();
        let t = h.txn(TxnId::new(1)).unwrap();
        let read = t.ops().first().unwrap();
        assert_eq!(read.read_value(), Some(Value::INITIAL));
    }

    #[test]
    fn aborted_transactions_try_abort() {
        let json = r#"{"sessions": [[{"events": [["w", 0, 1]], "success": false}]]}"#;
        let (h, _) = import(json).unwrap();
        let t = h.txn(TxnId::new(1)).unwrap();
        assert!(!t.is_committed());
        assert!(t.is_t_complete());
    }

    #[test]
    fn repeated_reads_keep_first() {
        let json = r#"{"sessions": [[
            {"events": [["r", 0, 1], ["r", 0, 2]], "success": true}
        ]]}"#;
        let (h, _) = import(json).unwrap();
        let t = h.txn(TxnId::new(1)).unwrap();
        let reads: Vec<_> = t.ops().iter().filter(|r| r.op.is_read()).collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].read_value(), Some(Value::new(1)));
    }

    #[test]
    fn session_order_is_program_order() {
        let json = r#"{"sessions": [[
            {"events": [["w", 0, 1]], "success": true},
            {"events": [["r", 0, 1]], "success": true}
        ]]}"#;
        let (h, _) = import(json).unwrap();
        assert!(h.precedes_rt(TxnId::new(1), TxnId::new(2)));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(import("[]").is_err());
        assert!(import(r#"{"nope": 1}"#).is_err());
        assert!(import(r#"{"sessions": 3}"#).is_err());
        assert!(import(r#"{"sessions": [[{"events": [["x", 0, 1]]}]]}"#).is_err());
        assert!(import(r#"{"sessions": [[{"events": [["r", 0]]}]]}"#).is_err());
        assert!(import(r#"{"sessions": [[{"events": [["r", true, 1]]}]]}"#).is_err());
        assert!(import(r#"{"sessions": [[{"events": 5}]]}"#).is_err());
        assert!(import(r#"{"sessions": [[{"events": [], "success": 3}]]}"#).is_err());
        assert!(import("{bad json").is_err());
    }

    #[test]
    fn reconstruction_orders_writers_before_readers() {
        // The reader sits in an earlier session than the writer, but the
        // schedule still completes the writer first so the read response
        // returns an already-committed version (deferred update).
        let json = r#"{"sessions": [
            [{"events": [["r", 0, 1]], "success": true}],
            [{"events": [["w", 0, 1]], "success": true}]
        ]}"#;
        let (h, _) = import(json).unwrap();
        assert!(h.overlaps(TxnId::new(1), TxnId::new(2)));
        let committed = h
            .events()
            .iter()
            .position(|e| {
                e.txn == TxnId::new(2) && e.kind == crate::EventKind::Resp(Ret::Committed)
            })
            .unwrap();
        let read_resp = h
            .events()
            .iter()
            .position(|e| {
                e.txn == TxnId::new(1) && matches!(e.kind, crate::EventKind::Resp(Ret::Value(_)))
            })
            .unwrap();
        assert!(committed < read_resp, "events: {:?}", h.events());
    }

    #[test]
    fn reconstruction_delays_clobbering_writers() {
        // T3 reads the version T1 installs; T2 overwrites it. The greedy
        // schedule must run T2 after T3, or T3's read would be stale.
        let json = r#"{"sessions": [
            [{"events": [["w", 0, 1]], "success": true}],
            [{"events": [["w", 0, 2]], "success": true}],
            [{"events": [["r", 0, 1]], "success": true}]
        ]}"#;
        let (h, _) = import(json).unwrap();
        let pos = |id: u32, committed: bool| {
            h.events()
                .iter()
                .position(|e| {
                    e.txn == TxnId::new(id)
                        && if committed {
                            e.kind == crate::EventKind::Resp(Ret::Committed)
                        } else {
                            matches!(e.kind, crate::EventKind::Resp(Ret::Value(_)))
                        }
                })
                .unwrap()
        };
        let t1_commit = pos(1, true);
        let t2_commit = pos(2, true);
        let t3_read = pos(3, false);
        assert!(t1_commit < t3_read, "events: {:?}", h.events());
        assert!(t3_read < t2_commit, "events: {:?}", h.events());
    }

    #[test]
    fn export_import_preserves_reads_and_outcomes() {
        let json = r#"{"sessions": [
            [{"events": [["w", 0, 1]], "success": true}],
            [{"events": [["r", 0, 1]], "success": false}]
        ]}"#;
        let (h, _) = import(json).unwrap();
        let exported = export(&h);
        let (back, _) = import(&exported).unwrap();
        assert_eq!(back.txn_count(), h.txn_count());
        let outcomes = |h: &History| -> Vec<bool> { h.txns().map(|t| t.is_committed()).collect() };
        assert_eq!(outcomes(&back), outcomes(&h));
    }
}
