//! A line-oriented text format for histories, plus JSON helpers.
//!
//! The text format has one event per line: a transaction name followed by
//! an action. Invocations: `read X<n>`, `write X<n> <v>`, `tryc`, `trya`.
//! Responses: `val <v>`, `ok`, `commit`, `abort`. Blank lines and lines
//! starting with `#` are ignored.
//!
//! ```text
//! # T1 writes 1 to X0 and commits, T2 reads it
//! T1 write X0 1
//! T1 ok
//! T1 tryc
//! T1 commit
//! T2 read X0
//! T2 val 1
//! T2 tryc
//! T2 commit
//! ```

use crate::binary::BinaryParseError;
use crate::{Event, EventKind, History, MalformedHistoryError, ObjId, Op, Ret, TxnId, Value};
use std::error::Error;
use std::fmt;

/// The longest line [`parse_trace`] accepts, in bytes. Real traces keep
/// lines under a few dozen bytes; anything longer is hostile input.
pub const MAX_LINE_BYTES: usize = 4096;

/// The largest transaction or t-object index [`parse_trace`] accepts.
/// Checkers index dense arrays by these ids, so an attacker-supplied giant
/// id would translate directly into a giant allocation.
pub const MAX_ID: u32 = 1_000_000;

/// Why a trace failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line did not match the grammar.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column of the offending token.
        column: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The parsed events are not a well-formed history.
    Malformed(MalformedHistoryError),
    /// The JSON input failed to deserialize into a well-formed history.
    Json {
        /// The underlying deserializer message.
        message: String,
    },
    /// A `.duob` binary trace failed to decode.
    Binary(BinaryParseError),
}

impl TraceParseError {
    /// Renders the error as structured serde content, so tools can emit it
    /// as one JSON object: `{"error": "syntax", "line": N, "column": N,
    /// "message": "..."}`.
    pub fn to_content(&self) -> serde::Content {
        let mut fields = Vec::new();
        match self {
            TraceParseError::Syntax {
                line,
                column,
                message,
            } => {
                fields.push(("error".into(), serde::Content::Str("syntax".into())));
                fields.push(("line".into(), serde::Content::U64(*line as u64)));
                fields.push(("column".into(), serde::Content::U64(*column as u64)));
                fields.push(("message".into(), serde::Content::Str(message.clone())));
            }
            TraceParseError::Malformed(err) => {
                fields.push(("error".into(), serde::Content::Str("malformed".into())));
                fields.push(("message".into(), serde::Content::Str(err.to_string())));
            }
            TraceParseError::Json { message } => {
                fields.push(("error".into(), serde::Content::Str("json".into())));
                fields.push(("message".into(), serde::Content::Str(message.clone())));
            }
            TraceParseError::Binary(err) => {
                fields.push(("error".into(), serde::Content::Str("binary".into())));
                fields.push(("message".into(), serde::Content::Str(err.to_string())));
            }
        }
        serde::Content::Map(fields)
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Syntax {
                line,
                column,
                message,
            } => {
                write!(
                    f,
                    "trace syntax error on line {line}, column {column}: {message}"
                )
            }
            TraceParseError::Malformed(err) => write!(f, "trace is malformed: {err}"),
            TraceParseError::Json { message } => write!(f, "trace JSON error: {message}"),
            TraceParseError::Binary(err) => write!(f, "binary trace error: {err}"),
        }
    }
}

impl Error for TraceParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceParseError::Malformed(err) => Some(err),
            TraceParseError::Binary(err) => Some(err),
            TraceParseError::Syntax { .. } | TraceParseError::Json { .. } => None,
        }
    }
}

impl From<MalformedHistoryError> for TraceParseError {
    fn from(err: MalformedHistoryError) -> Self {
        TraceParseError::Malformed(err)
    }
}

impl From<BinaryParseError> for TraceParseError {
    fn from(err: BinaryParseError) -> Self {
        // Well-formedness violations are the same error whichever encoding
        // carried the events; keep them under `Malformed` so callers match
        // one variant for both formats.
        match err {
            BinaryParseError::Malformed(inner) => TraceParseError::Malformed(inner),
            other => TraceParseError::Binary(other),
        }
    }
}

fn syntax(line: usize, column: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError::Syntax {
        line,
        column,
        message: message.into(),
    }
}

/// Splits a raw line into whitespace-separated tokens, each paired with
/// its 1-based byte column.
fn tokens(raw: &str) -> impl Iterator<Item = (usize, &str)> + '_ {
    let mut rest = raw;
    let mut base = 0usize;
    std::iter::from_fn(move || {
        let skip = rest.find(|c: char| !c.is_whitespace())?;
        let start = base + skip;
        let after = &rest[skip..];
        let len = after.find(char::is_whitespace).unwrap_or(after.len());
        rest = &after[len..];
        base = start + len;
        Some((start + 1, &after[..len]))
    })
}

fn parse_txn(token: &str, line: usize, col: usize) -> Result<TxnId, TraceParseError> {
    let digits = token.strip_prefix('T').unwrap_or(token);
    let index: u32 = digits
        .parse()
        .map_err(|_| syntax(line, col, format!("invalid transaction `{token}`")))?;
    if index == 0 {
        return Err(syntax(line, col, "transaction T0 is reserved"));
    }
    if index > MAX_ID {
        return Err(syntax(
            line,
            col,
            format!("transaction id {index} exceeds the maximum {MAX_ID}"),
        ));
    }
    Ok(TxnId::new(index))
}

fn parse_obj(token: &str, line: usize, col: usize) -> Result<ObjId, TraceParseError> {
    let digits = token.strip_prefix('X').unwrap_or(token);
    let index: u32 = digits
        .parse()
        .map_err(|_| syntax(line, col, format!("invalid t-object `{token}`")))?;
    if index > MAX_ID {
        return Err(syntax(
            line,
            col,
            format!("t-object id {index} exceeds the maximum {MAX_ID}"),
        ));
    }
    Ok(ObjId::new(index))
}

fn parse_value(token: &str, line: usize, col: usize) -> Result<Value, TraceParseError> {
    let v: u64 = token
        .parse()
        .map_err(|_| syntax(line, col, format!("invalid value `{token}`")))?;
    Ok(Value::new(v))
}

/// Parses the line-oriented trace format into a validated [`History`].
///
/// # Errors
///
/// Returns [`TraceParseError::Syntax`] for grammar violations and
/// [`TraceParseError::Malformed`] if the events do not form a well-formed
/// history.
///
/// # Examples
///
/// ```
/// use duop_history::trace::parse_trace;
///
/// let h = parse_trace("T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\n")?;
/// assert!(h.is_t_complete());
/// # Ok::<(), duop_history::trace::TraceParseError>(())
/// ```
pub fn parse_trace(input: &str) -> Result<History, TraceParseError> {
    let mut events = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        if let Some(event) = parse_line(raw, i + 1)? {
            events.push(event);
        }
    }
    Ok(History::new(events)?)
}

/// Parses one raw line of the trace format, returning `Ok(None)` for blank
/// lines and comments. `line_no` is the 1-based line number used in error
/// positions.
///
/// This is the streaming building block behind [`parse_trace`]: a line at
/// a time feeds an online checker without materialising the event vector.
///
/// # Errors
///
/// Returns [`TraceParseError::Syntax`] for grammar violations.
pub fn parse_line(raw: &str, line_no: usize) -> Result<Option<Event>, TraceParseError> {
    if raw.len() > MAX_LINE_BYTES {
        return Err(syntax(
            line_no,
            MAX_LINE_BYTES + 1,
            format!("line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    if let Some(pos) = raw.find(|c: char| c.is_control() && c != '\t') {
        return Err(syntax(
            line_no,
            pos + 1,
            "line contains a control character",
        ));
    }
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let end_col = raw.trim_end().len() + 1;
    let mut toks = tokens(raw);
    let (txn_col, txn_tok) = toks
        .next()
        .ok_or_else(|| syntax(line_no, 1, "missing transaction"))?;
    let txn = parse_txn(txn_tok, line_no, txn_col)?;
    let (action_col, action) = toks
        .next()
        .ok_or_else(|| syntax(line_no, end_col, "missing action"))?;
    let mut operand = |what: &str| {
        toks.next()
            .ok_or_else(|| syntax(line_no, end_col, format!("{action} needs {what}")))
    };
    let event = match action {
        "read" => {
            let (col, tok) = operand("an object")?;
            Event::inv(txn, Op::Read(parse_obj(tok, line_no, col)?))
        }
        "write" => {
            let (ocol, otok) = operand("an object")?;
            let obj = parse_obj(otok, line_no, ocol)?;
            let (vcol, vtok) = operand("a value")?;
            let value = parse_value(vtok, line_no, vcol)?;
            Event::inv(txn, Op::Write(obj, value))
        }
        "tryc" => Event::inv(txn, Op::TryCommit),
        "trya" => Event::inv(txn, Op::TryAbort),
        "val" => {
            let (col, tok) = operand("a value")?;
            Event::resp(txn, Ret::Value(parse_value(tok, line_no, col)?))
        }
        "ok" => Event::resp(txn, Ret::Ok),
        "commit" => Event::resp(txn, Ret::Committed),
        "abort" => Event::resp(txn, Ret::Aborted),
        other => {
            return Err(syntax(
                line_no,
                action_col,
                format!("unknown action `{other}`"),
            ))
        }
    };
    if let Some((col, extra)) = toks.next() {
        return Err(syntax(
            line_no,
            col,
            format!("unexpected trailing token `{extra}`"),
        ));
    }
    Ok(Some(event))
}

/// Formats a history in the trace format accepted by [`parse_trace`].
pub fn format_trace(history: &History) -> String {
    let mut out = String::new();
    for ev in history.events() {
        let txn = ev.txn;
        let line = match ev.kind {
            EventKind::Inv(Op::Read(x)) => format!("{txn} read {x}"),
            EventKind::Inv(Op::Write(x, v)) => format!("{txn} write {x} {v}"),
            EventKind::Inv(Op::TryCommit) => format!("{txn} tryc"),
            EventKind::Inv(Op::TryAbort) => format!("{txn} trya"),
            EventKind::Resp(Ret::Value(v)) => format!("{txn} val {v}"),
            EventKind::Resp(Ret::Ok) => format!("{txn} ok"),
            EventKind::Resp(Ret::Committed) => format!("{txn} commit"),
            EventKind::Resp(Ret::Aborted) => format!("{txn} abort"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Serializes a history to JSON (an array of events).
pub fn to_json(history: &History) -> String {
    serde_json::to_string(history).expect("histories serialize infallibly")
}

/// Deserializes a history from JSON, validating well-formedness.
///
/// # Errors
///
/// Returns [`TraceParseError::Json`] for JSON syntax errors and inputs
/// that deserialize but do not form a well-formed history.
pub fn from_json(json: &str) -> Result<History, TraceParseError> {
    serde_json::from_str(json).map_err(|err| TraceParseError::Json {
        message: err.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn sample() -> History {
        HistoryBuilder::new()
            .inv_write(TxnId::new(1), ObjId::new(0), Value::new(1))
            .inv_read(TxnId::new(2), ObjId::new(0))
            .resp_ok(TxnId::new(1))
            .resp_value(TxnId::new(2), Value::new(0))
            .inv_try_commit(TxnId::new(1))
            .resp_committed(TxnId::new(1))
            .try_abort(TxnId::new(2))
            .build()
    }

    #[test]
    fn trace_roundtrip() {
        let h = sample();
        let text = format_trace(&h);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn json_roundtrip() {
        let h = sample();
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let h = parse_trace("# header\n\nT1 tryc\nT1 commit\n").unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn bare_numbers_accepted() {
        let h = parse_trace("1 write 0 5\n1 ok\n").unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.participates(TxnId::new(1)));
    }

    #[test]
    fn syntax_errors_are_located() {
        let err = parse_trace("T1 frobnicate").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::Syntax {
                line: 1,
                column: 4,
                ..
            }
        ));

        let err = parse_trace("T1 read").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));

        let err = parse_trace("T0 tryc").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::Syntax {
                line: 1,
                column: 1,
                ..
            }
        ));

        let err = parse_trace("T1 tryc extra").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::Syntax {
                line: 1,
                column: 9,
                ..
            }
        ));

        // Errors past the first line carry their own line number.
        let err = parse_trace("T1 tryc\n  T2 bogus X0\n").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::Syntax {
                line: 2,
                column: 6,
                ..
            }
        ));
    }

    #[test]
    fn hostile_inputs_are_structured_errors() {
        // NUL bytes and other control characters.
        let err = parse_trace("T1 \0tryc").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::Syntax {
                line: 1,
                column: 4,
                ..
            }
        ));
        // Overlong lines.
        let long = format!("T1 write X0 {}", "9".repeat(MAX_LINE_BYTES));
        let err = parse_trace(&long).unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));
        // Giant ids would become giant allocations downstream.
        let err = parse_trace("T999999999 tryc").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { .. }));
        let err = parse_trace("T1 read X999999999").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { .. }));
        // ... but ids at the cap parse.
        assert!(parse_trace(&format!("T{MAX_ID} read X{MAX_ID}\n")).is_ok());
    }

    #[test]
    fn malformed_traces_rejected() {
        let err = parse_trace("T1 ok\n").unwrap_err();
        assert!(matches!(err, TraceParseError::Malformed(_)));
        // Duplicate responses to one tryC.
        let err = parse_trace("T1 tryc\nT1 commit\nT1 commit\n").unwrap_err();
        assert!(matches!(err, TraceParseError::Malformed(_)));
    }

    #[test]
    fn errors_format_as_json() {
        for input in ["T1 frobnicate", "T1 ok\n", "T0 tryc"] {
            let err = parse_trace(input).unwrap_err();
            let json = serde_json::to_string(&err.to_content()).expect("error serializes");
            assert!(json.contains("\"error\":"), "json: {json}");
            assert!(json.contains("\"message\":"), "json: {json}");
        }
        let err = from_json("[{\"bogus\":").unwrap_err();
        assert!(matches!(err, TraceParseError::Json { .. }));
        let json = serde_json::to_string(&err.to_content()).unwrap();
        assert!(json.contains("\"error\":\"json\""), "json: {json}");
    }
}
