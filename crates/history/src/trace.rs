//! A line-oriented text format for histories, plus JSON helpers.
//!
//! The text format has one event per line: a transaction name followed by
//! an action. Invocations: `read X<n>`, `write X<n> <v>`, `tryc`, `trya`.
//! Responses: `val <v>`, `ok`, `commit`, `abort`. Blank lines and lines
//! starting with `#` are ignored.
//!
//! ```text
//! # T1 writes 1 to X0 and commits, T2 reads it
//! T1 write X0 1
//! T1 ok
//! T1 tryc
//! T1 commit
//! T2 read X0
//! T2 val 1
//! T2 tryc
//! T2 commit
//! ```

use crate::{Event, EventKind, History, MalformedHistoryError, ObjId, Op, Ret, TxnId, Value};
use std::error::Error;
use std::fmt;

/// Why a trace failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line did not match the grammar.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The parsed events are not a well-formed history.
    Malformed(MalformedHistoryError),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Syntax { line, message } => {
                write!(f, "trace syntax error on line {line}: {message}")
            }
            TraceParseError::Malformed(err) => write!(f, "trace is malformed: {err}"),
        }
    }
}

impl Error for TraceParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceParseError::Malformed(err) => Some(err),
            TraceParseError::Syntax { .. } => None,
        }
    }
}

impl From<MalformedHistoryError> for TraceParseError {
    fn from(err: MalformedHistoryError) -> Self {
        TraceParseError::Malformed(err)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_txn(token: &str, line: usize) -> Result<TxnId, TraceParseError> {
    let digits = token.strip_prefix('T').unwrap_or(token);
    let index: u32 = digits
        .parse()
        .map_err(|_| syntax(line, format!("invalid transaction `{token}`")))?;
    if index == 0 {
        return Err(syntax(line, "transaction T0 is reserved"));
    }
    Ok(TxnId::new(index))
}

fn parse_obj(token: &str, line: usize) -> Result<ObjId, TraceParseError> {
    let digits = token.strip_prefix('X').unwrap_or(token);
    let index: u32 = digits
        .parse()
        .map_err(|_| syntax(line, format!("invalid t-object `{token}`")))?;
    Ok(ObjId::new(index))
}

fn parse_value(token: &str, line: usize) -> Result<Value, TraceParseError> {
    let v: u64 = token
        .parse()
        .map_err(|_| syntax(line, format!("invalid value `{token}`")))?;
    Ok(Value::new(v))
}

/// Parses the line-oriented trace format into a validated [`History`].
///
/// # Errors
///
/// Returns [`TraceParseError::Syntax`] for grammar violations and
/// [`TraceParseError::Malformed`] if the events do not form a well-formed
/// history.
///
/// # Examples
///
/// ```
/// use duop_history::trace::parse_trace;
///
/// let h = parse_trace("T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\n")?;
/// assert!(h.is_t_complete());
/// # Ok::<(), duop_history::trace::TraceParseError>(())
/// ```
pub fn parse_trace(input: &str) -> Result<History, TraceParseError> {
    let mut events = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let txn = parse_txn(tokens.next().expect("non-empty line has a token"), line_no)?;
        let action = tokens
            .next()
            .ok_or_else(|| syntax(line_no, "missing action"))?;
        let event = match action {
            "read" => {
                let obj = parse_obj(
                    tokens
                        .next()
                        .ok_or_else(|| syntax(line_no, "read needs an object"))?,
                    line_no,
                )?;
                Event::inv(txn, Op::Read(obj))
            }
            "write" => {
                let obj = parse_obj(
                    tokens
                        .next()
                        .ok_or_else(|| syntax(line_no, "write needs an object"))?,
                    line_no,
                )?;
                let value = parse_value(
                    tokens
                        .next()
                        .ok_or_else(|| syntax(line_no, "write needs a value"))?,
                    line_no,
                )?;
                Event::inv(txn, Op::Write(obj, value))
            }
            "tryc" => Event::inv(txn, Op::TryCommit),
            "trya" => Event::inv(txn, Op::TryAbort),
            "val" => {
                let value = parse_value(
                    tokens
                        .next()
                        .ok_or_else(|| syntax(line_no, "val needs a value"))?,
                    line_no,
                )?;
                Event::resp(txn, Ret::Value(value))
            }
            "ok" => Event::resp(txn, Ret::Ok),
            "commit" => Event::resp(txn, Ret::Committed),
            "abort" => Event::resp(txn, Ret::Aborted),
            other => return Err(syntax(line_no, format!("unknown action `{other}`"))),
        };
        if let Some(extra) = tokens.next() {
            return Err(syntax(
                line_no,
                format!("unexpected trailing token `{extra}`"),
            ));
        }
        events.push(event);
    }
    Ok(History::new(events)?)
}

/// Formats a history in the trace format accepted by [`parse_trace`].
pub fn format_trace(history: &History) -> String {
    let mut out = String::new();
    for ev in history.events() {
        let txn = ev.txn;
        let line = match ev.kind {
            EventKind::Inv(Op::Read(x)) => format!("{txn} read {x}"),
            EventKind::Inv(Op::Write(x, v)) => format!("{txn} write {x} {v}"),
            EventKind::Inv(Op::TryCommit) => format!("{txn} tryc"),
            EventKind::Inv(Op::TryAbort) => format!("{txn} trya"),
            EventKind::Resp(Ret::Value(v)) => format!("{txn} val {v}"),
            EventKind::Resp(Ret::Ok) => format!("{txn} ok"),
            EventKind::Resp(Ret::Committed) => format!("{txn} commit"),
            EventKind::Resp(Ret::Aborted) => format!("{txn} abort"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Serializes a history to JSON (an array of events).
pub fn to_json(history: &History) -> String {
    serde_json::to_string(history).expect("histories serialize infallibly")
}

/// Deserializes a history from JSON, validating well-formedness.
///
/// # Errors
///
/// Returns a `serde_json::Error` for syntax errors or malformed histories.
pub fn from_json(json: &str) -> Result<History, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn sample() -> History {
        HistoryBuilder::new()
            .inv_write(TxnId::new(1), ObjId::new(0), Value::new(1))
            .inv_read(TxnId::new(2), ObjId::new(0))
            .resp_ok(TxnId::new(1))
            .resp_value(TxnId::new(2), Value::new(0))
            .inv_try_commit(TxnId::new(1))
            .resp_committed(TxnId::new(1))
            .try_abort(TxnId::new(2))
            .build()
    }

    #[test]
    fn trace_roundtrip() {
        let h = sample();
        let text = format_trace(&h);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn json_roundtrip() {
        let h = sample();
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let h = parse_trace("# header\n\nT1 tryc\nT1 commit\n").unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn bare_numbers_accepted() {
        let h = parse_trace("1 write 0 5\n1 ok\n").unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.participates(TxnId::new(1)));
    }

    #[test]
    fn syntax_errors_are_located() {
        let err = parse_trace("T1 frobnicate").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));

        let err = parse_trace("T1 read").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));

        let err = parse_trace("T0 tryc").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));

        let err = parse_trace("T1 tryc extra").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn malformed_traces_rejected() {
        let err = parse_trace("T1 ok\n").unwrap_err();
        assert!(matches!(err, TraceParseError::Malformed(_)));
    }
}
