//! Format-agnostic trace ingestion.
//!
//! [`TraceReader`] sniffs the input bytes, picks the right decoder, and
//! presents one interface over all trace encodings: the line-oriented text
//! format, the JSON event array, the `.duob` binary format, and dbcop
//! session histories. Text and binary traces stream — events are decoded
//! one at a time off the input, so an online checker can consume a trace
//! without materialising the full event vector. JSON and dbcop inputs are
//! whole-document formats and are decoded eagerly.
//!
//! Detection is by the leading bytes, never by file name: the `DUOB` magic
//! marks binary; a leading `[` marks this crate's JSON event array; a
//! leading `{` marks a dbcop history object; anything else is text.

use crate::binary::{self, EventStream, InternTable};
use crate::dbcop;
use crate::trace::{self, TraceParseError};
use crate::{Event, History};

/// The trace encodings [`TraceReader`] understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-oriented text (`T1 write X0 1`).
    Text,
    /// JSON array of events.
    Json,
    /// `.duob` framed binary.
    Binary,
    /// dbcop session-history JSON object.
    Dbcop,
}

impl TraceFormat {
    /// The name used by CLI `--format` flags.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Json => "json",
            TraceFormat::Binary => "binary",
            TraceFormat::Dbcop => "dbcop",
        }
    }
}

/// Sniffs the trace encoding from the leading bytes.
pub fn detect_format(bytes: &[u8]) -> TraceFormat {
    if bytes.starts_with(&binary::MAGIC) {
        return TraceFormat::Binary;
    }
    match bytes.iter().find(|b| !b.is_ascii_whitespace()) {
        Some(b'[') => TraceFormat::Json,
        Some(b'{') => TraceFormat::Dbcop,
        _ => TraceFormat::Text,
    }
}

enum Inner<'a> {
    Text {
        lines: std::str::Lines<'a>,
        line_no: usize,
    },
    Binary {
        stream: EventStream<'a>,
    },
    /// Whole-document formats, decoded up front.
    Eager {
        history: History,
        next: usize,
    },
}

/// A streaming, format-detecting event reader over an in-memory trace.
///
/// # Examples
///
/// ```
/// use duop_history::reader::{TraceFormat, TraceReader};
///
/// let mut r = TraceReader::new(b"T1 tryc\nT1 commit\n")?;
/// assert_eq!(r.format(), TraceFormat::Text);
/// let mut n = 0;
/// while let Some(_event) = r.next_event()? {
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// # Ok::<(), duop_history::trace::TraceParseError>(())
/// ```
pub struct TraceReader<'a> {
    format: TraceFormat,
    inner: Inner<'a>,
    names: InternTable,
}

impl std::fmt::Debug for TraceReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

/// Interprets `bytes` as UTF-8 text, reporting the failing line on error.
fn as_text(bytes: &[u8]) -> Result<&str, TraceParseError> {
    std::str::from_utf8(bytes).map_err(|e| {
        let line = bytes[..e.valid_up_to()]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        TraceParseError::Syntax {
            line,
            column: 1,
            message: "input is not valid UTF-8".into(),
        }
    })
}

impl<'a> TraceReader<'a> {
    /// Opens a reader over `bytes`, detecting the encoding and decoding
    /// eagerly for whole-document formats.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] if the detected format's header or
    /// (for eager formats) entire document is invalid.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceParseError> {
        let format = detect_format(bytes);
        let (inner, names) = match format {
            TraceFormat::Text => (
                Inner::Text {
                    lines: as_text(bytes)?.lines(),
                    line_no: 0,
                },
                InternTable::default(),
            ),
            TraceFormat::Binary => (
                Inner::Binary {
                    stream: EventStream::new(bytes).map_err(TraceParseError::from)?,
                },
                InternTable::default(),
            ),
            TraceFormat::Json => (
                Inner::Eager {
                    history: trace::from_json(as_text(bytes)?)?,
                    next: 0,
                },
                InternTable::default(),
            ),
            TraceFormat::Dbcop => {
                let (history, names) = dbcop::import(as_text(bytes)?)?;
                (Inner::Eager { history, next: 0 }, names)
            }
        };
        Ok(TraceReader {
            format,
            inner,
            names,
        })
    }

    /// The detected encoding.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The intern table naming this trace's ids. For binary traces it is
    /// complete once the stream is exhausted; for dbcop imports it is
    /// available immediately; empty otherwise.
    pub fn intern_table(&self) -> &InternTable {
        match &self.inner {
            Inner::Binary { stream } => stream.intern_table(),
            _ => &self.names,
        }
    }

    /// Decodes the next event, or `Ok(None)` at a validated end of input.
    ///
    /// # Errors
    ///
    /// Format-specific [`TraceParseError`]s. Streaming formats check the
    /// wire encoding only; history well-formedness is the consumer's
    /// concern (an [`OnlineChecker`] push or a [`History::new`] both
    /// enforce it).
    ///
    /// [`OnlineChecker`]: https://example.org/du-opacity
    pub fn next_event(&mut self) -> Result<Option<Event>, TraceParseError> {
        match &mut self.inner {
            Inner::Text { lines, line_no } => {
                for raw in lines {
                    *line_no += 1;
                    if let Some(ev) = trace::parse_line(raw, *line_no)? {
                        return Ok(Some(ev));
                    }
                }
                Ok(None)
            }
            Inner::Binary { stream } => stream.next_event().map_err(TraceParseError::from),
            Inner::Eager { history, next } => {
                let ev = history.events().get(*next).copied();
                *next += ev.is_some() as usize;
                Ok(ev)
            }
        }
    }
}

/// Bulk-loads a trace in any supported encoding into a validated
/// [`History`].
///
/// This is the non-streaming path: binary traces take the pre-sized bulk
/// decoder, text takes the batch parser, and the whole-document formats
/// their usual decoders.
///
/// # Errors
///
/// Any [`TraceParseError`].
pub fn read_history(bytes: &[u8]) -> Result<History, TraceParseError> {
    read_history_with_names(bytes).map(|(h, _)| h)
}

/// Bulk-loads a trace, also returning its intern table (empty for formats
/// without one).
///
/// # Errors
///
/// Any [`TraceParseError`].
pub fn read_history_with_names(bytes: &[u8]) -> Result<(History, InternTable), TraceParseError> {
    match detect_format(bytes) {
        TraceFormat::Text => Ok((trace::parse_trace(as_text(bytes)?)?, InternTable::default())),
        TraceFormat::Json => Ok((trace::from_json(as_text(bytes)?)?, InternTable::default())),
        TraceFormat::Binary => binary::decode_with_names(bytes).map_err(TraceParseError::from),
        TraceFormat::Dbcop => dbcop::import(as_text(bytes)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ObjId, TxnId, Value};

    fn sample() -> History {
        HistoryBuilder::new()
            .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
            .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
            .build()
    }

    fn drain(bytes: &[u8]) -> (TraceFormat, Vec<Event>) {
        let mut r = TraceReader::new(bytes).unwrap();
        let fmt = r.format();
        let mut events = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            events.push(ev);
        }
        (fmt, events)
    }

    #[test]
    fn all_formats_detected_and_equal() {
        let h = sample();
        let text = trace::format_trace(&h);
        let json = trace::to_json(&h);
        let bin = binary::encode(&h);

        let (fmt, evs) = drain(text.as_bytes());
        assert_eq!(fmt, TraceFormat::Text);
        assert_eq!(evs.as_slice(), h.events());

        let (fmt, evs) = drain(json.as_bytes());
        assert_eq!(fmt, TraceFormat::Json);
        assert_eq!(evs.as_slice(), h.events());

        let (fmt, evs) = drain(&bin);
        assert_eq!(fmt, TraceFormat::Binary);
        assert_eq!(evs.as_slice(), h.events());
    }

    #[test]
    fn read_history_matches_streaming() {
        let h = sample();
        for bytes in [
            trace::format_trace(&h).into_bytes(),
            trace::to_json(&h).into_bytes(),
            binary::encode(&h),
        ] {
            assert_eq!(read_history(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn dbcop_objects_detected() {
        let json = r#"{"sessions": [[{"events": [["w", 0, 1]], "success": true}]]}"#;
        assert_eq!(detect_format(json.as_bytes()), TraceFormat::Dbcop);
        let (h, names) = read_history_with_names(json.as_bytes()).unwrap();
        assert_eq!(h.txn_count(), 1);
        assert!(!names.is_empty());
        let (fmt, evs) = drain(json.as_bytes());
        assert_eq!(fmt, TraceFormat::Dbcop);
        assert_eq!(evs.as_slice(), h.events());
    }

    #[test]
    fn whitespace_before_json_is_tolerated() {
        assert_eq!(detect_format(b"  \n["), TraceFormat::Json);
        assert_eq!(detect_format(b"\t{"), TraceFormat::Dbcop);
        assert_eq!(detect_format(b""), TraceFormat::Text);
        assert_eq!(detect_format(b"T1 tryc"), TraceFormat::Text);
        assert_eq!(detect_format(b"DUOB\x01"), TraceFormat::Binary);
    }

    #[test]
    fn invalid_utf8_text_is_a_syntax_error() {
        let err = read_history(b"T1 tryc\n\xFF\xFE").unwrap_err();
        assert!(matches!(err, TraceParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn binary_header_errors_surface_as_binary() {
        let err = TraceReader::new(b"DUOB\x09").unwrap_err();
        assert!(matches!(err, TraceParseError::Binary(_)));
    }

    #[test]
    fn format_names() {
        assert_eq!(TraceFormat::Text.name(), "text");
        assert_eq!(TraceFormat::Json.name(), "json");
        assert_eq!(TraceFormat::Binary.name(), "binary");
        assert_eq!(TraceFormat::Dbcop.name(), "dbcop");
    }
}
