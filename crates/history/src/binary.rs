//! The `.duob` compact binary trace format.
//!
//! At the million-event scale, line-at-a-time text parsing dominates
//! end-to-end checking time. This module defines a framed binary encoding
//! that decodes an order of magnitude faster and supports streaming
//! ingestion without materialising the full event vector first.
//!
//! # Wire format
//!
//! ```text
//! file    := magic version frame* end-frame
//! magic   := "DUOB"                     (4 bytes)
//! version := 0x01                       (1 byte)
//! frame   := type len payload crc
//! type    := 'I' (intern table) | 'E' (event chunk) | 'Z' (end)
//! len     := varint payload byte length
//! payload := type-specific bytes (see below)
//! crc     := CRC-32 (IEEE) of payload   (4 bytes, little endian)
//! ```
//!
//! The `'E'` payload is `varint count` followed by `count` events, each a
//! tag byte (see [`PackedEvent`](crate::event::PackedEvent)) and varint
//! operands: reads carry `txn obj`, writes `txn obj value`, read responses
//! `txn value`, and the remaining kinds just `txn`. The `'I'` payload is
//! `varint count` then `count` entries of `kind-byte varint-id varint-len
//! utf8-name`, preserving external names (e.g. dbcop variables) that the
//! numeric ids replaced. The `'Z'` payload is the varint total event count,
//! so silent truncation at a frame boundary is detected.
//!
//! All varints are LEB128, at most 10 bytes; decoding rejects oversized or
//! non-canonical-length encodings, ids above [`MAX_ID`], and frames larger
//! than [`MAX_FRAME_BYTES`]. The CRC protects against bit rot and torn
//! writes; it is an integrity check on the *file*, not an authenticity
//! guarantee (see DESIGN.md §10 for how this differs from the keyed
//! checkpoint hashes).

use crate::event::PackedEvent;
use crate::trace::MAX_ID;
use crate::{Event, EventKind, History, MalformedHistoryError, ObjId, Op, Ret, TxnId, Value};
use std::error::Error;
use std::fmt;

/// File magic: the first four bytes of every `.duob` trace.
pub const MAGIC: [u8; 4] = *b"DUOB";

/// Current format version byte.
pub const VERSION: u8 = 1;

/// Frame type: string/id intern table.
pub const FRAME_INTERN: u8 = b'I';

/// Frame type: a chunk of events.
pub const FRAME_EVENTS: u8 = b'E';

/// Frame type: end-of-file marker carrying the total event count.
pub const FRAME_END: u8 = b'Z';

/// Events per `'E'` frame written by [`encode`]; bounds the working set a
/// streaming reader must hold while still amortising the per-frame CRC.
pub const EVENTS_PER_FRAME: usize = 4096;

/// Largest frame payload a decoder accepts. A hostile length prefix would
/// otherwise translate directly into a giant allocation or a huge CRC scan.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Longest interned name a decoder accepts, in bytes.
pub const MAX_NAME_BYTES: usize = 4096;

const VARINT_MAX_BYTES: usize = 10;
const CRC_BYTES: usize = 4;

/// Why a binary trace failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinaryParseError {
    /// The file does not start with the `DUOB` magic.
    BadMagic,
    /// The version byte is not one this decoder understands.
    UnsupportedVersion(u8),
    /// The input ended inside a header, frame, or varint.
    Truncated {
        /// Byte offset where more input was expected.
        offset: usize,
        /// What was being decoded.
        context: &'static str,
    },
    /// A frame's CRC-32 did not match its payload.
    CrcMismatch {
        /// Byte offset of the frame's type byte.
        frame_offset: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A varint ran past the 10-byte LEB128 limit or overflowed 64 bits.
    OversizedVarint {
        /// Byte offset of the varint's first byte.
        offset: usize,
    },
    /// A frame type byte other than `'I'`, `'E'`, or `'Z'`.
    UnknownFrameType {
        /// The unrecognised byte.
        byte: u8,
        /// Byte offset of the frame's type byte.
        offset: usize,
    },
    /// An event tag byte outside the range `0..=7`.
    UnknownEventTag {
        /// The unrecognised byte.
        byte: u8,
    },
    /// A frame declared a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
    },
    /// A transaction or t-object id above [`MAX_ID`], or a count that does
    /// not fit its domain.
    IdOutOfRange {
        /// Which id domain was violated.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The `'Z'` frame's declared event count disagrees with the events
    /// actually decoded — the file was truncated or spliced at a frame
    /// boundary.
    CountMismatch {
        /// Count declared by the end frame.
        declared: u64,
        /// Events actually decoded.
        actual: u64,
    },
    /// The input ended without a `'Z'` end frame.
    MissingEndFrame,
    /// Bytes follow the `'Z'` end frame.
    TrailingBytes {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
    /// An intern-table entry had an unknown kind byte or a non-UTF-8 name.
    BadInternEntry {
        /// Explanation of the problem.
        message: &'static str,
    },
    /// The decoded events are not a well-formed history.
    Malformed(MalformedHistoryError),
}

impl fmt::Display for BinaryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryParseError::BadMagic => {
                write!(f, "not a DUOB binary trace (bad magic)")
            }
            BinaryParseError::UnsupportedVersion(v) => {
                write!(f, "unsupported DUOB version {v} (this build reads {VERSION})")
            }
            BinaryParseError::Truncated { offset, context } => {
                write!(f, "truncated input at byte {offset} while reading {context}")
            }
            BinaryParseError::CrcMismatch {
                frame_offset,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in frame at byte {frame_offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            BinaryParseError::OversizedVarint { offset } => {
                write!(f, "oversized varint at byte {offset}")
            }
            BinaryParseError::UnknownFrameType { byte, offset } => {
                write!(f, "unknown frame type {byte:#04x} at byte {offset}")
            }
            BinaryParseError::UnknownEventTag { byte } => {
                write!(f, "unknown event tag {byte:#04x}")
            }
            BinaryParseError::FrameTooLarge { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the maximum {MAX_FRAME_BYTES}"
            ),
            BinaryParseError::IdOutOfRange { what, value } => {
                write!(f, "{what} {value} is out of range (maximum {MAX_ID})")
            }
            BinaryParseError::CountMismatch { declared, actual } => write!(
                f,
                "end frame declares {declared} events but {actual} were decoded"
            ),
            BinaryParseError::MissingEndFrame => {
                write!(f, "input ended without an end frame")
            }
            BinaryParseError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the end frame at byte {offset}")
            }
            BinaryParseError::BadInternEntry { message } => {
                write!(f, "bad intern-table entry: {message}")
            }
            BinaryParseError::Malformed(err) => write!(f, "decoded trace is malformed: {err}"),
        }
    }
}

impl Error for BinaryParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinaryParseError::Malformed(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MalformedHistoryError> for BinaryParseError {
    fn from(err: MalformedHistoryError) -> Self {
        BinaryParseError::Malformed(err)
    }
}

/// What an interned name refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InternKind {
    /// A transaction id.
    Txn,
    /// A t-object id.
    Obj,
}

/// One interned name: the external string a numeric id replaced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternEntry {
    /// Id domain.
    pub kind: InternKind,
    /// The numeric id used in event records.
    pub id: u32,
    /// The original external name.
    pub name: String,
}

/// The per-file string/id intern table.
///
/// Native traces use dense numeric ids and leave this empty; imports from
/// formats with string identifiers (e.g. dbcop variables or session-tagged
/// transactions) record the original names here so they survive the round
/// trip through the binary format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InternTable {
    /// The entries, in file order.
    pub entries: Vec<InternEntry>,
}

impl InternTable {
    /// Returns `true` if no names are interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the interned name for `id` in `kind`'s domain.
    pub fn name(&self, kind: InternKind, id: u32) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.id == id)
            .map(|e| e.name.as_str())
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup tables for
/// slicing-by-8: `CRC_TABLES[0]` is the classic byte-at-a-time table,
/// `CRC_TABLES[j]` folds a byte that sits `j` positions further ahead.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
};

/// Incremental CRC-32 (IEEE) state: feed slices with [`Crc32::update`]
/// and read the digest with [`Crc32::finish`]. Updating with `a` then
/// `b` equals [`crc32`] of their concatenation, so callers can guard
/// scattered buffers without gathering them into one allocation.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (the digest of the empty string).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the state, eight bytes per table round.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The digest of everything updated so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Computes the CRC-32 (IEEE) of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finish()
}

/// Appends `v` to `out` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` — the decoding inverse of [`write_varint`], exposed for
/// protocols that reuse the `.duob` framing primitives (the shard
/// coordinator/worker wire format).
///
/// `base` is the absolute file offset of `bytes[0]`, used only for error
/// reporting.
pub fn decode_varint(bytes: &[u8], pos: &mut usize, base: usize) -> Result<u64, BinaryParseError> {
    read_varint(bytes, pos, base)
}

/// Reads a LEB128 varint from `bytes` starting at `*pos`, advancing `*pos`.
///
/// `base` is the absolute file offset of `bytes[0]`, used only for error
/// reporting.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize, base: usize) -> Result<u64, BinaryParseError> {
    // One- and two-byte fast paths: ids and values in real traces almost
    // always fit 14 bits, and the decode loop pays this call per field.
    if let Some(&b0) = bytes.get(*pos) {
        if b0 & 0x80 == 0 {
            *pos += 1;
            return Ok(u64::from(b0));
        }
        if let Some(&b1) = bytes.get(*pos + 1) {
            if b1 & 0x80 == 0 {
                *pos += 2;
                return Ok(u64::from(b0 & 0x7F) | u64::from(b1) << 7);
            }
        }
    }
    read_varint_slow(bytes, pos, base)
}

fn read_varint_slow(bytes: &[u8], pos: &mut usize, base: usize) -> Result<u64, BinaryParseError> {
    let start = *pos;
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(BinaryParseError::Truncated {
                offset: base + *pos,
                context: "varint",
            });
        };
        *pos += 1;
        if *pos - start > VARINT_MAX_BYTES {
            return Err(BinaryParseError::OversizedVarint {
                offset: base + start,
            });
        }
        // The 10th byte of a 64-bit LEB128 may only contribute one bit.
        if shift == 63 && byte > 1 {
            return Err(BinaryParseError::OversizedVarint {
                offset: base + start,
            });
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn check_id(what: &'static str, value: u64) -> Result<u32, BinaryParseError> {
    if value > u64::from(MAX_ID) {
        return Err(BinaryParseError::IdOutOfRange { what, value });
    }
    Ok(value as u32)
}

fn push_frame(out: &mut Vec<u8>, ty: u8, payload: &[u8]) {
    out.push(ty);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

fn encode_event(out: &mut Vec<u8>, ev: Event) {
    let p = PackedEvent::pack(ev);
    out.push(p.tag);
    write_varint(out, u64::from(p.txn));
    match p.tag {
        PackedEvent::TAG_INV_READ => write_varint(out, u64::from(p.obj)),
        PackedEvent::TAG_INV_WRITE => {
            write_varint(out, u64::from(p.obj));
            write_varint(out, p.value);
        }
        PackedEvent::TAG_RESP_VALUE => write_varint(out, p.value),
        _ => {}
    }
}

/// Encodes a history in the `.duob` binary format with no interned names.
pub fn encode(history: &History) -> Vec<u8> {
    encode_with_names(history, &InternTable::default())
}

/// Encodes a history in the `.duob` binary format, carrying `names` in an
/// intern-table frame when non-empty.
pub fn encode_with_names(history: &History, names: &InternTable) -> Vec<u8> {
    let events = history.events();
    // Header + conservative per-event estimate keeps growth reallocations rare.
    let mut out = Vec::with_capacity(16 + events.len() * 4);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    if !names.is_empty() {
        let mut payload = Vec::new();
        write_varint(&mut payload, names.entries.len() as u64);
        for entry in &names.entries {
            payload.push(match entry.kind {
                InternKind::Txn => 0,
                InternKind::Obj => 1,
            });
            write_varint(&mut payload, u64::from(entry.id));
            let name = &entry.name.as_bytes()[..entry.name.len().min(MAX_NAME_BYTES)];
            write_varint(&mut payload, name.len() as u64);
            payload.extend_from_slice(name);
        }
        push_frame(&mut out, FRAME_INTERN, &payload);
    }
    let mut payload = Vec::new();
    for chunk in events.chunks(EVENTS_PER_FRAME.max(1)) {
        payload.clear();
        write_varint(&mut payload, chunk.len() as u64);
        for &ev in chunk {
            encode_event(&mut payload, ev);
        }
        push_frame(&mut out, FRAME_EVENTS, &payload);
    }
    payload.clear();
    write_varint(&mut payload, events.len() as u64);
    push_frame(&mut out, FRAME_END, &payload);
    out
}

/// A streaming decoder over an in-memory `.duob` byte slice.
///
/// Frames are CRC-checked as they are entered; events are decoded one at a
/// time straight off the borrowed payload slice, so a monitor can consume a
/// trace without ever materialising the full event vector. After the stream
/// is exhausted (`next_event` returned `Ok(None)`), the end-frame count has
/// been verified and [`EventStream::intern_table`] exposes any interned
/// names.
#[derive(Debug)]
pub struct EventStream<'a> {
    bytes: &'a [u8],
    /// Absolute offset of the next unread frame byte.
    pos: usize,
    /// Payload of the current `'E'` frame (CRC already verified).
    payload: &'a [u8],
    /// Cursor within `payload`.
    ppos: usize,
    /// Absolute offset of `payload[0]`.
    pbase: usize,
    /// Events remaining in the current frame.
    frame_remaining: u64,
    /// Events decoded so far across frames.
    decoded: u64,
    /// Set once the `'Z'` frame has been validated.
    finished: bool,
    names: InternTable,
}

/// Decodes one event from an `'E'` frame payload. One match decodes the
/// tag-specific operands and builds the event directly, rather than
/// round-tripping through [`PackedEvent`].
#[inline]
fn decode_one(payload: &[u8], pos: &mut usize, base: usize) -> Result<Event, BinaryParseError> {
    let Some(&tag) = payload.get(*pos) else {
        return Err(BinaryParseError::Truncated {
            offset: base + *pos,
            context: "event tag",
        });
    };
    *pos += 1;
    if tag > PackedEvent::TAG_MAX {
        return Err(BinaryParseError::UnknownEventTag { byte: tag });
    }
    let txn = check_id("transaction id", read_varint(payload, pos, base)?)?;
    let kind = match tag {
        PackedEvent::TAG_INV_READ => {
            let obj = check_id("t-object id", read_varint(payload, pos, base)?)?;
            EventKind::Inv(Op::Read(ObjId::new(obj)))
        }
        PackedEvent::TAG_INV_WRITE => {
            let obj = check_id("t-object id", read_varint(payload, pos, base)?)?;
            let value = read_varint(payload, pos, base)?;
            EventKind::Inv(Op::Write(ObjId::new(obj), Value::new(value)))
        }
        PackedEvent::TAG_INV_TRY_COMMIT => EventKind::Inv(Op::TryCommit),
        PackedEvent::TAG_INV_TRY_ABORT => EventKind::Inv(Op::TryAbort),
        PackedEvent::TAG_RESP_VALUE => {
            let value = read_varint(payload, pos, base)?;
            EventKind::Resp(Ret::Value(Value::new(value)))
        }
        PackedEvent::TAG_RESP_OK => EventKind::Resp(Ret::Ok),
        PackedEvent::TAG_RESP_COMMITTED => EventKind::Resp(Ret::Committed),
        PackedEvent::TAG_RESP_ABORTED => EventKind::Resp(Ret::Aborted),
        _ => unreachable!("tag range checked above"),
    };
    Ok(Event {
        txn: TxnId::new(txn),
        kind,
    })
}

impl<'a> EventStream<'a> {
    /// Opens a stream, validating the magic and version header.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryParseError::BadMagic`] or
    /// [`BinaryParseError::UnsupportedVersion`] if the header is wrong.
    pub fn new(bytes: &'a [u8]) -> Result<Self, BinaryParseError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(BinaryParseError::BadMagic);
        }
        let Some(&version) = bytes.get(MAGIC.len()) else {
            return Err(BinaryParseError::Truncated {
                offset: MAGIC.len(),
                context: "version byte",
            });
        };
        if version != VERSION {
            return Err(BinaryParseError::UnsupportedVersion(version));
        }
        Ok(EventStream {
            bytes,
            pos: MAGIC.len() + 1,
            payload: &[],
            ppos: 0,
            pbase: 0,
            frame_remaining: 0,
            decoded: 0,
            finished: false,
            names: InternTable::default(),
        })
    }

    /// The intern table seen so far. Complete once the header frames have
    /// been consumed — in practice after the first call to `next_event`.
    pub fn intern_table(&self) -> &InternTable {
        &self.names
    }

    /// Total events decoded so far.
    pub fn events_decoded(&self) -> u64 {
        self.decoded
    }

    /// Reads, CRC-checks, and returns the next frame as `(type, payload)`.
    fn next_frame(&mut self) -> Result<(u8, &'a [u8], usize), BinaryParseError> {
        let frame_offset = self.pos;
        let Some(&ty) = self.bytes.get(self.pos) else {
            return Err(BinaryParseError::MissingEndFrame);
        };
        if ty != FRAME_INTERN && ty != FRAME_EVENTS && ty != FRAME_END {
            return Err(BinaryParseError::UnknownFrameType {
                byte: ty,
                offset: frame_offset,
            });
        }
        let mut pos = self.pos + 1;
        let len = read_varint(self.bytes, &mut pos, 0)?;
        if len > MAX_FRAME_BYTES as u64 {
            return Err(BinaryParseError::FrameTooLarge { len });
        }
        let len = len as usize;
        let payload_base = pos;
        let end = pos
            .checked_add(len)
            .and_then(|e| e.checked_add(CRC_BYTES))
            .filter(|&e| e <= self.bytes.len())
            .ok_or(BinaryParseError::Truncated {
                offset: self.bytes.len(),
                context: "frame payload",
            })?;
        let payload = &self.bytes[pos..pos + len];
        let stored = u32::from_le_bytes(
            self.bytes[pos + len..end]
                .try_into()
                .expect("CRC slice is 4 bytes"),
        );
        let computed = crc32(payload);
        if stored != computed {
            return Err(BinaryParseError::CrcMismatch {
                frame_offset,
                stored,
                computed,
            });
        }
        self.pos = end;
        Ok((ty, payload, payload_base))
    }

    fn load_intern_table(
        &mut self,
        payload: &'a [u8],
        base: usize,
    ) -> Result<(), BinaryParseError> {
        let mut pos = 0usize;
        let count = read_varint(payload, &mut pos, base)?;
        if count > (MAX_FRAME_BYTES as u64) {
            return Err(BinaryParseError::BadInternEntry {
                message: "entry count exceeds frame capacity",
            });
        }
        for _ in 0..count {
            let Some(&kind) = payload.get(pos) else {
                return Err(BinaryParseError::Truncated {
                    offset: base + pos,
                    context: "intern entry kind",
                });
            };
            pos += 1;
            let kind = match kind {
                0 => InternKind::Txn,
                1 => InternKind::Obj,
                _ => {
                    return Err(BinaryParseError::BadInternEntry {
                        message: "unknown entry kind",
                    })
                }
            };
            let id = check_id("interned id", read_varint(payload, &mut pos, base)?)?;
            let len = read_varint(payload, &mut pos, base)?;
            if len > MAX_NAME_BYTES as u64 {
                return Err(BinaryParseError::BadInternEntry {
                    message: "name too long",
                });
            }
            let len = len as usize;
            let name_bytes = payload.get(pos..pos + len).ok_or({
                BinaryParseError::Truncated {
                    offset: base + payload.len(),
                    context: "intern entry name",
                }
            })?;
            pos += len;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| BinaryParseError::BadInternEntry {
                    message: "name is not valid UTF-8",
                })?
                .to_owned();
            self.names.entries.push(InternEntry { kind, id, name });
        }
        if pos != payload.len() {
            return Err(BinaryParseError::BadInternEntry {
                message: "trailing bytes in intern frame",
            });
        }
        Ok(())
    }

    /// Decodes the next event, or `Ok(None)` once the validated end frame
    /// has been reached.
    ///
    /// # Errors
    ///
    /// Any [`BinaryParseError`] except `Malformed` — the stream checks the
    /// wire format only; history well-formedness is the caller's concern.
    pub fn next_event(&mut self) -> Result<Option<Event>, BinaryParseError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            if self.frame_remaining > 0 {
                let payload = self.payload;
                let ev = decode_one(payload, &mut self.ppos, self.pbase)?;
                self.frame_remaining -= 1;
                self.decoded += 1;
                return Ok(Some(ev));
            }
            self.advance_frame()?;
        }
    }

    /// Appends every event of the next `'E'` frame to `out`, returning
    /// `false` once the validated end frame has been reached. Bulk decoders
    /// use this instead of [`next_event`](EventStream::next_event): the
    /// frame cursor stays in registers across the whole chunk instead of
    /// round-tripping through the stream's fields per event.
    pub fn next_frame_events(&mut self, out: &mut Vec<Event>) -> Result<bool, BinaryParseError> {
        loop {
            if self.finished {
                return Ok(false);
            }
            let n = self.frame_remaining;
            if n > 0 {
                let payload = self.payload;
                let base = self.pbase;
                let mut pos = self.ppos;
                // Every event takes at least two payload bytes, so a count
                // beyond that is hostile — don't let it size the reserve.
                let plausible = ((payload.len() - pos) / 2 + 1) as u64;
                out.reserve(n.min(plausible) as usize);
                for _ in 0..n {
                    out.push(decode_one(payload, &mut pos, base)?);
                }
                self.ppos = pos;
                self.frame_remaining = 0;
                self.decoded += n;
                return Ok(true);
            }
            self.advance_frame()?;
        }
    }

    /// Moves to the next frame once the current `'E'` payload is drained,
    /// loading intern tables and validating the end frame along the way.
    fn advance_frame(&mut self) -> Result<(), BinaryParseError> {
        if self.ppos != self.payload.len() {
            // A frame that declared fewer events than its payload holds.
            return Err(BinaryParseError::TrailingBytes {
                offset: self.pbase + self.ppos,
            });
        }
        let (ty, payload, base) = self.next_frame()?;
        match ty {
            FRAME_INTERN => self.load_intern_table(payload, base)?,
            FRAME_EVENTS => {
                self.payload = payload;
                self.pbase = base;
                self.ppos = 0;
                self.frame_remaining = read_varint(payload, &mut self.ppos, base)?;
            }
            FRAME_END => {
                let mut pos = 0usize;
                let declared = read_varint(payload, &mut pos, base)?;
                if declared != self.decoded {
                    return Err(BinaryParseError::CountMismatch {
                        declared,
                        actual: self.decoded,
                    });
                }
                if self.pos != self.bytes.len() {
                    return Err(BinaryParseError::TrailingBytes { offset: self.pos });
                }
                self.finished = true;
            }
            _ => unreachable!("next_frame rejects unknown types"),
        }
        Ok(())
    }
}

/// Sums the event counts declared by `'E'` frame headers without decoding
/// events, so the bulk decoder can size its vector exactly. Returns `None`
/// on any structural problem — the real decode will surface the error.
fn scan_event_count(bytes: &[u8]) -> Option<usize> {
    let mut pos = MAGIC.len() + 1;
    let mut total = 0u64;
    while pos < bytes.len() {
        let ty = *bytes.get(pos)?;
        pos += 1;
        let len = read_varint(bytes, &mut pos, 0).ok()?;
        if len > MAX_FRAME_BYTES as u64 {
            return None;
        }
        let len = len as usize;
        if ty == FRAME_EVENTS {
            let mut ppos = pos;
            total = total.checked_add(read_varint(bytes, &mut ppos, 0).ok()?)?;
        }
        pos = pos.checked_add(len)?.checked_add(CRC_BYTES)?;
    }
    usize::try_from(total).ok()
}

/// Bulk-decodes a binary trace into a validated [`History`].
///
/// # Errors
///
/// Returns a [`BinaryParseError`] for wire-format violations, and
/// [`BinaryParseError::Malformed`] if the decoded events do not form a
/// well-formed history.
pub fn decode(bytes: &[u8]) -> Result<History, BinaryParseError> {
    decode_with_names(bytes).map(|(h, _)| h)
}

/// Bulk-decodes a binary trace, also returning its intern table.
///
/// # Errors
///
/// As [`decode`].
pub fn decode_with_names(bytes: &[u8]) -> Result<(History, InternTable), BinaryParseError> {
    let mut stream = EventStream::new(bytes)?;
    // Frame-fused decode + validation: events go straight from the wire
    // into the incremental well-formedness check, one frame at a time with
    // the frame cursor held in locals — no event vector is materialised
    // and re-read, and nothing round-trips through the stream's fields
    // per event.
    let mut history = History::with_event_capacity(scan_event_count(bytes).unwrap_or(0));
    loop {
        if stream.finished {
            break;
        }
        let n = stream.frame_remaining;
        if n == 0 {
            stream.advance_frame()?;
            continue;
        }
        let payload = stream.payload;
        let base = stream.pbase;
        let mut pos = stream.ppos;
        for _ in 0..n {
            history.push_checked(decode_one(payload, &mut pos, base)?)?;
        }
        stream.ppos = pos;
        stream.frame_remaining = 0;
        stream.decoded += n;
    }
    Ok((history, std::mem::take(&mut stream.names)))
}

/// A bulk decoder with a reusable event scratch buffer.
///
/// Repeated ingestion (benchmark loops, CI smoke runs, multi-file batch
/// checks) decodes into the same backing allocation instead of growing a
/// fresh vector per file.
#[derive(Debug, Default)]
pub struct ScratchDecoder {
    scratch: Vec<Event>,
}

impl ScratchDecoder {
    /// Creates a decoder with an empty scratch buffer.
    pub fn new() -> Self {
        ScratchDecoder::default()
    }

    /// Decodes `bytes` into the scratch buffer and returns the event slice.
    ///
    /// The slice borrows the decoder; the next call overwrites it. No
    /// history validation is performed — use [`decode`] for that.
    ///
    /// # Errors
    ///
    /// Any wire-format [`BinaryParseError`].
    pub fn decode_events(&mut self, bytes: &[u8]) -> Result<&[Event], BinaryParseError> {
        self.scratch.clear();
        let mut stream = EventStream::new(bytes)?;
        if let Some(n) = scan_event_count(bytes) {
            self.scratch.reserve(n);
        }
        while stream.next_frame_events(&mut self.scratch)? {}
        Ok(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ObjId, Op, Ret, TxnId, Value};

    fn sample() -> History {
        HistoryBuilder::new()
            .inv_write(TxnId::new(1), ObjId::new(0), Value::new(1))
            .inv_read(TxnId::new(2), ObjId::new(0))
            .resp_ok(TxnId::new(1))
            .resp_value(TxnId::new(2), Value::new(0))
            .inv_try_commit(TxnId::new(1))
            .resp_committed(TxnId::new(1))
            .try_abort(TxnId::new(2))
            .build()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let mut digest = Crc32::new();
            digest.update(&data[..split]);
            digest.update(&data[split..]);
            assert_eq!(digest.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos, 0).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_oversized() {
        // Eleven continuation bytes.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos, 0),
            Err(BinaryParseError::OversizedVarint { .. })
        ));
        // Ten bytes but the last contributes more than one bit.
        let buf = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos, 0),
            Err(BinaryParseError::OversizedVarint { .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample();
        let bytes = encode(&h);
        assert_eq!(&bytes[..4], b"DUOB");
        assert_eq!(bytes[4], VERSION);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_history_roundtrips() {
        let h = History::new(Vec::new()).unwrap();
        let back = decode(&encode(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn streaming_matches_bulk() {
        let h = sample();
        let bytes = encode(&h);
        let mut stream = EventStream::new(&bytes).unwrap();
        let mut events = Vec::new();
        while let Some(ev) = stream.next_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(events.as_slice(), h.events());
        assert_eq!(stream.events_decoded(), h.len() as u64);
    }

    #[test]
    fn intern_table_roundtrips() {
        let h = sample();
        let names = InternTable {
            entries: vec![
                InternEntry {
                    kind: InternKind::Obj,
                    id: 0,
                    name: "x".into(),
                },
                InternEntry {
                    kind: InternKind::Txn,
                    id: 1,
                    name: "s0_t0".into(),
                },
            ],
        };
        let bytes = encode_with_names(&h, &names);
        let (back, table) = decode_with_names(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(table, names);
        assert_eq!(table.name(InternKind::Obj, 0), Some("x"));
        assert_eq!(table.name(InternKind::Txn, 2), None);
    }

    #[test]
    fn scratch_decoder_reuses_buffer() {
        let h = sample();
        let bytes = encode(&h);
        let mut dec = ScratchDecoder::new();
        let first = dec.decode_events(&bytes).unwrap().to_vec();
        assert_eq!(first.as_slice(), h.events());
        let again = dec.decode_events(&bytes).unwrap();
        assert_eq!(again, h.events());
    }

    #[test]
    fn corrupted_byte_is_caught_by_crc() {
        let h = sample();
        let mut bytes = encode(&h);
        // Flip one bit inside the first event frame's payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x40;
        let err = decode(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                BinaryParseError::CrcMismatch { .. }
                    | BinaryParseError::Truncated { .. }
                    | BinaryParseError::FrameTooLarge { .. }
                    | BinaryParseError::UnknownFrameType { .. }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncation_is_caught() {
        let h = sample();
        let bytes = encode(&h);
        for cut in [0, 3, 4, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                !matches!(err, BinaryParseError::Malformed(_)),
                "cut at {cut}: expected a wire error, got {err}"
            );
        }
    }

    #[test]
    fn end_frame_count_guards_frame_splicing() {
        let h = sample();
        let bytes = encode(&h);
        // Drop the events frame but keep header + end frame: the declared
        // count no longer matches.
        let mut spliced = bytes[..5].to_vec();
        // The end frame is the last 1 (type) + 1 (len) + payload + 4 bytes.
        let tail_start = bytes.len() - (2 + 1 + 4);
        spliced.extend_from_slice(&bytes[tail_start..]);
        let err = decode(&spliced).unwrap_err();
        assert!(
            matches!(err, BinaryParseError::CountMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn header_errors() {
        assert!(matches!(
            decode(b"NOPE\x01rest"),
            Err(BinaryParseError::BadMagic)
        ));
        assert!(matches!(
            decode(b"DUOB\x7f"),
            Err(BinaryParseError::UnsupportedVersion(0x7f))
        ));
        assert!(matches!(
            decode(b"DUOB"),
            Err(BinaryParseError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let h = sample();
        let mut bytes = encode(&h);
        bytes.push(0xAA);
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, BinaryParseError::TrailingBytes { .. }));
    }

    #[test]
    fn malformed_history_is_reported() {
        // A lone response is wire-valid but not a well-formed history.
        let events = [Event::resp(TxnId::new(1), Ret::Ok)];
        let mut payload = Vec::new();
        write_varint(&mut payload, 1);
        encode_event(&mut payload, events[0]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        push_frame(&mut bytes, FRAME_EVENTS, &payload);
        let mut endp = Vec::new();
        write_varint(&mut endp, 1);
        push_frame(&mut bytes, FRAME_END, &endp);
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, BinaryParseError::Malformed(_)));
    }

    #[test]
    fn large_history_roundtrips_across_frames() {
        // More events than one frame holds, to exercise chunking.
        let mut b = HistoryBuilder::new();
        let n = EVENTS_PER_FRAME as u32 + 100;
        for i in 1..=n {
            let t = TxnId::new(i);
            b = b.committed_writer(t, ObjId::new(i % 7), Value::new(u64::from(i)));
        }
        let h = b.build();
        assert!(h.len() > EVENTS_PER_FRAME);
        let bytes = encode(&h);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn oversized_id_rejected() {
        let ev = Event::inv(TxnId::new(MAX_ID + 1), Op::TryCommit);
        let mut payload = Vec::new();
        write_varint(&mut payload, 1);
        encode_event(&mut payload, ev);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        push_frame(&mut bytes, FRAME_EVENTS, &payload);
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, BinaryParseError::IdOutOfRange { .. }));
    }
}
