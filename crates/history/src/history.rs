//! Histories: validated sequences of invocation and response events.

use crate::{Event, EventKind, ObjId, Op, OpRecord, Ret, TxnId, Value};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Why a sequence of events is not a well-formed history.
///
/// Well-formedness follows Section 2 of the paper: for every transaction
/// `T_k`, `H|k` is sequential (invocations and responses strictly
/// alternate, and each response matches the pending invocation), has no
/// events after `A_k` or `C_k`, and reads each t-object at most once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MalformedHistoryError {
    /// A history event used the reserved initial transaction `T_0`.
    ReservedInitialTxn {
        /// Index of the offending event.
        index: usize,
    },
    /// A response arrived with no pending invocation.
    ResponseWithoutInvocation {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// An invocation arrived while another was still pending.
    OverlappingInvocation {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// A response did not match the pending invocation's signature.
    MismatchedResponse {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
        /// The pending invocation.
        op: Op,
        /// The offending response.
        ret: Ret,
    },
    /// An event followed the transaction's terminal `C_k` or `A_k`.
    EventAfterTermination {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// A transaction invoked `read_k(X)` twice on the same t-object.
    ///
    /// The paper assumes at most one read per t-object per transaction
    /// (without loss of generality: a repeated read can be served from the
    /// first result without affecting correctness).
    RepeatedRead {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
        /// The t-object that was read twice.
        obj: ObjId,
    },
}

impl fmt::Display for MalformedHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedHistoryError::ReservedInitialTxn { index } => {
                write!(f, "event {index} uses reserved initial transaction T0")
            }
            MalformedHistoryError::ResponseWithoutInvocation { index, txn } => {
                write!(
                    f,
                    "event {index}: response for {txn} without pending invocation"
                )
            }
            MalformedHistoryError::OverlappingInvocation { index, txn } => {
                write!(
                    f,
                    "event {index}: {txn} invoked an operation while another is pending"
                )
            }
            MalformedHistoryError::MismatchedResponse {
                index,
                txn,
                op,
                ret,
            } => {
                write!(
                    f,
                    "event {index}: {txn} response {ret} does not match invocation {op}"
                )
            }
            MalformedHistoryError::EventAfterTermination { index, txn } => {
                write!(f, "event {index}: {txn} acted after committing or aborting")
            }
            MalformedHistoryError::RepeatedRead { index, txn, obj } => {
                write!(f, "event {index}: {txn} read {obj} more than once")
            }
        }
    }
}

impl Error for MalformedHistoryError {}

/// How a transaction may terminate across the completions of a history
/// (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitCapability {
    /// The transaction already committed (`C_k` appears in the history); it
    /// is committed in every completion.
    Committed,
    /// The transaction has an incomplete `tryC_k()`; a completion may insert
    /// either `C_k` or `A_k`.
    CommitPending,
    /// The transaction aborts in every completion: either it already
    /// aborted, or it has an incomplete `read`/`write`/`tryA` (completed
    /// with `A_k`), or it is complete but never invoked `tryC_k()`
    /// (completed with `tryC_k · A_k`).
    NeverCommitted,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct TxnRecord {
    pub(crate) id: TxnId,
    pub(crate) first: usize,
    pub(crate) last: usize,
    pub(crate) ops: Vec<OpRecord>,
    /// Terminal response (`Committed` or `Aborted`) if t-complete.
    pub(crate) terminal: Option<Ret>,
}

impl TxnRecord {
    fn is_complete(&self) -> bool {
        self.ops.last().is_none_or(OpRecord::is_complete)
    }
}

/// A well-formed (possibly incomplete) transactional history.
///
/// Constructed with [`History::new`], which validates well-formedness, or
/// via [`HistoryBuilder`](crate::HistoryBuilder). Histories are immutable;
/// derived histories (prefixes, projections) are produced by methods.
///
/// # Examples
///
/// ```
/// use duop_history::{Event, History, ObjId, Op, Ret, TxnId, Value};
///
/// let t1 = TxnId::new(1);
/// let x = ObjId::new(0);
/// let h = History::new(vec![
///     Event::inv(t1, Op::Read(x)),
///     Event::resp(t1, Ret::Value(Value::INITIAL)),
///     Event::inv(t1, Op::TryCommit),
///     Event::resp(t1, Ret::Committed),
/// ])?;
/// assert!(h.is_complete());
/// assert!(h.txn(t1).unwrap().is_committed());
/// # Ok::<(), duop_history::MalformedHistoryError>(())
/// ```
#[derive(Clone, Debug)]
pub struct History {
    events: Vec<Event>,
    /// Transaction records keyed by id.
    txns: BTreeMap<TxnId, TxnRecord>,
    /// Transaction ids in order of first appearance.
    order: Vec<TxnId>,
}

impl PartialEq for History {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for History {}

impl Default for History {
    fn default() -> Self {
        History::empty()
    }
}

impl History {
    /// Creates the empty history.
    pub fn empty() -> Self {
        History {
            events: Vec::new(),
            txns: BTreeMap::new(),
            order: Vec::new(),
        }
    }

    /// Validates `events` as a well-formed history.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] describing the first violation of
    /// well-formedness (see the error type for the rules enforced).
    pub fn new(events: Vec<Event>) -> Result<Self, MalformedHistoryError> {
        let mut txns: BTreeMap<TxnId, TxnRecord> = BTreeMap::new();
        let mut order = Vec::new();
        for (index, ev) in events.iter().enumerate() {
            if ev.txn.is_initial() {
                return Err(MalformedHistoryError::ReservedInitialTxn { index });
            }
            let rec = txns.entry(ev.txn).or_insert_with(|| {
                order.push(ev.txn);
                TxnRecord {
                    id: ev.txn,
                    first: index,
                    last: index,
                    ops: Vec::new(),
                    terminal: None,
                }
            });
            rec.last = index;
            if rec.terminal.is_some() {
                return Err(MalformedHistoryError::EventAfterTermination { index, txn: ev.txn });
            }
            match ev.kind {
                EventKind::Inv(op) => {
                    if rec.ops.last().is_some_and(|o| !o.is_complete()) {
                        return Err(MalformedHistoryError::OverlappingInvocation {
                            index,
                            txn: ev.txn,
                        });
                    }
                    if let Op::Read(x) = op {
                        if rec.ops.iter().any(|o| o.op == Op::Read(x)) {
                            return Err(MalformedHistoryError::RepeatedRead {
                                index,
                                txn: ev.txn,
                                obj: x,
                            });
                        }
                    }
                    rec.ops.push(OpRecord {
                        op,
                        resp: None,
                        inv_index: index,
                        resp_index: None,
                    });
                }
                EventKind::Resp(ret) => {
                    let Some(pending) = rec.ops.last_mut().filter(|o| !o.is_complete()) else {
                        return Err(MalformedHistoryError::ResponseWithoutInvocation {
                            index,
                            txn: ev.txn,
                        });
                    };
                    if !ret.matches(pending.op) {
                        return Err(MalformedHistoryError::MismatchedResponse {
                            index,
                            txn: ev.txn,
                            op: pending.op,
                            ret,
                        });
                    }
                    pending.resp = Some(ret);
                    pending.resp_index = Some(index);
                    if matches!(ret, Ret::Committed | Ret::Aborted) {
                        rec.terminal = Some(ret);
                    }
                }
            }
        }
        Ok(History {
            events,
            txns,
            order,
        })
    }

    /// The events of the history, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Human-readable label of the event at `index` (its [`Display`]
    /// rendering, e.g. `T1:R(X0)` or `T2->C`), or `None` if out of range.
    ///
    /// Used by diagnostics that anchor explanations to event spans.
    ///
    /// [`Display`]: fmt::Display
    pub fn event_label(&self, index: usize) -> Option<String> {
        self.events.get(index).map(|e| e.to_string())
    }

    /// Returns `true` if the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The prefix `H^n` consisting of the first `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> History {
        assert!(
            n <= self.len(),
            "prefix length {n} exceeds history length {}",
            self.len()
        );
        // A prefix of a well-formed history is well-formed.
        History::new(self.events[..n].to_vec())
            .expect("prefix of a well-formed history is well-formed")
    }

    /// Transaction identifiers in `txns(H)`, ordered by first appearance.
    pub fn txn_ids(&self) -> impl ExactSizeIterator<Item = TxnId> + '_ {
        self.order.iter().copied()
    }

    /// Number of participating transactions.
    pub fn txn_count(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if `T_k` participates in `H` (i.e. `H|k` is
    /// non-empty).
    pub fn participates(&self, txn: TxnId) -> bool {
        self.txns.contains_key(&txn)
    }

    /// A view of transaction `txn`, or `None` if it does not participate.
    pub fn txn(&self, txn: TxnId) -> Option<TxnView<'_>> {
        self.txns
            .get(&txn)
            .map(|rec| TxnView { history: self, rec })
    }

    /// Views of all participating transactions, ordered by first appearance.
    pub fn txns(&self) -> impl Iterator<Item = TxnView<'_>> {
        self.order.iter().map(move |id| TxnView {
            history: self,
            rec: &self.txns[id],
        })
    }

    /// Returns `true` if every transaction in `txns(H)` is complete
    /// (each `H|k` ends with a response event).
    pub fn is_complete(&self) -> bool {
        self.txns().all(|t| t.is_complete())
    }

    /// Returns `true` if every transaction in `txns(H)` is t-complete
    /// (each `H|k` ends with `A_k` or `C_k`).
    pub fn is_t_complete(&self) -> bool {
        self.txns().all(|t| t.is_t_complete())
    }

    /// Returns `true` if every invocation is either the last event or is
    /// immediately followed by its matching response.
    pub fn is_sequential(&self) -> bool {
        for (i, ev) in self.events.iter().enumerate() {
            if let EventKind::Inv(_) = ev.kind {
                if i + 1 == self.events.len() {
                    continue;
                }
                let next = &self.events[i + 1];
                if next.txn != ev.txn || !next.kind.is_resp() {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if no two transactions overlap: for every pair, one
    /// precedes the other in real-time order.
    pub fn is_t_sequential(&self) -> bool {
        // Transactions sorted by first event; each must end (t-complete)
        // before the next begins.
        let mut prev_last: Option<(usize, bool)> = None;
        for id in &self.order {
            let rec = &self.txns[id];
            if let Some((last, t_complete)) = prev_last {
                if !(t_complete && last < rec.first) {
                    return false;
                }
            }
            prev_last = Some((rec.last, rec.terminal.is_some()));
        }
        true
    }

    /// Returns `true` if `H` and `other` are *equivalent*:
    /// `txns(H) = txns(H')` and `H|k = H'|k` for every transaction.
    pub fn equivalent(&self, other: &History) -> bool {
        if self.txns.len() != other.txns.len() {
            return false;
        }
        self.txns
            .keys()
            .all(|id| other.txns.contains_key(id) && self.events_of(*id).eq(other.events_of(*id)))
    }

    /// The subsequence `H|k` of events of transaction `txn`.
    pub fn events_of(&self, txn: TxnId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.txn == txn)
    }

    /// The subsequence of `H` consisting of events whose transaction
    /// satisfies `keep`.
    ///
    /// Used to build committed projections and the local serializations
    /// `S^{k,X}_H` of Definition 3.
    pub fn filter_txns(&self, mut keep: impl FnMut(TxnId) -> bool) -> History {
        let events = self
            .events
            .iter()
            .filter(|e| keep(e.txn))
            .copied()
            .collect();
        History::new(events)
            .expect("transaction-projection of a well-formed history is well-formed")
    }

    /// Real-time order on transactions: `T_k ≺RT T_m` iff `T_k` is
    /// t-complete in `H` and its last event precedes the first event of
    /// `T_m`.
    ///
    /// Returns `false` if either transaction does not participate.
    pub fn precedes_rt(&self, k: TxnId, m: TxnId) -> bool {
        let (Some(a), Some(b)) = (self.txns.get(&k), self.txns.get(&m)) else {
            return false;
        };
        a.terminal.is_some() && a.last < b.first
    }

    /// Returns `true` if `T_k` and `T_m` overlap (neither precedes the
    /// other in real-time order).
    pub fn overlaps(&self, k: TxnId, m: TxnId) -> bool {
        self.participates(k)
            && self.participates(m)
            && k != m
            && !self.precedes_rt(k, m)
            && !self.precedes_rt(m, k)
    }

    /// Index of the response event of `read_k(X)`, if that read is complete.
    ///
    /// Used to form the prefix `H^{k,X}` of Definition 3.
    pub fn read_resp_index(&self, txn: TxnId, obj: ObjId) -> Option<usize> {
        let rec = self.txns.get(&txn)?;
        rec.ops
            .iter()
            .find(|o| o.op == Op::Read(obj))
            .and_then(|o| o.resp_index)
    }

    /// Index of the invocation of `tryC_k()`, if the transaction invoked it.
    pub fn try_commit_inv_index(&self, txn: TxnId) -> Option<usize> {
        let rec = self.txns.get(&txn)?;
        rec.ops
            .iter()
            .find(|o| o.op == Op::TryCommit)
            .map(|o| o.inv_index)
    }

    /// Appends `events` to a copy of this history, revalidating.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] if the extension is not
    /// well-formed.
    pub fn extended(
        &self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<History, MalformedHistoryError> {
        let mut all = self.events.clone();
        all.extend(events);
        History::new(all)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "(empty history)");
        }
        let mut first = true;
        for ev in &self.events {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{ev}")?;
            first = false;
        }
        Ok(())
    }
}

impl serde::Serialize for History {
    fn to_content(&self) -> serde::Content {
        serde::Serialize::to_content(&self.events)
    }
}

impl serde::Deserialize for History {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let events = <Vec<Event> as serde::Deserialize>::from_content(content)?;
        History::new(events).map_err(serde::de::Error::custom)
    }
}

/// A read-only view of one transaction inside a [`History`].
#[derive(Clone, Copy)]
pub struct TxnView<'a> {
    history: &'a History,
    rec: &'a TxnRecord,
}

impl fmt::Debug for TxnView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnView")
            .field("id", &self.rec.id)
            .field("ops", &self.rec.ops)
            .field("terminal", &self.rec.terminal)
            .finish()
    }
}

impl<'a> TxnView<'a> {
    /// The transaction identifier.
    pub fn id(&self) -> TxnId {
        self.rec.id
    }

    /// The t-operations of the transaction in program order.
    pub fn ops(&self) -> &'a [OpRecord] {
        &self.rec.ops
    }

    /// Index of the transaction's first event in the history.
    pub fn first_event_index(&self) -> usize {
        self.rec.first
    }

    /// Index of the transaction's last event in the history.
    pub fn last_event_index(&self) -> usize {
        self.rec.last
    }

    /// Returns `true` if `H|k` ends with a response event.
    pub fn is_complete(&self) -> bool {
        self.rec.is_complete()
    }

    /// Returns `true` if `H|k` ends with `A_k` or `C_k`.
    pub fn is_t_complete(&self) -> bool {
        self.rec.terminal.is_some()
    }

    /// Returns `true` if the transaction committed (`C_k` in `H`).
    pub fn is_committed(&self) -> bool {
        self.rec.terminal == Some(Ret::Committed)
    }

    /// Returns `true` if the transaction aborted (`A_k` in `H`).
    pub fn is_aborted(&self) -> bool {
        self.rec.terminal == Some(Ret::Aborted)
    }

    /// How this transaction may terminate across completions
    /// (Definition 2).
    pub fn commit_capability(&self) -> CommitCapability {
        match self.rec.terminal {
            Some(Ret::Committed) => CommitCapability::Committed,
            Some(_) => CommitCapability::NeverCommitted,
            None => {
                let pending_try_commit = self
                    .rec
                    .ops
                    .last()
                    .is_some_and(|o| !o.is_complete() && o.op.is_try_commit());
                if pending_try_commit {
                    CommitCapability::CommitPending
                } else {
                    CommitCapability::NeverCommitted
                }
            }
        }
    }

    /// The read set `Rset(T_k)`: t-objects read by the transaction.
    ///
    /// Includes only reads whose invocation appears, whether or not a
    /// response arrived.
    pub fn read_set(&self) -> Vec<ObjId> {
        let mut objs: Vec<ObjId> = self
            .rec
            .ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Read(x) => Some(x),
                _ => None,
            })
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// The write set `Wset(T_k)`: t-objects written by the transaction.
    pub fn write_set(&self) -> Vec<ObjId> {
        let mut objs: Vec<ObjId> = self
            .rec
            .ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Write(x, _) => Some(x),
                _ => None,
            })
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// The value of the transaction's last write to `obj`, if any.
    pub fn last_write_to(&self, obj: ObjId) -> Option<Value> {
        self.rec.ops.iter().rev().find_map(|o| match o.op {
            Op::Write(x, v) if x == obj => Some(v),
            _ => None,
        })
    }

    /// The value returned by this transaction's read of `obj`, if the read
    /// completed with a value.
    pub fn read_value(&self, obj: ObjId) -> Option<Value> {
        self.rec
            .ops
            .iter()
            .find(|o| o.op == Op::Read(obj))
            .and_then(OpRecord::read_value)
    }

    /// Returns `true` if the transaction invoked `tryC_k()` in `H`.
    pub fn has_try_commit_inv(&self) -> bool {
        self.rec.ops.iter().any(|o| o.op.is_try_commit())
    }

    /// The events `H|k` of this transaction.
    pub fn events(&self) -> impl Iterator<Item = &'a Event> {
        let id = self.rec.id;
        self.history.events.iter().filter(move |e| e.txn == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn empty_history() {
        let h = History::empty();
        assert!(h.is_empty());
        assert!(h.is_complete());
        assert!(h.is_t_complete());
        assert!(h.is_sequential());
        assert!(h.is_t_sequential());
        assert_eq!(h.txn_count(), 0);
    }

    #[test]
    fn rejects_initial_txn() {
        let err = History::new(vec![Event::inv(TxnId::INITIAL, Op::TryCommit)]).unwrap_err();
        assert_eq!(err, MalformedHistoryError::ReservedInitialTxn { index: 0 });
    }

    #[test]
    fn rejects_response_without_invocation() {
        let err = History::new(vec![Event::resp(t(1), Ret::Ok)]).unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::ResponseWithoutInvocation { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_overlapping_invocations_within_txn() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(1), Op::TryCommit),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::OverlappingInvocation { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_mismatched_response() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::MismatchedResponse { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_event_after_commit() {
        let err = History::new(vec![
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
            Event::inv(t(1), Op::Read(x())),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::EventAfterTermination { index: 2, .. }
        ));
    }

    #[test]
    fn rejects_repeated_read() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::Read(x())),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::RepeatedRead { index: 2, .. }
        ));
    }

    #[test]
    fn abort_response_on_read_terminates_txn() {
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Aborted),
        ])
        .unwrap();
        let view = h.txn(t(1)).unwrap();
        assert!(view.is_aborted());
        assert!(view.is_t_complete());
        assert_eq!(view.commit_capability(), CommitCapability::NeverCommitted);
    }

    #[test]
    fn commit_capability_cases() {
        // Committed.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::Committed
        );

        // Pending tryC.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
        ])
        .unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::CommitPending
        );

        // Complete but never tried to commit.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::NeverCommitted
        );

        // Incomplete read: completion aborts it.
        let h = History::new(vec![Event::inv(t(1), Op::Read(x()))]).unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::NeverCommitted
        );
    }

    #[test]
    fn real_time_order_requires_t_completion() {
        // T1 completes its write but never terminates before T2 starts:
        // not RT-ordered.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(!h.precedes_rt(t(1), t(2)));
        assert!(h.overlaps(t(1), t(2)));

        // With a commit in between they are RT-ordered.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(1))),
        ])
        .unwrap();
        assert!(h.precedes_rt(t(1), t(2)));
        assert!(!h.overlaps(t(1), t(2)));
    }

    #[test]
    fn sequential_and_t_sequential() {
        let seq = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(seq.is_sequential());
        assert!(seq.is_t_sequential());

        // Interleaved invocations: sequential fails.
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(!h.is_sequential());
        assert!(!h.is_t_sequential());
    }

    #[test]
    fn sequential_but_not_t_sequential() {
        // Operations never interleave, but transactions do.
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
        ])
        .unwrap();
        assert!(h.is_sequential());
        assert!(!h.is_t_sequential());
    }

    #[test]
    fn equivalence_ignores_interleaving() {
        let a = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        let b = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(a.equivalent(&b));
        assert!(b.equivalent(&a));

        let c = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(1))),
        ])
        .unwrap();
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn prefix_is_well_formed_and_shorter() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let p = h.prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.events(), &h.events()[..3]);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn prefix_out_of_range_panics() {
        History::empty().prefix(1);
    }

    #[test]
    fn read_and_write_sets() {
        let y = ObjId::new(1);
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::Write(y, v(5))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::Write(y, v(6))),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap();
        let view = h.txn(t(1)).unwrap();
        assert_eq!(view.read_set(), vec![x()]);
        assert_eq!(view.write_set(), vec![y]);
        assert_eq!(view.last_write_to(y), Some(v(6)));
        assert_eq!(view.last_write_to(x()), None);
        assert_eq!(view.read_value(x()), Some(v(0)));
    }

    #[test]
    fn filter_txns_projects() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let only1 = h.filter_txns(|id| id == t(1));
        assert_eq!(only1.txn_count(), 1);
        assert!(only1.participates(t(1)));
        assert!(!only1.participates(t(2)));
    }

    #[test]
    fn event_labels_render_events() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert_eq!(h.event_label(0).as_deref(), Some("T1:W(X0,1)"));
        assert_eq!(h.event_label(3).as_deref(), Some("T1->C"));
        assert_eq!(h.event_label(99), None);
    }

    #[test]
    fn indices_for_definition3() {
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
        ])
        .unwrap();
        assert_eq!(h.read_resp_index(t(1), x()), Some(1));
        assert_eq!(h.try_commit_inv_index(t(1)), Some(2));
        assert_eq!(h.read_resp_index(t(1), ObjId::new(9)), None);
        assert_eq!(h.try_commit_inv_index(t(9)), None);
    }

    #[test]
    fn serde_roundtrip_validates() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);

        // Malformed event lists fail to deserialize as a History.
        let bad = serde_json::to_string(&vec![Event::resp(t(1), Ret::Ok)]).unwrap();
        assert!(serde_json::from_str::<History>(&bad).is_err());
    }

    #[test]
    fn extended_appends_and_validates() {
        let h = History::new(vec![Event::inv(t(1), Op::TryCommit)]).unwrap();
        let h2 = h.extended([Event::resp(t(1), Ret::Committed)]).unwrap();
        assert_eq!(h2.len(), 2);
        assert!(h2.txn(t(1)).unwrap().is_committed());
        assert!(h2.extended([Event::inv(t(1), Op::TryCommit)]).is_err());
    }
}
