//! Histories: validated sequences of invocation and response events.

use crate::{Event, EventKind, ObjId, Op, OpRecord, Ret, TxnId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a sequence of events is not a well-formed history.
///
/// Well-formedness follows Section 2 of the paper: for every transaction
/// `T_k`, `H|k` is sequential (invocations and responses strictly
/// alternate, and each response matches the pending invocation), has no
/// events after `A_k` or `C_k`, and reads each t-object at most once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MalformedHistoryError {
    /// A history event used the reserved initial transaction `T_0`.
    ReservedInitialTxn {
        /// Index of the offending event.
        index: usize,
    },
    /// A response arrived with no pending invocation.
    ResponseWithoutInvocation {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// An invocation arrived while another was still pending.
    OverlappingInvocation {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// A response did not match the pending invocation's signature.
    MismatchedResponse {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
        /// The pending invocation.
        op: Op,
        /// The offending response.
        ret: Ret,
    },
    /// An event followed the transaction's terminal `C_k` or `A_k`.
    EventAfterTermination {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
    },
    /// A transaction invoked `read_k(X)` twice on the same t-object.
    ///
    /// The paper assumes at most one read per t-object per transaction
    /// (without loss of generality: a repeated read can be served from the
    /// first result without affecting correctness).
    RepeatedRead {
        /// Index of the offending event.
        index: usize,
        /// The transaction whose protocol was violated.
        txn: TxnId,
        /// The t-object that was read twice.
        obj: ObjId,
    },
}

impl fmt::Display for MalformedHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedHistoryError::ReservedInitialTxn { index } => {
                write!(f, "event {index} uses reserved initial transaction T0")
            }
            MalformedHistoryError::ResponseWithoutInvocation { index, txn } => {
                write!(
                    f,
                    "event {index}: response for {txn} without pending invocation"
                )
            }
            MalformedHistoryError::OverlappingInvocation { index, txn } => {
                write!(
                    f,
                    "event {index}: {txn} invoked an operation while another is pending"
                )
            }
            MalformedHistoryError::MismatchedResponse {
                index,
                txn,
                op,
                ret,
            } => {
                write!(
                    f,
                    "event {index}: {txn} response {ret} does not match invocation {op}"
                )
            }
            MalformedHistoryError::EventAfterTermination { index, txn } => {
                write!(f, "event {index}: {txn} acted after committing or aborting")
            }
            MalformedHistoryError::RepeatedRead { index, txn, obj } => {
                write!(f, "event {index}: {txn} read {obj} more than once")
            }
        }
    }
}

impl Error for MalformedHistoryError {}

/// How a transaction may terminate across the completions of a history
/// (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitCapability {
    /// The transaction already committed (`C_k` appears in the history); it
    /// is committed in every completion.
    Committed,
    /// The transaction has an incomplete `tryC_k()`; a completion may insert
    /// either `C_k` or `A_k`.
    CommitPending,
    /// The transaction aborts in every completion: either it already
    /// aborted, or it has an incomplete `read`/`write`/`tryA` (completed
    /// with `A_k`), or it is complete but never invoked `tryC_k()`
    /// (completed with `tryC_k · A_k`).
    NeverCommitted,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct TxnRecord {
    pub(crate) id: TxnId,
    pub(crate) first: usize,
    pub(crate) last: usize,
    pub(crate) ops: Ops,
    /// Terminal response (`Committed` or `Aborted`) if t-complete.
    pub(crate) terminal: Option<Ret>,
}

impl TxnRecord {
    fn is_complete(&self) -> bool {
        self.ops.last().is_none_or(OpRecord::is_complete)
    }
}

/// T-operations a transaction's record can hold inline before spilling.
/// Covers a handful of data operations plus the terminating `tryC`/`tryA`
/// — the shape of almost every real transaction.
const OPS_INLINE: usize = 6;

/// A transaction's t-operations, stored inline until they outgrow
/// [`OPS_INLINE`].
///
/// Bulk ingestion creates one record per transaction; giving each one a
/// heap-allocated `Vec` made the per-transaction malloc/free pair the
/// single largest cost in `History` construction. `OpRecord` is `Copy`,
/// so the inline variant is a plain initialized array — no unsafe code —
/// and long transactions transparently spill to a `Vec`.
// The size gap between the variants is the point: keeping the array
// inline (not boxed) is what removes the per-transaction allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Eq)]
pub(crate) enum Ops {
    Inline {
        buf: [OpRecord; OPS_INLINE],
        len: u8,
    },
    Heap(Vec<OpRecord>),
}

impl Ops {
    /// Placeholder filling unused inline slots; never observable through
    /// `as_slice`.
    const EMPTY: OpRecord = OpRecord {
        op: Op::TryCommit,
        resp: None,
        inv_index: 0,
        resp_index: None,
    };

    /// A record holding a single operation.
    fn first(op: OpRecord) -> Self {
        let mut buf = [Self::EMPTY; OPS_INLINE];
        buf[0] = op;
        Ops::Inline { buf, len: 1 }
    }

    pub(crate) fn as_slice(&self) -> &[OpRecord] {
        match self {
            Ops::Inline { buf, len } => &buf[..*len as usize],
            Ops::Heap(v) => v,
        }
    }

    fn push(&mut self, op: OpRecord) {
        match self {
            Ops::Inline { buf, len } => {
                let l = *len as usize;
                if l < OPS_INLINE {
                    buf[l] = op;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * OPS_INLINE);
                    v.extend_from_slice(buf);
                    v.push(op);
                    *self = Ops::Heap(v);
                }
            }
            Ops::Heap(v) => v.push(op),
        }
    }

    fn last(&self) -> Option<&OpRecord> {
        self.as_slice().last()
    }

    fn last_mut(&mut self) -> Option<&mut OpRecord> {
        match self {
            Ops::Inline { buf, len } => (*len as usize).checked_sub(1).map(|l| &mut buf[l]),
            Ops::Heap(v) => v.last_mut(),
        }
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, OpRecord> {
        self.as_slice().iter()
    }
}

impl PartialEq for Ops {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A well-formed (possibly incomplete) transactional history.
///
/// Constructed with [`History::new`], which validates well-formedness, or
/// via [`HistoryBuilder`](crate::HistoryBuilder). Histories are immutable;
/// derived histories (prefixes, projections) are produced by methods.
///
/// # Examples
///
/// ```
/// use duop_history::{Event, History, ObjId, Op, Ret, TxnId, Value};
///
/// let t1 = TxnId::new(1);
/// let x = ObjId::new(0);
/// let h = History::new(vec![
///     Event::inv(t1, Op::Read(x)),
///     Event::resp(t1, Ret::Value(Value::INITIAL)),
///     Event::inv(t1, Op::TryCommit),
///     Event::resp(t1, Ret::Committed),
/// ])?;
/// assert!(h.is_complete());
/// assert!(h.txn(t1).unwrap().is_committed());
/// # Ok::<(), duop_history::MalformedHistoryError>(())
/// ```
#[derive(Clone, Debug)]
pub struct History {
    events: Vec<Event>,
    /// Transaction records in order of first appearance.
    recs: Vec<TxnRecord>,
    /// Transaction id → position in `recs`.
    index: TxnIndex,
}

/// Transaction id → record position, direct-mapped for the dense ids real
/// traces use.
///
/// `dense[id]` holds `position + 1` (0 marks absent), so the per-event
/// lookup in [`History::admit`] — the ingestion hot path — is one bounds
/// check and one array read instead of a hash probe. Ids too far beyond
/// the transaction count to justify table space (and the synthetic
/// [`TxnId::BASELINE`], `u32::MAX`) spill into a hash map, keeping the
/// table O(transaction count) even for adversarial id choices.
#[derive(Clone, Debug, Default)]
struct TxnIndex {
    dense: Vec<u32>,
    sparse: HashMap<TxnId, u32, BuildIdHash>,
}

impl TxnIndex {
    fn with_capacity(guess: usize) -> Self {
        TxnIndex {
            dense: Vec::with_capacity(guess.saturating_mul(2)),
            sparse: HashMap::with_hasher(BuildIdHash),
        }
    }

    fn get(&self, id: TxnId) -> Option<u32> {
        let i = id.index() as usize;
        if i < self.dense.len() {
            let v = self.dense[i];
            if v != 0 {
                return Some(v - 1);
            }
            // Fall through: the id may have spilled before the table grew
            // past it.
        }
        self.sparse.get(&id).copied()
    }

    /// Records `id -> pos`. `count` (the number of transactions seen so
    /// far) gates table growth so one huge id cannot force a huge table.
    fn insert(&mut self, id: TxnId, pos: u32, count: usize) {
        let i = id.index() as usize;
        if i < self.dense.len() {
            self.dense[i] = pos + 1;
        } else if i < 2 * (count + 16) {
            self.dense.resize(i + 1, 0);
            self.dense[i] = pos + 1;
        } else {
            self.sparse.insert(id, pos);
        }
    }
}

/// Multiplicative hasher for the transaction index. Ids are small dense
/// integers, so one `wrapping_mul` by a 64-bit odd constant spreads them
/// across the table far cheaper than the default SipHash — `History::new`
/// does one lookup per event and this is its hot path.
#[derive(Clone, Copy, Debug, Default)]
struct IdHash(u64);

impl std::hash::Hasher for IdHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback; the id types hash via `write_u32`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BuildIdHash;

impl std::hash::BuildHasher for BuildIdHash {
    type Hasher = IdHash;

    fn build_hasher(&self) -> IdHash {
        IdHash::default()
    }
}

impl PartialEq for History {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for History {}

impl Default for History {
    fn default() -> Self {
        History::empty()
    }
}

impl History {
    /// Creates the empty history.
    pub fn empty() -> Self {
        History {
            events: Vec::new(),
            recs: Vec::new(),
            index: TxnIndex::default(),
        }
    }

    /// Creates an empty history with internal tables pre-sized for
    /// `events` incoming [`push_checked`](History::push_checked) calls —
    /// the bulk-ingestion entry point for streaming decoders.
    pub fn with_event_capacity(events: usize) -> Self {
        // A transaction contributes at least four events (an operation and
        // `tryC`/`tryA`, each with a response); sizing for that avoids
        // rehashing during the single validation pass.
        let guess = events / 4 + 1;
        History {
            events: Vec::with_capacity(events),
            recs: Vec::with_capacity(guess),
            index: TxnIndex::with_capacity(guess),
        }
    }

    /// Validates `events` as a well-formed history.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] describing the first violation of
    /// well-formedness (see the error type for the rules enforced).
    pub fn new(events: Vec<Event>) -> Result<Self, MalformedHistoryError> {
        let mut h = History::with_event_capacity(events.len());
        h.events = Vec::new();
        for (index, ev) in events.iter().enumerate() {
            h.admit(index, ev)?;
        }
        h.events = events;
        Ok(h)
    }

    /// Appends one event in place, revalidating incrementally.
    ///
    /// Equivalent to [`History::extended`] with a single event, but O(1)
    /// amortized instead of re-validating the whole history — the
    /// difference between linear and quadratic ingestion for a streaming
    /// monitor.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] if the event does not extend the
    /// history to a well-formed one; the history is unchanged.
    #[inline(always)]
    pub fn push_checked(&mut self, event: Event) -> Result<(), MalformedHistoryError> {
        self.admit(self.events.len(), &event)?;
        self.events.push(event);
        Ok(())
    }

    /// Folds the event at position `index` into the transaction records,
    /// with every well-formedness check performed *before* any mutation so
    /// a rejected event leaves the records untouched.
    #[inline(always)]
    fn admit(&mut self, index: usize, ev: &Event) -> Result<(), MalformedHistoryError> {
        if ev.txn.is_initial() {
            return Err(MalformedHistoryError::ReservedInitialTxn { index });
        }
        let slot = match self.index.get(ev.txn) {
            Some(slot) => slot as usize,
            None => {
                // First event of the transaction.
                let EventKind::Inv(op) = ev.kind else {
                    return Err(MalformedHistoryError::ResponseWithoutInvocation {
                        index,
                        txn: ev.txn,
                    });
                };
                let slot = self.recs.len() as u32;
                self.index.insert(ev.txn, slot, self.recs.len());
                self.recs.push(TxnRecord {
                    id: ev.txn,
                    first: index,
                    last: index,
                    ops: Ops::first(OpRecord {
                        op,
                        resp: None,
                        inv_index: index,
                        resp_index: None,
                    }),
                    terminal: None,
                });
                return Ok(());
            }
        };
        let rec = &mut self.recs[slot];
        if rec.terminal.is_some() {
            return Err(MalformedHistoryError::EventAfterTermination { index, txn: ev.txn });
        }
        match ev.kind {
            EventKind::Inv(op) => {
                if rec.ops.last().is_some_and(|o| !o.is_complete()) {
                    return Err(MalformedHistoryError::OverlappingInvocation {
                        index,
                        txn: ev.txn,
                    });
                }
                if let Op::Read(x) = op {
                    if rec.ops.iter().any(|o| o.op == Op::Read(x)) {
                        return Err(MalformedHistoryError::RepeatedRead {
                            index,
                            txn: ev.txn,
                            obj: x,
                        });
                    }
                }
                rec.ops.push(OpRecord {
                    op,
                    resp: None,
                    inv_index: index,
                    resp_index: None,
                });
            }
            EventKind::Resp(ret) => {
                let Some(pending) = rec.ops.last_mut().filter(|o| !o.is_complete()) else {
                    return Err(MalformedHistoryError::ResponseWithoutInvocation {
                        index,
                        txn: ev.txn,
                    });
                };
                if !ret.matches(pending.op) {
                    return Err(MalformedHistoryError::MismatchedResponse {
                        index,
                        txn: ev.txn,
                        op: pending.op,
                        ret,
                    });
                }
                pending.resp = Some(ret);
                pending.resp_index = Some(index);
                if matches!(ret, Ret::Committed | Ret::Aborted) {
                    rec.terminal = Some(ret);
                }
            }
        }
        rec.last = index;
        Ok(())
    }

    /// The events of the history, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Human-readable label of the event at `index` (its [`Display`]
    /// rendering, e.g. `T1:R(X0)` or `T2->C`), or `None` if out of range.
    ///
    /// Used by diagnostics that anchor explanations to event spans.
    ///
    /// [`Display`]: fmt::Display
    pub fn event_label(&self, index: usize) -> Option<String> {
        self.events.get(index).map(|e| e.to_string())
    }

    /// Returns `true` if the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The prefix `H^n` consisting of the first `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> History {
        assert!(
            n <= self.len(),
            "prefix length {n} exceeds history length {}",
            self.len()
        );
        // A prefix of a well-formed history is well-formed.
        History::new(self.events[..n].to_vec())
            .expect("prefix of a well-formed history is well-formed")
    }

    /// Transaction identifiers in `txns(H)`, ordered by first appearance.
    pub fn txn_ids(&self) -> impl ExactSizeIterator<Item = TxnId> + '_ {
        self.recs.iter().map(|r| r.id)
    }

    /// Number of participating transactions.
    pub fn txn_count(&self) -> usize {
        self.recs.len()
    }

    /// The record of `txn`, if it participates.
    fn rec(&self, txn: TxnId) -> Option<&TxnRecord> {
        self.index.get(txn).map(|slot| &self.recs[slot as usize])
    }

    /// Returns `true` if `T_k` participates in `H` (i.e. `H|k` is
    /// non-empty).
    pub fn participates(&self, txn: TxnId) -> bool {
        self.index.get(txn).is_some()
    }

    /// A view of transaction `txn`, or `None` if it does not participate.
    pub fn txn(&self, txn: TxnId) -> Option<TxnView<'_>> {
        self.rec(txn).map(|rec| TxnView { history: self, rec })
    }

    /// Views of all participating transactions, ordered by first appearance.
    pub fn txns(&self) -> impl Iterator<Item = TxnView<'_>> {
        self.recs
            .iter()
            .map(move |rec| TxnView { history: self, rec })
    }

    /// Returns `true` if every transaction in `txns(H)` is complete
    /// (each `H|k` ends with a response event).
    pub fn is_complete(&self) -> bool {
        self.txns().all(|t| t.is_complete())
    }

    /// Returns `true` if every transaction in `txns(H)` is t-complete
    /// (each `H|k` ends with `A_k` or `C_k`).
    pub fn is_t_complete(&self) -> bool {
        self.txns().all(|t| t.is_t_complete())
    }

    /// Returns `true` if every invocation is either the last event or is
    /// immediately followed by its matching response.
    pub fn is_sequential(&self) -> bool {
        for (i, ev) in self.events.iter().enumerate() {
            if let EventKind::Inv(_) = ev.kind {
                if i + 1 == self.events.len() {
                    continue;
                }
                let next = &self.events[i + 1];
                if next.txn != ev.txn || !next.kind.is_resp() {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if no two transactions overlap: for every pair, one
    /// precedes the other in real-time order.
    pub fn is_t_sequential(&self) -> bool {
        // Transactions sorted by first event; each must end (t-complete)
        // before the next begins.
        let mut prev_last: Option<(usize, bool)> = None;
        for rec in &self.recs {
            if let Some((last, t_complete)) = prev_last {
                if !(t_complete && last < rec.first) {
                    return false;
                }
            }
            prev_last = Some((rec.last, rec.terminal.is_some()));
        }
        true
    }

    /// Returns `true` if `H` and `other` are *equivalent*:
    /// `txns(H) = txns(H')` and `H|k = H'|k` for every transaction.
    pub fn equivalent(&self, other: &History) -> bool {
        if self.recs.len() != other.recs.len() {
            return false;
        }
        self.recs
            .iter()
            .all(|r| other.participates(r.id) && self.events_of(r.id).eq(other.events_of(r.id)))
    }

    /// The subsequence `H|k` of events of transaction `txn`.
    pub fn events_of(&self, txn: TxnId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.txn == txn)
    }

    /// The subsequence of `H` consisting of events whose transaction
    /// satisfies `keep`.
    ///
    /// Used to build committed projections and the local serializations
    /// `S^{k,X}_H` of Definition 3.
    pub fn filter_txns(&self, mut keep: impl FnMut(TxnId) -> bool) -> History {
        let events = self
            .events
            .iter()
            .filter(|e| keep(e.txn))
            .copied()
            .collect();
        History::new(events)
            .expect("transaction-projection of a well-formed history is well-formed")
    }

    /// Real-time order on transactions: `T_k ≺RT T_m` iff `T_k` is
    /// t-complete in `H` and its last event precedes the first event of
    /// `T_m`.
    ///
    /// Returns `false` if either transaction does not participate.
    pub fn precedes_rt(&self, k: TxnId, m: TxnId) -> bool {
        let (Some(a), Some(b)) = (self.rec(k), self.rec(m)) else {
            return false;
        };
        a.terminal.is_some() && a.last < b.first
    }

    /// Returns `true` if `T_k` and `T_m` overlap (neither precedes the
    /// other in real-time order).
    pub fn overlaps(&self, k: TxnId, m: TxnId) -> bool {
        self.participates(k)
            && self.participates(m)
            && k != m
            && !self.precedes_rt(k, m)
            && !self.precedes_rt(m, k)
    }

    /// Index of the response event of `read_k(X)`, if that read is complete.
    ///
    /// Used to form the prefix `H^{k,X}` of Definition 3.
    pub fn read_resp_index(&self, txn: TxnId, obj: ObjId) -> Option<usize> {
        let rec = self.rec(txn)?;
        rec.ops
            .iter()
            .find(|o| o.op == Op::Read(obj))
            .and_then(|o| o.resp_index)
    }

    /// Index of the invocation of `tryC_k()`, if the transaction invoked it.
    pub fn try_commit_inv_index(&self, txn: TxnId) -> Option<usize> {
        let rec = self.rec(txn)?;
        rec.ops
            .iter()
            .find(|o| o.op == Op::TryCommit)
            .map(|o| o.inv_index)
    }

    /// Appends `events` to a copy of this history, revalidating.
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistoryError`] if the extension is not
    /// well-formed.
    pub fn extended(
        &self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<History, MalformedHistoryError> {
        let mut all = self.events.clone();
        all.extend(events);
        History::new(all)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "(empty history)");
        }
        let mut first = true;
        for ev in &self.events {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{ev}")?;
            first = false;
        }
        Ok(())
    }
}

impl serde::Serialize for History {
    fn to_content(&self) -> serde::Content {
        serde::Serialize::to_content(&self.events)
    }
}

impl serde::Deserialize for History {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let events = <Vec<Event> as serde::Deserialize>::from_content(content)?;
        History::new(events).map_err(serde::de::Error::custom)
    }
}

/// A read-only view of one transaction inside a [`History`].
#[derive(Clone, Copy)]
pub struct TxnView<'a> {
    history: &'a History,
    rec: &'a TxnRecord,
}

impl fmt::Debug for TxnView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnView")
            .field("id", &self.rec.id)
            .field("ops", &self.rec.ops)
            .field("terminal", &self.rec.terminal)
            .finish()
    }
}

impl<'a> TxnView<'a> {
    /// The transaction identifier.
    pub fn id(&self) -> TxnId {
        self.rec.id
    }

    /// The t-operations of the transaction in program order.
    pub fn ops(&self) -> &'a [OpRecord] {
        self.rec.ops.as_slice()
    }

    /// Index of the transaction's first event in the history.
    pub fn first_event_index(&self) -> usize {
        self.rec.first
    }

    /// Index of the transaction's last event in the history.
    pub fn last_event_index(&self) -> usize {
        self.rec.last
    }

    /// Returns `true` if `H|k` ends with a response event.
    pub fn is_complete(&self) -> bool {
        self.rec.is_complete()
    }

    /// Returns `true` if `H|k` ends with `A_k` or `C_k`.
    pub fn is_t_complete(&self) -> bool {
        self.rec.terminal.is_some()
    }

    /// Returns `true` if the transaction committed (`C_k` in `H`).
    pub fn is_committed(&self) -> bool {
        self.rec.terminal == Some(Ret::Committed)
    }

    /// Returns `true` if the transaction aborted (`A_k` in `H`).
    pub fn is_aborted(&self) -> bool {
        self.rec.terminal == Some(Ret::Aborted)
    }

    /// How this transaction may terminate across completions
    /// (Definition 2).
    pub fn commit_capability(&self) -> CommitCapability {
        match self.rec.terminal {
            Some(Ret::Committed) => CommitCapability::Committed,
            Some(_) => CommitCapability::NeverCommitted,
            None => {
                let pending_try_commit = self
                    .rec
                    .ops
                    .last()
                    .is_some_and(|o| !o.is_complete() && o.op.is_try_commit());
                if pending_try_commit {
                    CommitCapability::CommitPending
                } else {
                    CommitCapability::NeverCommitted
                }
            }
        }
    }

    /// The read set `Rset(T_k)`: t-objects read by the transaction.
    ///
    /// Includes only reads whose invocation appears, whether or not a
    /// response arrived.
    pub fn read_set(&self) -> Vec<ObjId> {
        let mut objs: Vec<ObjId> = self
            .rec
            .ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Read(x) => Some(x),
                _ => None,
            })
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// The write set `Wset(T_k)`: t-objects written by the transaction.
    pub fn write_set(&self) -> Vec<ObjId> {
        let mut objs: Vec<ObjId> = self
            .rec
            .ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Write(x, _) => Some(x),
                _ => None,
            })
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// The value of the transaction's last write to `obj`, if any.
    pub fn last_write_to(&self, obj: ObjId) -> Option<Value> {
        self.rec.ops.iter().rev().find_map(|o| match o.op {
            Op::Write(x, v) if x == obj => Some(v),
            _ => None,
        })
    }

    /// The value returned by this transaction's read of `obj`, if the read
    /// completed with a value.
    pub fn read_value(&self, obj: ObjId) -> Option<Value> {
        self.rec
            .ops
            .iter()
            .find(|o| o.op == Op::Read(obj))
            .and_then(OpRecord::read_value)
    }

    /// Returns `true` if the transaction invoked `tryC_k()` in `H`.
    pub fn has_try_commit_inv(&self) -> bool {
        self.rec.ops.iter().any(|o| o.op.is_try_commit())
    }

    /// The events `H|k` of this transaction.
    pub fn events(&self) -> impl Iterator<Item = &'a Event> {
        let id = self.rec.id;
        self.history.events.iter().filter(move |e| e.txn == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn empty_history() {
        let h = History::empty();
        assert!(h.is_empty());
        assert!(h.is_complete());
        assert!(h.is_t_complete());
        assert!(h.is_sequential());
        assert!(h.is_t_sequential());
        assert_eq!(h.txn_count(), 0);
    }

    #[test]
    fn rejects_initial_txn() {
        let err = History::new(vec![Event::inv(TxnId::INITIAL, Op::TryCommit)]).unwrap_err();
        assert_eq!(err, MalformedHistoryError::ReservedInitialTxn { index: 0 });
    }

    #[test]
    fn rejects_response_without_invocation() {
        let err = History::new(vec![Event::resp(t(1), Ret::Ok)]).unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::ResponseWithoutInvocation { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_overlapping_invocations_within_txn() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(1), Op::TryCommit),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::OverlappingInvocation { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_mismatched_response() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::MismatchedResponse { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_event_after_commit() {
        let err = History::new(vec![
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
            Event::inv(t(1), Op::Read(x())),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::EventAfterTermination { index: 2, .. }
        ));
    }

    #[test]
    fn rejects_repeated_read() {
        let err = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::Read(x())),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            MalformedHistoryError::RepeatedRead { index: 2, .. }
        ));
    }

    #[test]
    fn abort_response_on_read_terminates_txn() {
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Aborted),
        ])
        .unwrap();
        let view = h.txn(t(1)).unwrap();
        assert!(view.is_aborted());
        assert!(view.is_t_complete());
        assert_eq!(view.commit_capability(), CommitCapability::NeverCommitted);
    }

    #[test]
    fn commit_capability_cases() {
        // Committed.
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::Committed
        );

        // Pending tryC.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
        ])
        .unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::CommitPending
        );

        // Complete but never tried to commit.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::NeverCommitted
        );

        // Incomplete read: completion aborts it.
        let h = History::new(vec![Event::inv(t(1), Op::Read(x()))]).unwrap();
        assert_eq!(
            h.txn(t(1)).unwrap().commit_capability(),
            CommitCapability::NeverCommitted
        );
    }

    #[test]
    fn real_time_order_requires_t_completion() {
        // T1 completes its write but never terminates before T2 starts:
        // not RT-ordered.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(!h.precedes_rt(t(1), t(2)));
        assert!(h.overlaps(t(1), t(2)));

        // With a commit in between they are RT-ordered.
        let h = History::new(vec![
            Event::inv(t(1), Op::Write(x(), v(1))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(1))),
        ])
        .unwrap();
        assert!(h.precedes_rt(t(1), t(2)));
        assert!(!h.overlaps(t(1), t(2)));
    }

    #[test]
    fn sequential_and_t_sequential() {
        let seq = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        assert!(seq.is_sequential());
        assert!(seq.is_t_sequential());

        // Interleaved invocations: sequential fails.
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(!h.is_sequential());
        assert!(!h.is_t_sequential());
    }

    #[test]
    fn sequential_but_not_t_sequential() {
        // Operations never interleave, but transactions do.
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
        ])
        .unwrap();
        assert!(h.is_sequential());
        assert!(!h.is_t_sequential());
    }

    #[test]
    fn equivalence_ignores_interleaving() {
        let a = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        let b = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(2), Op::Read(x())),
            Event::resp(t(2), Ret::Value(v(0))),
        ])
        .unwrap();
        assert!(a.equivalent(&b));
        assert!(b.equivalent(&a));

        let c = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(1))),
        ])
        .unwrap();
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn prefix_is_well_formed_and_shorter() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let p = h.prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.events(), &h.events()[..3]);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn prefix_out_of_range_panics() {
        History::empty().prefix(1);
    }

    #[test]
    fn read_and_write_sets() {
        let y = ObjId::new(1);
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::Write(y, v(5))),
            Event::resp(t(1), Ret::Ok),
            Event::inv(t(1), Op::Write(y, v(6))),
            Event::resp(t(1), Ret::Ok),
        ])
        .unwrap();
        let view = h.txn(t(1)).unwrap();
        assert_eq!(view.read_set(), vec![x()]);
        assert_eq!(view.write_set(), vec![y]);
        assert_eq!(view.last_write_to(y), Some(v(6)));
        assert_eq!(view.last_write_to(x()), None);
        assert_eq!(view.read_value(x()), Some(v(0)));
    }

    #[test]
    fn filter_txns_projects() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build();
        let only1 = h.filter_txns(|id| id == t(1));
        assert_eq!(only1.txn_count(), 1);
        assert!(only1.participates(t(1)));
        assert!(!only1.participates(t(2)));
    }

    #[test]
    fn event_labels_render_events() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        assert_eq!(h.event_label(0).as_deref(), Some("T1:W(X0,1)"));
        assert_eq!(h.event_label(3).as_deref(), Some("T1->C"));
        assert_eq!(h.event_label(99), None);
    }

    #[test]
    fn indices_for_definition3() {
        let h = History::new(vec![
            Event::inv(t(1), Op::Read(x())),
            Event::resp(t(1), Ret::Value(v(0))),
            Event::inv(t(1), Op::TryCommit),
            Event::resp(t(1), Ret::Committed),
        ])
        .unwrap();
        assert_eq!(h.read_resp_index(t(1), x()), Some(1));
        assert_eq!(h.try_commit_inv_index(t(1)), Some(2));
        assert_eq!(h.read_resp_index(t(1), ObjId::new(9)), None);
        assert_eq!(h.try_commit_inv_index(t(9)), None);
    }

    #[test]
    fn serde_roundtrip_validates() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);

        // Malformed event lists fail to deserialize as a History.
        let bad = serde_json::to_string(&vec![Event::resp(t(1), Ret::Ok)]).unwrap();
        assert!(serde_json::from_str::<History>(&bad).is_err());
    }

    #[test]
    fn extended_appends_and_validates() {
        let h = History::new(vec![Event::inv(t(1), Op::TryCommit)]).unwrap();
        let h2 = h.extended([Event::resp(t(1), Ret::Committed)]).unwrap();
        assert_eq!(h2.len(), 2);
        assert!(h2.txn(t(1)).unwrap().is_committed());
        assert!(h2.extended([Event::inv(t(1), Op::TryCommit)]).is_err());
    }
}
