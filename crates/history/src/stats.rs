//! Summary statistics of a history.

use crate::{History, Op, Ret};
use std::fmt;

/// Aggregate counts describing a history, computed by
/// [`History::stats`].
///
/// # Examples
///
/// ```
/// use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
///
/// let h = HistoryBuilder::new()
///     .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
///     .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
///     .build();
/// let s = h.stats();
/// assert_eq!(s.transactions, 2);
/// assert_eq!(s.committed, 2);
/// assert_eq!(s.reads, 1);
/// assert_eq!(s.writes, 1);
/// assert_eq!(s.objects, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Total events.
    pub events: usize,
    /// Participating transactions.
    pub transactions: usize,
    /// Transactions ending in `C_k`.
    pub committed: usize,
    /// Transactions ending in `A_k`.
    pub aborted: usize,
    /// Transactions that are not t-complete.
    pub unresolved: usize,
    /// Completed read operations returning a value.
    pub reads: usize,
    /// Completed write operations.
    pub writes: usize,
    /// Distinct t-objects accessed.
    pub objects: usize,
}

impl fmt::Display for HistoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} transactions ({} committed, {} aborted, {} unresolved), {} reads, {} writes over {} objects",
            self.events,
            self.transactions,
            self.committed,
            self.aborted,
            self.unresolved,
            self.reads,
            self.writes,
            self.objects,
        )
    }
}

impl History {
    /// Computes summary statistics for this history.
    pub fn stats(&self) -> HistoryStats {
        let mut stats = HistoryStats {
            events: self.len(),
            transactions: self.txn_count(),
            ..HistoryStats::default()
        };
        let mut objects = std::collections::HashSet::new();
        for txn in self.txns() {
            if txn.is_committed() {
                stats.committed += 1;
            } else if txn.is_aborted() {
                stats.aborted += 1;
            } else {
                stats.unresolved += 1;
            }
            for op in txn.ops() {
                if let Some(x) = op.op.obj() {
                    objects.insert(x);
                }
                match (op.op, op.resp) {
                    (Op::Read(_), Some(Ret::Value(_))) => stats.reads += 1,
                    (Op::Write(_, _), Some(Ret::Ok)) => stats.writes += 1,
                    _ => {}
                }
            }
        }
        stats.objects = objects.len();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }

    #[test]
    fn empty_history_stats() {
        let s = History::empty().stats();
        assert_eq!(s, HistoryStats::default());
        assert!(s.to_string().contains("0 events"));
    }

    #[test]
    fn counts_cover_every_outcome() {
        let (x, y) = (ObjId::new(0), ObjId::new(1));
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x, Value::new(1))
            .write(t(2), y, Value::new(2))
            .commit_aborted(t(2))
            .inv_read(t(3), x)
            .build();
        let s = h.stats();
        assert_eq!(s.events, h.len());
        assert_eq!(s.transactions, 3);
        assert_eq!(s.committed, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.reads, 0, "the pending read has no value");
        assert_eq!(s.writes, 2);
        assert_eq!(s.objects, 2);
    }

    #[test]
    fn display_is_complete() {
        let h = HistoryBuilder::new()
            .committed_reader(t(1), ObjId::new(0), Value::INITIAL)
            .build();
        let text = h.stats().to_string();
        for needle in ["1 committed", "1 reads", "1 objects"] {
            assert!(text.contains(needle), "missing `{needle}` in `{text}`");
        }
    }
}
