//! Legality of t-sequential histories (Section 2).
//!
//! In a t-sequential history, `read_k(X)` is *legal* if it returns the
//! latest written value of `X`: the transaction's own latest preceding
//! write to `X` if there is one, and otherwise the latest write to `X` of a
//! committed transaction that precedes `T_k`. By the `T_0` convention, the
//! latter defaults to [`Value::INITIAL`].

use crate::{History, ObjId, Op, Ret, TxnId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a t-sequential history is not legal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LegalityError {
    /// The history is not t-sequential, so legality is undefined.
    NotTSequential,
    /// A read returned something other than the latest written value.
    IllegalRead {
        /// The reading transaction.
        txn: TxnId,
        /// The t-object read.
        obj: ObjId,
        /// The value the read returned.
        got: Value,
        /// The latest written value at that point.
        expected: Value,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::NotTSequential => {
                write!(f, "history is not t-sequential")
            }
            LegalityError::IllegalRead {
                txn,
                obj,
                got,
                expected,
            } => {
                write!(
                    f,
                    "illegal read: {txn} read {got} from {obj} but the latest written value is {expected}"
                )
            }
        }
    }
}

impl Error for LegalityError {}

impl History {
    /// Checks legality of a t-sequential history.
    ///
    /// Every `read_k(X)` that does not return `A_k` must return the latest
    /// written value of `X` at its position. Reads that return `A_k` are
    /// exempt. Only writes of *committed* transactions become visible to
    /// later transactions.
    ///
    /// # Errors
    ///
    /// Returns [`LegalityError::NotTSequential`] if transactions overlap,
    /// or [`LegalityError::IllegalRead`] describing the first illegal read.
    pub fn check_legal(&self) -> Result<(), LegalityError> {
        if !self.is_t_sequential() {
            return Err(LegalityError::NotTSequential);
        }
        let mut committed: HashMap<ObjId, Value> = HashMap::new();
        for txn in self.txns() {
            let mut local: HashMap<ObjId, Value> = HashMap::new();
            for op in txn.ops() {
                match (op.op, op.resp) {
                    (Op::Read(x), Some(Ret::Value(got))) => {
                        let expected = local
                            .get(&x)
                            .or_else(|| committed.get(&x))
                            .copied()
                            .unwrap_or(Value::INITIAL);
                        if got != expected {
                            return Err(LegalityError::IllegalRead {
                                txn: txn.id(),
                                obj: x,
                                got,
                                expected,
                            });
                        }
                    }
                    (Op::Write(x, v), Some(Ret::Ok)) => {
                        local.insert(x, v);
                    }
                    _ => {}
                }
            }
            if txn.is_committed() {
                committed.extend(local);
            }
        }
        Ok(())
    }

    /// Returns `true` if the t-sequential history is legal.
    ///
    /// Convenience wrapper around [`check_legal`](Self::check_legal);
    /// returns `false` for non-t-sequential histories.
    pub fn is_legal(&self) -> bool {
        self.check_legal().is_ok()
    }

    /// The latest written value of `obj` visible *after* all transactions of
    /// a t-sequential history have run: the last committed write, or
    /// [`Value::INITIAL`].
    ///
    /// Useful for asserting final states in tests of STM engines.
    pub fn final_committed_value(&self, obj: ObjId) -> Value {
        let mut value = Value::INITIAL;
        for txn in self.txns() {
            if txn.is_committed() {
                if let Some(v) = txn.last_write_to(obj) {
                    value = v;
                }
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn initial_value_read_is_legal() {
        let h = HistoryBuilder::new()
            .committed_reader(t(1), x(), v(0))
            .build();
        assert!(h.is_legal());
    }

    #[test]
    fn read_from_committed_writer_is_legal() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .committed_reader(t(2), x(), v(5))
            .build();
        assert_eq!(h.check_legal(), Ok(()));
    }

    #[test]
    fn stale_read_is_illegal() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .committed_reader(t(2), x(), v(0))
            .build();
        assert_eq!(
            h.check_legal(),
            Err(LegalityError::IllegalRead {
                txn: t(2),
                obj: x(),
                got: v(0),
                expected: v(5),
            })
        );
    }

    #[test]
    fn aborted_writers_are_invisible() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(5))
            .commit_aborted(t(1))
            .committed_reader(t(2), x(), v(0))
            .build();
        assert!(h.is_legal());
    }

    #[test]
    fn own_writes_shadow_committed_state() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .write(t(2), x(), v(7))
            .read(t(2), x(), v(7))
            .commit(t(2))
            .build();
        assert!(h.is_legal());
    }

    #[test]
    fn own_write_must_be_latest() {
        let h = HistoryBuilder::new()
            .write(t(1), x(), v(1))
            .write(t(1), x(), v(2))
            .read(t(1), x(), v(1))
            .commit(t(1))
            .build();
        assert_eq!(
            h.check_legal(),
            Err(LegalityError::IllegalRead {
                txn: t(1),
                obj: x(),
                got: v(1),
                expected: v(2),
            })
        );
    }

    #[test]
    fn aborted_reads_are_exempt() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .inv_read(t(2), x())
            .resp_aborted(t(2))
            .build();
        assert!(h.is_legal());
    }

    #[test]
    fn non_t_sequential_rejected() {
        let h = HistoryBuilder::new()
            .inv_read(t(1), x())
            .inv_read(t(2), x())
            .resp_value(t(1), v(0))
            .resp_value(t(2), v(0))
            .build();
        assert_eq!(h.check_legal(), Err(LegalityError::NotTSequential));
        assert!(!h.is_legal());
    }

    #[test]
    fn aborted_transactions_still_read_committed_state() {
        // T2 aborts but its read must still see T1's committed value.
        let legal = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .read(t(2), x(), v(5))
            .commit_aborted(t(2))
            .build();
        assert!(legal.is_legal());

        let illegal = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .read(t(2), x(), v(0))
            .commit_aborted(t(2))
            .build();
        assert!(!illegal.is_legal());
    }

    #[test]
    fn final_committed_value_tracks_last_committed_write() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(5))
            .write(t(2), x(), v(9))
            .commit_aborted(t(2))
            .committed_writer(t(3), x(), v(7))
            .build();
        assert_eq!(h.final_committed_value(x()), v(7));
        assert_eq!(h.final_committed_value(ObjId::new(4)), Value::INITIAL);
    }
}
