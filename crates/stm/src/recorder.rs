//! Global history recording for multi-threaded STM runs.

use duop_history::{Event, History, Op, Ret, TxnId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// A thread-safe event recorder establishing the global total order of
/// invocation and response events.
///
/// Engines record each operation's invocation *before* doing any work and
/// its response *after* the work is done, so every operation's effect falls
/// between its two events — exactly the real-time semantics the history
/// model assigns to t-operations.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
    next_txn: AtomicU32,
}

impl Recorder {
    /// Creates an empty recorder. Transaction ids start at 1 (`T_0` is the
    /// model's imaginary initializer).
    pub fn new() -> Self {
        Recorder {
            events: Mutex::new(Vec::new()),
            next_txn: AtomicU32::new(1),
        }
    }

    /// Allocates a fresh transaction identifier.
    pub fn begin_txn(&self) -> TxnId {
        TxnId::new(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// The identifier the next [`begin_txn`](Recorder::begin_txn) call will
    /// allocate. Exact on a single thread; under concurrency another thread
    /// may claim it first (callers using it for deterministic decisions run
    /// single-threaded).
    pub fn peek_next_txn(&self) -> TxnId {
        TxnId::new(self.next_txn.load(Ordering::Relaxed))
    }

    /// Records an invocation event.
    pub fn invoke(&self, txn: TxnId, op: Op) {
        self.events.lock().push(Event::inv(txn, op));
    }

    /// Records a response event.
    pub fn respond(&self, txn: TxnId, ret: Ret) {
        self.events.lock().push(Event::resp(txn, ret));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the recorded history, validating well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if an engine recorded a malformed event sequence — that is an
    /// engine bug, not a user error.
    pub fn into_history(self) -> History {
        History::new(self.events.into_inner()).expect("engines record well-formed histories")
    }

    /// Clones the events recorded so far into a history (for observing a
    /// run in progress; per-transaction subsequences are well-formed, but a
    /// concurrent writer may be between its invocation and response).
    pub fn snapshot(&self) -> History {
        History::new(self.events.lock().clone()).expect("engines record well-formed histories")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{ObjId, Value};

    #[test]
    fn allocates_distinct_ids_from_one() {
        let r = Recorder::new();
        let a = r.begin_txn();
        let b = r.begin_txn();
        assert_eq!(a, TxnId::new(1));
        assert_eq!(b, TxnId::new(2));
    }

    #[test]
    fn records_in_order() {
        let r = Recorder::new();
        let t = r.begin_txn();
        r.invoke(t, Op::Write(ObjId::new(0), Value::new(1)));
        r.respond(t, Ret::Ok);
        r.invoke(t, Op::TryCommit);
        r.respond(t, Ret::Committed);
        assert_eq!(r.len(), 4);
        let h = r.into_history();
        assert!(h.txn(t).unwrap().is_committed());
    }

    #[test]
    fn concurrent_recording_is_well_formed() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let t = r.begin_txn();
                        r.invoke(t, Op::Write(ObjId::new(0), Value::new(1)));
                        r.respond(t, Ret::Ok);
                        r.invoke(t, Op::TryCommit);
                        r.respond(t, Ret::Committed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(r).unwrap().into_history();
        assert_eq!(history.txn_count(), 200);
        assert!(history.is_t_complete());
    }

    #[test]
    fn snapshot_observes_partial_run() {
        let r = Recorder::new();
        let t = r.begin_txn();
        r.invoke(t, Op::TryCommit);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(!snap.txn(t).unwrap().is_complete());
    }
}
