//! Deterministic fault injection for the STM engines.
//!
//! A [`FaultPlan`] describes, as per-decision probabilities, three kinds of
//! faults an engine can suffer at its injection points:
//!
//! * **forced aborts** — the engine kills the transaction at the chosen
//!   step, recording the abort response exactly as a genuine conflict
//!   would;
//! * **crashes** — the transaction (and, with `thread-crash`, the whole
//!   worker thread) stops mid-flight. No further events are recorded, so
//!   the history keeps a pending operation or a commit-pending `tryC`; the
//!   engine still performs its internal cleanup (releasing locks, rolling
//!   back in-place writes) *silently*, modelling a crashed client whose TM
//!   runtime recovers the shared store;
//! * **delays** — the OS thread yields at the injection point, perturbing
//!   the scheduler to widen race windows.
//!
//! Every decision is a pure function of `(seed, transaction id, injection
//! point, per-transaction step counter)` — no RNG state is threaded through
//! the engines — so a run with a fixed workload seed and a fixed fault seed
//! replays the same fault schedule, which is what lets `duop fuzz` shrink
//! and re-report findings deterministically.
//!
//! [`FaultPlan::none`] is the identity plan: every hook exits on a single
//! branch, keeping the injection layer's overhead on the fault-free hot
//! path negligible (measured by `benches/fault_overhead.rs`).

use std::error::Error;
use std::fmt;

use duop_history::TxnId;

/// One decision per million: probabilities are stored in parts-per-million
/// so fault decisions need no floating point on the hot path.
const PPM: u64 = 1_000_000;

/// Injection points inside a transaction attempt.
///
/// `Read` and `Write` fire after the operation's invocation has been
/// recorded but before the engine touches shared state; the commit-phase
/// points fire after the `tryC` invocation, between the engine's commit
/// sub-phases (which subset of them exists depends on the engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Before a read operation accesses the store.
    Read,
    /// Before a write operation takes effect.
    Write,
    /// During commit, before locks or ownership are acquired.
    LockAcquire,
    /// During commit, before read-set validation.
    Validate,
    /// During commit, before write-back / publication.
    WriteBack,
}

impl FaultPoint {
    fn salt(self) -> u64 {
        match self {
            FaultPoint::Read => 1,
            FaultPoint::Write => 2,
            FaultPoint::LockAcquire => 3,
            FaultPoint::Validate => 4,
            FaultPoint::WriteBack => 5,
        }
    }
}

/// A fault an injection point must act on (delays are applied internally
/// by [`FaultSession::fault`] and never surface here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Kill the transaction through the engine's ordinary abort path.
    Abort,
    /// Stop the transaction mid-flight: clean up shared state silently and
    /// record no further events.
    Crash,
}

/// A malformed `--faults` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl Error for FaultSpecError {}

/// A seeded, deterministic fault schedule.
///
/// # Examples
///
/// ```
/// use duop_stm::FaultPlan;
///
/// let plan = FaultPlan::parse("abort=0.1,crash=0.05,delay=0.2").unwrap().with_seed(42);
/// assert!(!plan.is_none());
/// assert!(FaultPlan::none().is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    abort_ppm: u32,
    crash_ppm: u32,
    delay_ppm: u32,
    /// Probability that a crash takes the whole worker thread down with it.
    thread_crash_ppm: u32,
}

/// The identity plan, usable as a `&'static` default.
pub(crate) static NO_FAULTS: FaultPlan = FaultPlan::none();

impl FaultPlan {
    /// The plan that injects nothing.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            abort_ppm: 0,
            crash_ppm: 0,
            delay_ppm: 0,
            thread_crash_ppm: 0,
        }
    }

    /// Returns `true` if this plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.abort_ppm == 0 && self.crash_ppm == 0 && self.delay_ppm == 0
    }

    /// Parses a specification of the form
    /// `abort=0.05,crash=0.02,delay=0.1,thread-crash=0.5`.
    ///
    /// Every key is optional; each value is a probability in `[0, 1]`
    /// applied independently at every injection point (`thread-crash` is
    /// conditional on a crash having fired). The seed defaults to 0; set it
    /// with [`with_seed`](FaultPlan::with_seed).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on unknown keys, missing `=`, values
    /// outside `[0, 1]` or unparsable numbers.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{part}` is not of the form key=prob")))?;
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| FaultSpecError(format!("`{value}` is not a number")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultSpecError(format!(
                    "probability `{value}` is outside [0, 1]"
                )));
            }
            let ppm = (p * PPM as f64).round() as u32;
            match key.trim() {
                "abort" => plan.abort_ppm = ppm,
                "crash" => plan.crash_ppm = ppm,
                "delay" => plan.delay_ppm = ppm,
                "thread-crash" => plan.thread_crash_ppm = ppm,
                other => {
                    return Err(FaultSpecError(format!(
                    "unknown fault kind `{other}` (expected abort, crash, delay or thread-crash)"
                )))
                }
            }
        }
        Ok(plan)
    }

    /// Returns this plan with the given fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides whether the crash that just hit transaction `txn` also kills
    /// its worker thread. Deterministic in `(seed, txn)`.
    pub fn crash_kills_thread(&self, txn: TxnId) -> bool {
        draw(mix(self.seed, txn.index() as u64, 6, 0)) < self.thread_crash_ppm
    }
}

/// Per-attempt injection state: a step counter over the transaction's
/// injection points plus the crash latch the engine's cleanup consults.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    txn: u64,
    step: u64,
    crashed: bool,
}

impl FaultSession {
    /// Opens a session for one attempt of transaction `txn`.
    pub fn new(plan: &FaultPlan, txn: TxnId) -> Self {
        FaultSession {
            plan: *plan,
            txn: txn.index() as u64,
            step: 0,
            crashed: false,
        }
    }

    /// Decides the fault at `point`, advancing the step counter.
    ///
    /// Delays are applied in place (the thread yields) and return `None`;
    /// `Some(InjectedFault::Crash)` additionally latches
    /// [`crashed`](FaultSession::crashed) so the engine's epilogue can tell
    /// a crash from an ordinary abort.
    pub fn fault(&mut self, point: FaultPoint) -> Option<InjectedFault> {
        if self.plan.is_none() || self.crashed {
            return None;
        }
        let step = self.step;
        self.step += 1;
        let roll = draw(mix(self.plan.seed, self.txn, point.salt(), step));
        if roll < self.plan.crash_ppm {
            self.crashed = true;
            return Some(InjectedFault::Crash);
        }
        let roll = roll - self.plan.crash_ppm;
        if roll < self.plan.abort_ppm {
            return Some(InjectedFault::Abort);
        }
        let roll = roll - self.plan.abort_ppm;
        if roll < self.plan.delay_ppm {
            std::thread::yield_now();
        }
        None
    }

    /// Returns `true` once a crash has been injected into this attempt.
    pub fn crashed(&self) -> bool {
        self.crashed
    }
}

/// Maps a 64-bit hash to a uniform draw in `[0, PPM)`.
fn draw(h: u64) -> u32 {
    (h % PPM) as u32
}

/// SplitMix64-style finalizer over the decision coordinates.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut session = FaultSession::new(&FaultPlan::none(), TxnId::new(1));
        for _ in 0..1000 {
            assert_eq!(session.fault(FaultPoint::Read), None);
        }
        assert!(!session.crashed());
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("abort=0.05, crash=0.02,delay=0.1,thread-crash=1").unwrap();
        assert_eq!(plan.abort_ppm, 50_000);
        assert_eq!(plan.crash_ppm, 20_000);
        assert_eq!(plan.delay_ppm, 100_000);
        assert_eq!(plan.thread_crash_ppm, 1_000_000);
        assert!(!plan.is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("abort").is_err());
        assert!(FaultPlan::parse("abort=nan-ish").is_err());
        assert!(FaultPlan::parse("abort=1.5").is_err());
        assert!(FaultPlan::parse("abort=-0.1").is_err());
        assert!(FaultPlan::parse("explode=0.5").is_err());
    }

    #[test]
    fn empty_spec_is_identity() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::parse("abort=0.3,crash=0.2")
            .unwrap()
            .with_seed(7);
        let run = |_: ()| -> Vec<Option<InjectedFault>> {
            let mut s = FaultSession::new(&plan, TxnId::new(5));
            (0..64).map(|_| s.fault(FaultPoint::Write)).collect()
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn certain_crash_fires_once_and_latches() {
        let plan = FaultPlan::parse("crash=1").unwrap();
        let mut s = FaultSession::new(&plan, TxnId::new(2));
        assert_eq!(s.fault(FaultPoint::Read), Some(InjectedFault::Crash));
        assert!(s.crashed());
        // After the crash the session is inert.
        assert_eq!(s.fault(FaultPoint::Read), None);
    }

    #[test]
    fn abort_and_crash_rates_roughly_match_spec() {
        let plan = FaultPlan::parse("abort=0.25,crash=0.25")
            .unwrap()
            .with_seed(3);
        let mut aborts = 0u32;
        let mut crashes = 0u32;
        for txn in 1..=4000u32 {
            let mut s = FaultSession::new(&plan, TxnId::new(txn));
            match s.fault(FaultPoint::Read) {
                Some(InjectedFault::Abort) => aborts += 1,
                Some(InjectedFault::Crash) => crashes += 1,
                None => {}
            }
        }
        for count in [aborts, crashes] {
            assert!((800..=1200).contains(&count), "rate off: {count}/4000");
        }
    }

    #[test]
    fn thread_crash_decision_is_deterministic_per_txn() {
        let plan = FaultPlan::parse("crash=1,thread-crash=0.5")
            .unwrap()
            .with_seed(9);
        let first = (1..=100u32)
            .map(|k| plan.crash_kills_thread(TxnId::new(k)))
            .collect::<Vec<_>>();
        let again = (1..=100u32)
            .map(|k| plan.crash_kills_thread(TxnId::new(k)))
            .collect::<Vec<_>>();
        assert_eq!(first, again);
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }
}
