//! Multi-threaded software transactional memory engines that record the
//! histories the paper's model is about.
//!
//! Six engines behind one [`Engine`] trait:
//!
//! * [`engines::Tl2`] — commit-time locking with a global version clock
//!   (deferred update; du-opaque histories);
//! * [`engines::NoRec`] — global sequence lock with value-based validation
//!   (deferred update; opaque, but ABA can break du-opacity — the gap the
//!   experiments measure);
//! * [`engines::Dstm`] — DSTM-style locators with eager ownership and
//!   stamp-validated invisible reads (deferred update; du-opaque);
//! * [`engines::Eager2Pl`] — encounter-time strict two-phase locking with
//!   direct update (locks shield uncommitted state);
//! * [`engines::Pessimistic`] — the no-abort, write-in-place design the
//!   paper's Section 5 calls out as **not** du-opaque;
//! * [`engines::DirtyRead`] — no locking, no validation: the negative
//!   control whose histories the checkers must reject.
//!
//! [`run_workload`] drives any engine from multiple OS threads and returns
//! the globally ordered [`History`](duop_history::History) for the
//! `duop-core` checkers. [`run_workload_faulted`] does the same under a
//! deterministic [`FaultPlan`] — forced aborts, mid-flight crashes and
//! scheduler delays at each engine's injection points — producing the
//! hostile histories the robustness experiments feed to the checkers.
//!
//! # Example
//!
//! ```
//! use duop_stm::{engines::Tl2, run_workload, WorkloadConfig};
//!
//! let engine = Tl2::new(8);
//! let (history, stats) = run_workload(&engine, &WorkloadConfig::default());
//! assert_eq!(history.txn_count(), stats.attempts());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod engines;
pub mod faults;

mod recorder;
mod txn;
mod workload;

pub use faults::{FaultPlan, FaultPoint, FaultSession, FaultSpecError, InjectedFault};
pub use recorder::Recorder;
pub use txn::{Aborted, Engine, Transaction, TxnOutcome};
pub use workload::{run_workload, run_workload_faulted, WorkloadConfig, WorkloadStats};
