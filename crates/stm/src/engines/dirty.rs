//! A deliberately unsafe engine: in-place writes with no locking and no
//! read validation.
//!
//! Writes become visible to other transactions the moment they execute —
//! *before* the writer invokes `tryC` — which is precisely what
//! deferred-update semantics forbids; reads never validate, so a
//! transaction can observe half of another transaction's updates. The
//! recorded histories routinely violate du-opacity (and usually opacity),
//! making this the negative control for the checker experiments.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::RwLock;
use std::collections::HashMap;

/// The dirty-read engine. **Not safe** — by design.
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::DirtyRead, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = DirtyRead::new(1);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     txn.write(ObjId::new(0), Value::new(1))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct DirtyRead {
    cells: Vec<RwLock<Value>>,
}

impl DirtyRead {
    /// Creates a store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        DirtyRead {
            cells: (0..objects).map(|_| RwLock::new(Value::INITIAL)).collect(),
        }
    }

    fn cell(&self, obj: ObjId) -> &RwLock<Value> {
        &self.cells[obj.index() as usize]
    }
}

struct DirtyTxn<'a> {
    engine: &'a DirtyRead,
    recorder: &'a Recorder,
    id: TxnId,
    read_cache: HashMap<ObjId, Value>,
    written: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl DirtyTxn<'_> {
    /// Applies an injected fault. Like everything else about this engine,
    /// neither outcome rolls anything back: earlier in-place writes stay
    /// visible, which is exactly the leak the fuzzer is meant to find.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => {
                self.recorder.respond(self.id, Ret::Aborted);
                self.aborted = true;
                Some(Aborted)
            }
            Some(InjectedFault::Crash) => Some(Aborted),
            None => None,
        }
    }
}

impl Transaction for DirtyTxn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        if let Some(&v) = self.written.get(&obj) {
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        let v = *self.engine.cell(obj).read();
        self.read_cache.insert(obj, v);
        self.recorder.respond(self.id, Ret::Value(v));
        Ok(v)
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        // In-place, instantly visible to everyone: the deferred-update
        // violation under study.
        *self.engine.cell(obj).write() = value;
        self.written.insert(obj, value);
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for DirtyRead {
    fn name(&self) -> &'static str {
        "dirty-read"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = DirtyTxn {
            engine: self,
            recorder,
            id,
            read_cache: HashMap::new(),
            written: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // No recovery either: in-place writes stay visible with the
            // transaction never reaching tryC.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            // No rollback — the writes stay. Unsafe, as advertised.
            recorder.invoke(id, Op::TryAbort);
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }
        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::WriteBack) {
            Some(InjectedFault::Abort) => {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => return TxnOutcome::Crashed,
            None => {}
        }
        recorder.respond(id, Ret::Committed);
        TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn writes_are_immediately_visible() {
        let engine = DirtyRead::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| t.write(x(0), v(1)));
        assert_eq!(*engine.cell(x(0)).read(), v(1));
    }

    #[test]
    fn aborts_do_not_roll_back() {
        let engine = DirtyRead::new(1);
        let recorder = Recorder::new();
        let out = engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(7))?;
            Err(Aborted)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(
            *engine.cell(x(0)).read(),
            v(7),
            "dirty write leaked, by design"
        );
    }

    #[test]
    fn sequential_use_still_looks_legal() {
        // Without concurrency the engine cannot misbehave; the recorded
        // history is legal.
        let engine = DirtyRead::new(2);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| t.write(x(0), v(2)));
        engine.run_txn(&recorder, &mut |t| {
            assert_eq!(t.read(x(0))?, v(2));
            Ok(())
        });
        assert!(recorder.into_history().is_legal());
    }
}
