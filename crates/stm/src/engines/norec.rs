//! NOrec: a single global sequence lock with value-based validation
//! (Dalessandro, Spear, Scott; PPoPP 2010).
//!
//! Reads snapshot values consistently by re-validating the whole read set
//! whenever the global version moves; writers serialize commits through the
//! sequence lock. NOrec is opaque — but its value-based validation admits
//! ABA (an object rewritten to a previously read value still validates),
//! so with small value domains its histories are occasionally **not
//! du-opaque**. The experiment harness measures exactly this gap.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The NOrec engine.
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::NoRec, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = NoRec::new(2);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     txn.write(ObjId::new(0), Value::new(9))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct NoRec {
    /// Global sequence lock: even = unlocked, odd = a writer is committing.
    seqlock: AtomicU64,
    cells: Vec<RwLock<Value>>,
}

impl NoRec {
    /// Creates a NOrec store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        NoRec {
            seqlock: AtomicU64::new(0),
            cells: (0..objects).map(|_| RwLock::new(Value::INITIAL)).collect(),
        }
    }

    fn cell(&self, obj: ObjId) -> &RwLock<Value> {
        &self.cells[obj.index() as usize]
    }

    /// Spin until the sequence lock is even, returning its value.
    fn wait_even(&self) -> u64 {
        loop {
            let t = self.seqlock.load(Ordering::SeqCst);
            if t.is_multiple_of(2) {
                return t;
            }
            std::hint::spin_loop();
        }
    }
}

struct NoRecTxn<'a> {
    engine: &'a NoRec,
    recorder: &'a Recorder,
    id: TxnId,
    /// Global version at which the read set was last known valid.
    snapshot: u64,
    read_set: Vec<(ObjId, Value)>,
    read_cache: HashMap<ObjId, Value>,
    write_buf: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl NoRecTxn<'_> {
    /// Applies an injected fault; both deferred-update outcomes simply
    /// drop the private buffers.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => Some(self.abort_op()),
            Some(InjectedFault::Crash) => Some(Aborted),
            None => None,
        }
    }

    /// Value-based revalidation; returns the (even) time of validity.
    fn validate(&self) -> Option<u64> {
        loop {
            let t = self.engine.wait_even();
            let ok = self
                .read_set
                .iter()
                .all(|(o, v)| *self.engine.cell(*o).read() == *v);
            if self.engine.seqlock.load(Ordering::SeqCst) == t {
                return ok.then_some(t);
            }
        }
    }

    fn abort_op(&mut self) -> Aborted {
        self.recorder.respond(self.id, Ret::Aborted);
        self.aborted = true;
        Aborted
    }
}

impl Transaction for NoRecTxn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        if let Some(&v) = self.write_buf.get(&obj) {
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        loop {
            let before = self.engine.wait_even();
            if before != self.snapshot {
                match self.validate() {
                    Some(t) => self.snapshot = t,
                    None => return Err(self.abort_op()),
                }
                continue;
            }
            let value = *self.engine.cell(obj).read();
            if self.engine.seqlock.load(Ordering::SeqCst) == before {
                self.read_set.push((obj, value));
                self.read_cache.insert(obj, value);
                self.recorder.respond(self.id, Ret::Value(value));
                return Ok(value);
            }
        }
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        self.write_buf.insert(obj, value);
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for NoRec {
    fn name(&self) -> &'static str {
        "NOrec"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = NoRecTxn {
            engine: self,
            recorder,
            id,
            snapshot: self.wait_even(),
            read_set: Vec::new(),
            read_cache: HashMap::new(),
            write_buf: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // Buffered updates die with the transaction.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            recorder.invoke(id, Op::TryAbort);
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }

        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::LockAcquire) {
            Some(InjectedFault::Abort) => {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => return TxnOutcome::Crashed,
            None => {}
        }

        if txn.write_buf.is_empty() {
            recorder.respond(id, Ret::Committed);
            return TxnOutcome::Committed;
        }

        // Acquire the sequence lock, revalidating on every movement.
        loop {
            if self
                .seqlock
                .compare_exchange(
                    txn.snapshot,
                    txn.snapshot + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
            match txn.validate() {
                Some(t) => txn.snapshot = t,
                None => {
                    recorder.respond(id, Ret::Aborted);
                    return TxnOutcome::Aborted;
                }
            }
        }
        match txn.faults.fault(FaultPoint::WriteBack) {
            Some(InjectedFault::Abort) => {
                // Release the sequence lock without publishing.
                self.seqlock.store(txn.snapshot, Ordering::SeqCst);
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => {
                self.seqlock.store(txn.snapshot, Ordering::SeqCst);
                return TxnOutcome::Crashed;
            }
            None => {}
        }
        for (obj, value) in &txn.write_buf {
            *self.cell(*obj).write() = *value;
        }
        self.seqlock.store(txn.snapshot + 2, Ordering::SeqCst);
        recorder.respond(id, Ret::Committed);
        TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn write_then_read_back() {
        let engine = NoRec::new(2);
        let recorder = Recorder::new();
        assert!(engine
            .run_txn(&recorder, &mut |t| t.write(x(0), v(3)))
            .is_committed());
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                assert_eq!(t.read(x(0))?, v(3));
                assert_eq!(t.read(x(1))?, Value::INITIAL);
                Ok(())
            })
            .is_committed());
        assert!(recorder.into_history().is_legal());
    }

    #[test]
    fn seqlock_stays_even_after_commits() {
        let engine = NoRec::new(1);
        let recorder = Recorder::new();
        for i in 1..=5 {
            engine.run_txn(&recorder, &mut |t| t.write(x(0), v(i)));
        }
        assert_eq!(engine.seqlock.load(Ordering::SeqCst) % 2, 0);
        assert_eq!(*engine.cell(x(0)).read(), v(5));
    }

    #[test]
    fn read_only_txn_commits_without_locking() {
        let engine = NoRec::new(1);
        let recorder = Recorder::new();
        let before = engine.seqlock.load(Ordering::SeqCst);
        assert!(engine
            .run_txn(&recorder, &mut |t| t.read(x(0)).map(|_| ()))
            .is_committed());
        assert_eq!(engine.seqlock.load(Ordering::SeqCst), before);
    }
}
