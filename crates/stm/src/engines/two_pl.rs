//! Eager (encounter-time) strict two-phase locking with direct update.
//!
//! Every access takes the object's lock with no-wait conflict resolution
//! (`try_lock` failure aborts the transaction, so deadlock is impossible);
//! writes go *directly* to the store with an undo log; locks are held until
//! commit or abort. This is the lock-based, direct-update design the
//! paper's Discussion contrasts with deferred update: readers can never
//! observe uncommitted state because the lock shields it, so the recorded
//! histories remain du-opaque even though the store is updated in place.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;

/// The eager 2PL engine.
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::Eager2Pl, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = Eager2Pl::new(2);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     txn.write(ObjId::new(0), Value::new(1))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct Eager2Pl {
    cells: Vec<Mutex<Value>>,
}

impl Eager2Pl {
    /// Creates a store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        Eager2Pl {
            cells: (0..objects).map(|_| Mutex::new(Value::INITIAL)).collect(),
        }
    }

    fn cell(&self, obj: ObjId) -> &Mutex<Value> {
        &self.cells[obj.index() as usize]
    }
}

struct TwoPlTxn<'a> {
    engine: &'a Eager2Pl,
    recorder: &'a Recorder,
    id: TxnId,
    /// Held locks, keyed by object.
    guards: HashMap<ObjId, MutexGuard<'a, Value>>,
    /// Original values of objects written (for rollback), in write order.
    undo: Vec<(ObjId, Value)>,
    read_cache: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl<'a> TwoPlTxn<'a> {
    /// Applies an injected fault. A crash rolls the in-place writes back
    /// and releases every lock — silently: the TM runtime recovers the
    /// store, but the crashed client never records another event.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => Some(self.abort_op()),
            Some(InjectedFault::Crash) => {
                self.rollback();
                Some(Aborted)
            }
            None => None,
        }
    }

    /// Acquires the object's lock (no-wait). `None` means conflict.
    fn acquire(&mut self, obj: ObjId) -> Option<()> {
        if self.guards.contains_key(&obj) {
            return Some(());
        }
        let guard = self.engine.cell(obj).try_lock()?;
        self.guards.insert(obj, guard);
        Some(())
    }

    fn rollback(&mut self) {
        for (obj, original) in self.undo.drain(..).rev() {
            if let Some(guard) = self.guards.get_mut(&obj) {
                **guard = original;
            }
        }
        self.guards.clear();
    }

    fn abort_op(&mut self) -> Aborted {
        self.rollback();
        self.recorder.respond(self.id, Ret::Aborted);
        self.aborted = true;
        Aborted
    }
}

impl Transaction for TwoPlTxn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        // A previously written object: serve the in-place value silently
        // (checked before the read cache so own writes shadow earlier
        // reads).
        if self.undo.iter().any(|(o, _)| *o == obj) {
            let v = **self.guards.get(&obj).expect("written object is locked");
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        if self.acquire(obj).is_none() {
            return Err(self.abort_op());
        }
        let v = **self.guards.get(&obj).expect("just acquired");
        self.read_cache.insert(obj, v);
        self.recorder.respond(self.id, Ret::Value(v));
        Ok(v)
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        if self.acquire(obj).is_none() {
            return Err(self.abort_op());
        }
        let guard = self.guards.get_mut(&obj).expect("just acquired");
        if !self.undo.iter().any(|(o, _)| *o == obj) {
            self.undo.push((obj, **guard));
        }
        **guard = value;
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for Eager2Pl {
    fn name(&self) -> &'static str {
        "eager 2PL"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = TwoPlTxn {
            engine: self,
            recorder,
            id,
            guards: HashMap::new(),
            undo: Vec::new(),
            read_cache: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // The injection hook already rolled back and unlocked.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            recorder.invoke(id, Op::TryAbort);
            txn.rollback();
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }
        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::LockAcquire) {
            Some(InjectedFault::Abort) => {
                txn.rollback();
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => {
                // Crash inside commit: roll back and unlock silently,
                // leaving the tryC commit-pending.
                txn.rollback();
                return TxnOutcome::Crashed;
            }
            None => {}
        }
        // Strict 2PL: release every lock at commit; updates are already in
        // place.
        txn.guards.clear();
        recorder.respond(id, Ret::Committed);
        TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn direct_update_with_rollback() {
        let engine = Eager2Pl::new(1);
        let recorder = Recorder::new();
        // Body aborts after writing: the store must roll back.
        let out = engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(9))?;
            Err(Aborted)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(*engine.cell(x(0)).lock(), Value::INITIAL);
    }

    #[test]
    fn committed_write_persists() {
        let engine = Eager2Pl::new(1);
        let recorder = Recorder::new();
        assert!(engine
            .run_txn(&recorder, &mut |t| t.write(x(0), v(4)))
            .is_committed());
        assert_eq!(*engine.cell(x(0)).lock(), v(4));
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                assert_eq!(t.read(x(0))?, v(4));
                Ok(())
            })
            .is_committed());
        assert!(recorder.into_history().is_legal());
    }

    #[test]
    fn locks_released_after_commit_and_abort() {
        let engine = Eager2Pl::new(2);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.read(x(0))?;
            t.write(x(1), v(1))
        });
        // Both locks must be free again.
        assert!(engine.cell(x(0)).try_lock().is_some());
        assert!(engine.cell(x(1)).try_lock().is_some());
    }

    #[test]
    fn read_after_own_write_sees_in_place_value() {
        let engine = Eager2Pl::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(6))?;
            assert_eq!(t.read(x(0))?, v(6));
            Ok(())
        });
        // The read-after-write records no event.
        assert_eq!(recorder.into_history().len(), 4);
    }
}
