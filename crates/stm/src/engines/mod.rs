//! The STM engines: three deferred-update designs (TL2, NOrec, DSTM), one
//! direct-update lock-based design (eager 2PL), the paper's Section 5
//! pessimistic counterpoint, and a deliberately unsafe negative control
//! (dirty-read).

mod dirty;
mod dstm;
mod norec;
mod pessimistic;
mod tl2;
mod two_pl;

pub use dirty::DirtyRead;
pub use dstm::Dstm;
pub use norec::NoRec;
pub use pessimistic::Pessimistic;
pub use tl2::Tl2;
pub use two_pl::Eager2Pl;
