//! DSTM-style engine: per-object locators with eager conflict detection
//! and incremental read-set validation (Herlihy, Luchangco, Moir,
//! Scherer; PODC 2003 — simplified).
//!
//! Each t-object holds a *locator*: the owning transaction's status cell
//! plus the old (pre-transaction) and new (speculative) values. The
//! committed value of an object is `new` if the owner committed and `old`
//! otherwise. Writers acquire ownership eagerly, aborting any active
//! previous owner (an aggressive contention manager); reads are invisible
//! and the whole read set is re-validated — by write *stamp*, so ABA is
//! impossible — on every subsequent access and at commit. Commit
//! validation and the status transition are serialized by a global commit
//! lock, a simplification over DSTM's lock-free protocol that preserves
//! its histories' shape.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

const ACTIVE: u8 = 0;
const COMMITTED: u8 = 1;
const ABORTED: u8 = 2;

#[derive(Clone, Debug)]
struct Locator {
    status: Arc<AtomicU8>,
    old: Value,
    new: Value,
    /// Stamp of the write that produced the currently committed value
    /// (0 = the initial value).
    stamp: u64,
}

impl Locator {
    /// The committed value and its stamp, as of this locator.
    fn resolve(&self) -> (Value, u64) {
        if self.status.load(Ordering::SeqCst) == COMMITTED {
            (self.new, self.stamp)
        } else {
            (self.old, self.stamp.wrapping_sub(1))
        }
    }
}

/// The simplified DSTM engine.
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::Dstm, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = Dstm::new(2);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     txn.write(ObjId::new(0), Value::new(3))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct Dstm {
    cells: Vec<Mutex<Locator>>,
    stamp: AtomicU64,
    /// Serializes commit-time validation with the status transition.
    commit_lock: Mutex<()>,
}

impl Dstm {
    /// Creates a DSTM store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        let committed = Arc::new(AtomicU8::new(COMMITTED));
        Dstm {
            cells: (0..objects)
                .map(|_| {
                    Mutex::new(Locator {
                        status: Arc::clone(&committed),
                        old: Value::INITIAL,
                        new: Value::INITIAL,
                        stamp: 0,
                    })
                })
                .collect(),
            stamp: AtomicU64::new(1),
            commit_lock: Mutex::new(()),
        }
    }

    fn cell(&self, obj: ObjId) -> &Mutex<Locator> {
        &self.cells[obj.index() as usize]
    }
}

struct DstmTxn<'a> {
    engine: &'a Dstm,
    recorder: &'a Recorder,
    id: TxnId,
    status: Arc<AtomicU8>,
    /// Invisible read set: object, observed committed value, stamp.
    read_set: Vec<(ObjId, Value, u64)>,
    read_cache: HashMap<ObjId, Value>,
    /// Objects this transaction owns (opened for writing).
    owned: Vec<ObjId>,
    write_cache: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl DstmTxn<'_> {
    fn abort_op(&mut self) -> Aborted {
        self.status.store(ABORTED, Ordering::SeqCst);
        self.recorder.respond(self.id, Ret::Aborted);
        self.aborted = true;
        Aborted
    }

    /// Applies an injected fault. A crash flips the shared status cell to
    /// `ABORTED` silently, so every owned locator resolves back to its old
    /// value — the runtime's recovery — while the history keeps the
    /// pending operation.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => Some(self.abort_op()),
            Some(InjectedFault::Crash) => {
                self.status.store(ABORTED, Ordering::SeqCst);
                Some(Aborted)
            }
            None => None,
        }
    }

    /// Re-validates the invisible read set by stamp.
    fn validate(&self) -> bool {
        if self.status.load(Ordering::SeqCst) == ABORTED {
            return false;
        }
        self.read_set.iter().all(|(obj, _, stamp)| {
            let (_, current) = self.engine.cell(*obj).lock().resolve();
            current == *stamp
        })
    }
}

impl Transaction for DstmTxn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        if let Some(&v) = self.write_cache.get(&obj) {
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        let (value, stamp) = self.engine.cell(obj).lock().resolve();
        self.read_set.push((obj, value, stamp));
        if !self.validate() {
            return Err(self.abort_op());
        }
        self.read_cache.insert(obj, value);
        self.recorder.respond(self.id, Ret::Value(value));
        Ok(value)
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        if !self.owned.contains(&obj) {
            let mut cell = self.engine.cell(obj).lock();
            let owner_status = cell.status.load(Ordering::SeqCst);
            if owner_status == ACTIVE && !Arc::ptr_eq(&cell.status, &self.status) {
                // Aggressive contention management: abort the previous
                // owner (if it is still active by the time we CAS).
                let _ = cell.status.compare_exchange(
                    ACTIVE,
                    ABORTED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
            let (committed_value, stamp) = cell.resolve();
            *cell = Locator {
                status: Arc::clone(&self.status),
                old: committed_value,
                new: value,
                stamp: stamp.wrapping_add(1),
            };
            drop(cell);
            self.owned.push(obj);
        } else {
            let mut cell = self.engine.cell(obj).lock();
            // Still the owner? Another writer may have stolen the object
            // and aborted us.
            if !Arc::ptr_eq(&cell.status, &self.status) {
                drop(cell);
                return Err(self.abort_op());
            }
            cell.new = value;
        }
        if !self.validate() {
            return Err(self.abort_op());
        }
        self.write_cache.insert(obj, value);
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for Dstm {
    fn name(&self) -> &'static str {
        "DSTM"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = DstmTxn {
            engine: self,
            recorder,
            id,
            status: Arc::new(AtomicU8::new(ACTIVE)),
            read_set: Vec::new(),
            read_cache: HashMap::new(),
            owned: Vec::new(),
            write_cache: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // The injection hook already parked the status at ABORTED.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            recorder.invoke(id, Op::TryAbort);
            txn.status.store(ABORTED, Ordering::SeqCst);
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }
        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::LockAcquire) {
            Some(InjectedFault::Abort) => {
                txn.status.store(ABORTED, Ordering::SeqCst);
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => {
                txn.status.store(ABORTED, Ordering::SeqCst);
                return TxnOutcome::Crashed;
            }
            None => {}
        }
        // Validate and transition atomically w.r.t. other committers.
        let guard = self.commit_lock.lock();
        match txn.faults.fault(FaultPoint::Validate) {
            Some(InjectedFault::Abort) => {
                drop(guard);
                txn.status.store(ABORTED, Ordering::SeqCst);
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => {
                drop(guard);
                txn.status.store(ABORTED, Ordering::SeqCst);
                return TxnOutcome::Crashed;
            }
            None => {}
        }
        let ok = txn.validate()
            && txn
                .status
                .compare_exchange(ACTIVE, COMMITTED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        // Stamp the committed writes so later validations see fresh
        // versions even if values repeat (ABA-freedom).
        if ok {
            for obj in &txn.owned {
                let mut cell = self.cell(*obj).lock();
                if Arc::ptr_eq(&cell.status, &txn.status) {
                    cell.stamp = self.stamp.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        drop(guard);
        if ok {
            recorder.respond(id, Ret::Committed);
            TxnOutcome::Committed
        } else {
            txn.status.store(ABORTED, Ordering::SeqCst);
            recorder.respond(id, Ret::Aborted);
            TxnOutcome::Aborted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn write_then_read_back() {
        let engine = Dstm::new(2);
        let recorder = Recorder::new();
        assert!(engine
            .run_txn(&recorder, &mut |t| t.write(x(0), v(9)))
            .is_committed());
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                assert_eq!(t.read(x(0))?, v(9));
                assert_eq!(t.read(x(1))?, Value::INITIAL);
                Ok(())
            })
            .is_committed());
        assert!(recorder.into_history().is_legal());
    }

    #[test]
    fn aborted_writer_leaves_old_value() {
        let engine = Dstm::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(7))?;
            Err(Aborted)
        });
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                assert_eq!(t.read(x(0))?, Value::INITIAL);
                Ok(())
            })
            .is_committed());
    }

    #[test]
    fn read_own_write_is_cached() {
        let engine = Dstm::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(4))?;
            assert_eq!(t.read(x(0))?, v(4));
            Ok(())
        });
        assert_eq!(recorder.into_history().len(), 4);
    }

    #[test]
    fn multiple_writes_to_same_object() {
        let engine = Dstm::new(1);
        let recorder = Recorder::new();
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                t.write(x(0), v(1))?;
                t.write(x(0), v(2))
            })
            .is_committed());
        assert!(engine
            .run_txn(&recorder, &mut |t| {
                assert_eq!(t.read(x(0))?, v(2));
                Ok(())
            })
            .is_committed());
    }

    #[test]
    fn stamps_advance_on_commit() {
        let engine = Dstm::new(1);
        let recorder = Recorder::new();
        let (_, s0) = engine.cell(x(0)).lock().resolve();
        engine.run_txn(&recorder, &mut |t| t.write(x(0), v(5)));
        let (val, s1) = engine.cell(x(0)).lock().resolve();
        assert_eq!(val, v(5));
        assert_ne!(s0, s1);
    }
}
