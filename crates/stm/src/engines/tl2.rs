//! TL2: commit-time locking with a global version clock (Dice, Shalev,
//! Shavit; DISC 2006).
//!
//! Reads validate against the transaction's read version and are invisible;
//! commits lock the write set (no-wait), validate the read set, advance the
//! global clock and publish versioned values. TL2 guarantees opacity — and,
//! because versions rule out ABA, the recorded histories are du-opaque.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
struct Cell {
    /// (version, value); the `RwLock`'s writer side doubles as the commit
    /// lock.
    state: RwLock<(u64, Value)>,
}

/// The TL2 engine.
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::Tl2, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = Tl2::new(4);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     let v = txn.read(ObjId::new(0))?;
///     txn.write(ObjId::new(1), Value::new(v.get() + 1))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct Tl2 {
    clock: AtomicU64,
    cells: Vec<Cell>,
}

impl Tl2 {
    /// Creates a TL2 store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        Tl2 {
            clock: AtomicU64::new(0),
            cells: (0..objects)
                .map(|_| Cell {
                    state: RwLock::new((0, Value::INITIAL)),
                })
                .collect(),
        }
    }

    fn cell(&self, obj: ObjId) -> &Cell {
        &self.cells[obj.index() as usize]
    }
}

struct Tl2Txn<'a> {
    engine: &'a Tl2,
    recorder: &'a Recorder,
    id: TxnId,
    rv: u64,
    read_cache: HashMap<ObjId, Value>,
    write_buf: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl Tl2Txn<'_> {
    fn abort_op(&mut self) -> Aborted {
        self.recorder.respond(self.id, Ret::Aborted);
        self.aborted = true;
        Aborted
    }

    /// Applies an injected fault at an operation-level point. A crash is
    /// already latched in the session; both faults unwind the body.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => Some(self.abort_op()),
            Some(InjectedFault::Crash) => Some(Aborted),
            None => None,
        }
    }
}

impl Transaction for Tl2Txn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        if let Some(&v) = self.write_buf.get(&obj) {
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        let (version, value) = *self.engine.cell(obj).state.read();
        if version > self.rv {
            return Err(self.abort_op());
        }
        self.read_cache.insert(obj, value);
        self.recorder.respond(self.id, Ret::Value(value));
        Ok(value)
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        self.write_buf.insert(obj, value);
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for Tl2 {
    fn name(&self) -> &'static str {
        "TL2"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = Tl2Txn {
            engine: self,
            recorder,
            id,
            rv: self.clock.load(Ordering::SeqCst),
            read_cache: HashMap::new(),
            write_buf: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // Buffered updates die with the transaction; nothing to clean.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            // The body gave up on its own: record an explicit tryA.
            recorder.invoke(id, Op::TryAbort);
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }

        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::LockAcquire) {
            Some(InjectedFault::Abort) => {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => return TxnOutcome::Crashed,
            None => {}
        }

        // Read-only transactions validated every read against rv: commit.
        if txn.write_buf.is_empty() {
            recorder.respond(id, Ret::Committed);
            return TxnOutcome::Committed;
        }

        // Lock the write set in object order (no-wait: conflict aborts).
        let mut write_set: Vec<(ObjId, Value)> =
            txn.write_buf.iter().map(|(o, v)| (*o, *v)).collect();
        write_set.sort_unstable_by_key(|(o, _)| *o);
        let mut guards = Vec::with_capacity(write_set.len());
        for (obj, _) in &write_set {
            match self.cell(*obj).state.try_write() {
                Some(g) => guards.push(g),
                None => {
                    recorder.respond(id, Ret::Aborted);
                    return TxnOutcome::Aborted;
                }
            }
        }
        match txn.faults.fault(FaultPoint::Validate) {
            Some(InjectedFault::Abort) => {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            // Guards drop silently: the commit never published anything.
            Some(InjectedFault::Crash) => return TxnOutcome::Crashed,
            None => {}
        }

        let wv = self.clock.fetch_add(1, Ordering::SeqCst) + 1;

        // Validate the whole read set. Objects we also write are validated
        // through the guards we hold (another transaction may have
        // committed them between our read and our lock acquisition);
        // everything else through a non-blocking read of the cell.
        for obj in txn.read_cache.keys() {
            let current = if let Some(pos) = write_set.iter().position(|(o, _)| o == obj) {
                guards[pos].0
            } else {
                match self.cell(*obj).state.try_read() {
                    Some(g) => g.0,
                    None => {
                        recorder.respond(id, Ret::Aborted);
                        return TxnOutcome::Aborted;
                    }
                }
            };
            if current > txn.rv {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
        }

        match txn.faults.fault(FaultPoint::WriteBack) {
            Some(InjectedFault::Abort) => {
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => return TxnOutcome::Crashed,
            None => {}
        }
        for (guard, (_, value)) in guards.iter_mut().zip(&write_set) {
            **guard = (wv, *value);
        }
        drop(guards);
        recorder.respond(id, Ret::Committed);
        TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn sequential_read_write_commit() {
        let engine = Tl2::new(2);
        let recorder = Recorder::new();
        let out = engine.run_txn(&recorder, &mut |t| {
            assert_eq!(t.read(x(0))?, Value::INITIAL);
            t.write(x(0), v(5))
        });
        assert!(out.is_committed());
        let out = engine.run_txn(&recorder, &mut |t| {
            assert_eq!(t.read(x(0))?, v(5));
            Ok(())
        });
        assert!(out.is_committed());
        let h = recorder.into_history();
        assert!(h.is_legal());
    }

    #[test]
    fn read_own_write_without_extra_event() {
        let engine = Tl2::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(7))?;
            assert_eq!(t.read(x(0))?, v(7));
            Ok(())
        });
        let h = recorder.into_history();
        // write inv/resp + tryC inv/resp only: the own-write read records
        // no event.
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn repeated_read_is_cached() {
        let engine = Tl2::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.read(x(0))?;
            t.read(x(0))?;
            Ok(())
        });
        let h = recorder.into_history();
        // One read + tryC.
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn stale_read_version_aborts() {
        let engine = Tl2::new(1);
        let recorder = Recorder::new();
        // Start T1 so its rv is the initial clock, then commit T2's write
        // (advancing the clock), then have T1 read: version > rv → abort.
        // Simulated by two sequential run_txn calls with an interleaved
        // body is impossible on one thread; instead check the version
        // mechanics directly: after a committed write the clock advanced.
        engine.run_txn(&recorder, &mut |t| t.write(x(0), v(1)));
        assert_eq!(engine.clock.load(Ordering::SeqCst), 1);
        assert_eq!(engine.cell(x(0)).state.read().0, 1);
    }

    #[test]
    fn body_abort_is_final() {
        let engine = Tl2::new(1);
        let recorder = Recorder::new();
        let out = engine.run_txn(&recorder, &mut |_t| Err(Aborted));
        assert_eq!(out, TxnOutcome::Aborted);
    }
}
