//! A pessimistic, no-abort STM in the spirit of Afek–Matveev–Shavit
//! ("Pessimistic software lock-elision", DISC 2012) — the implementation
//! the paper's Section 5 singles out as *not* du-opaque.
//!
//! Writers serialize on a single global mutex, acquired at their first
//! write and held to commit, and update the store **in place** as they
//! execute; readers run without any synchronization or validation. No
//! transaction ever aborts. Because a writer's updates are visible before
//! it invokes `tryC`, a concurrent reader can read from a transaction that
//! has not started committing — exactly the behaviour du-opacity exists to
//! forbid, and (with multi-object writers) the reader's snapshot can also
//! be inconsistent, breaking opacity. This engine exists to reproduce that
//! Section 5 claim; it is not a safe TM.

use crate::{
    Aborted, Engine, FaultPlan, FaultPoint, FaultSession, InjectedFault, Recorder, Transaction,
    TxnOutcome,
};
use duop_history::{ObjId, Op, Ret, TxnId, Value};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;

/// The pessimistic no-abort engine. **Not du-opaque** — by design (it is
/// the paper's Section 5 counterpoint).
///
/// # Examples
///
/// ```
/// use duop_stm::{engines::Pessimistic, Engine, Recorder};
/// use duop_history::{ObjId, Value};
///
/// let engine = Pessimistic::new(2);
/// let recorder = Recorder::new();
/// let outcome = engine.run_txn(&recorder, &mut |txn| {
///     txn.write(ObjId::new(0), Value::new(1))
/// });
/// assert!(outcome.is_committed());
/// ```
#[derive(Debug)]
pub struct Pessimistic {
    cells: Vec<RwLock<Value>>,
    writer_lock: Mutex<()>,
}

impl Pessimistic {
    /// Creates a store over `objects` t-objects, all holding
    /// [`Value::INITIAL`].
    pub fn new(objects: u32) -> Self {
        Pessimistic {
            cells: (0..objects).map(|_| RwLock::new(Value::INITIAL)).collect(),
            writer_lock: Mutex::new(()),
        }
    }

    fn cell(&self, obj: ObjId) -> &RwLock<Value> {
        &self.cells[obj.index() as usize]
    }
}

struct PessimisticTxn<'a> {
    engine: &'a Pessimistic,
    recorder: &'a Recorder,
    id: TxnId,
    /// Held from the first write until commit.
    writer_guard: Option<MutexGuard<'a, ()>>,
    /// Original values for rollback if the body gives up voluntarily.
    undo: Vec<(ObjId, Value)>,
    read_cache: HashMap<ObjId, Value>,
    written: HashMap<ObjId, Value>,
    aborted: bool,
    faults: FaultSession,
}

impl PessimisticTxn<'_> {
    /// Restores the store and releases the writer lock.
    fn recover(&mut self) {
        for (obj, original) in self.undo.drain(..).rev() {
            *self.engine.cell(obj).write() = original;
        }
        drop(self.writer_guard.take());
    }

    /// Applies an injected fault. The engine itself never aborts, but a
    /// forced abort still has a well-defined meaning — the voluntary
    /// give-up path: roll back under the writer lock and record `A_k`. A
    /// crash rolls back and unlocks without recording anything.
    fn injected(&mut self, point: FaultPoint) -> Option<Aborted> {
        match self.faults.fault(point) {
            Some(InjectedFault::Abort) => {
                self.recover();
                self.recorder.respond(self.id, Ret::Aborted);
                self.aborted = true;
                Some(Aborted)
            }
            Some(InjectedFault::Crash) => {
                self.recover();
                Some(Aborted)
            }
            None => None,
        }
    }
}

impl Transaction for PessimisticTxn<'_> {
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted> {
        if let Some(&v) = self.written.get(&obj) {
            return Ok(v);
        }
        if let Some(&v) = self.read_cache.get(&obj) {
            return Ok(v);
        }
        self.recorder.invoke(self.id, Op::Read(obj));
        if let Some(fault) = self.injected(FaultPoint::Read) {
            return Err(fault);
        }
        // Unvalidated read: may observe another writer's in-place,
        // not-yet-committing state.
        let v = *self.engine.cell(obj).read();
        self.read_cache.insert(obj, v);
        self.recorder.respond(self.id, Ret::Value(v));
        Ok(v)
    }

    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted> {
        self.recorder.invoke(self.id, Op::Write(obj, value));
        if let Some(fault) = self.injected(FaultPoint::Write) {
            return Err(fault);
        }
        if self.writer_guard.is_none() {
            // Block until we are the writer; pessimism means no abort.
            self.writer_guard = Some(self.engine.writer_lock.lock());
        }
        {
            let mut cell = self.engine.cell(obj).write();
            if !self.undo.iter().any(|(o, _)| *o == obj) {
                self.undo.push((obj, *cell));
            }
            *cell = value;
        }
        self.written.insert(obj, value);
        self.recorder.respond(self.id, Ret::Ok);
        Ok(())
    }
}

impl Engine for Pessimistic {
    fn name(&self) -> &'static str {
        "pessimistic"
    }

    fn objects(&self) -> u32 {
        self.cells.len() as u32
    }

    fn run_txn_faulted(
        &self,
        recorder: &Recorder,
        faults: &FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        let id = recorder.begin_txn();
        let mut txn = PessimisticTxn {
            engine: self,
            recorder,
            id,
            writer_guard: None,
            undo: Vec::new(),
            read_cache: HashMap::new(),
            written: HashMap::new(),
            aborted: false,
            faults: FaultSession::new(faults, id),
        };
        let body_result = body(&mut txn);
        if txn.faults.crashed() {
            // The injection hook already rolled back and unlocked.
            return TxnOutcome::Crashed;
        }
        if txn.aborted {
            return TxnOutcome::Aborted;
        }
        if body_result.is_err() {
            // The engine never aborts; a voluntary give-up still rolls
            // back under the held writer lock.
            recorder.invoke(id, Op::TryAbort);
            for (obj, original) in txn.undo.drain(..).rev() {
                *self.cell(obj).write() = original;
            }
            drop(txn.writer_guard.take());
            recorder.respond(id, Ret::Aborted);
            return TxnOutcome::Aborted;
        }
        recorder.invoke(id, Op::TryCommit);
        match txn.faults.fault(FaultPoint::WriteBack) {
            Some(InjectedFault::Abort) => {
                // Forced abort at commit: give up as a voluntary abort
                // would — roll back under the lock, record `A_k`.
                txn.recover();
                recorder.respond(id, Ret::Aborted);
                return TxnOutcome::Aborted;
            }
            Some(InjectedFault::Crash) => {
                txn.recover();
                return TxnOutcome::Crashed;
            }
            None => {}
        }
        drop(txn.writer_guard.take());
        recorder.respond(id, Ret::Committed);
        TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ObjId {
        ObjId::new(i)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    #[test]
    fn writes_are_visible_before_try_commit() {
        let engine = Pessimistic::new(1);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(1))?;
            // Mid-transaction, the store already holds the new value.
            assert_eq!(*engine.cell(x(0)).read(), v(1));
            Ok(())
        });
    }

    #[test]
    fn never_aborts_under_contention() {
        use std::sync::Arc;
        let engine = Arc::new(Pessimistic::new(2));
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let engine = Arc::clone(&engine);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let out = engine.run_txn(&recorder, &mut |t| {
                            t.write(x(0), v(k * 100 + i))?;
                            t.write(x(1), v(k * 100 + i))
                        });
                        assert!(out.is_committed());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn voluntary_give_up_rolls_back() {
        let engine = Pessimistic::new(1);
        let recorder = Recorder::new();
        let out = engine.run_txn(&recorder, &mut |t| {
            t.write(x(0), v(9))?;
            Err(Aborted)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(*engine.cell(x(0)).read(), Value::INITIAL);
        // The lock is released: another writer proceeds.
        assert!(engine
            .run_txn(&recorder, &mut |t| t.write(x(0), v(1)))
            .is_committed());
    }

    #[test]
    fn sequential_use_is_legal() {
        let engine = Pessimistic::new(2);
        let recorder = Recorder::new();
        engine.run_txn(&recorder, &mut |t| t.write(x(0), v(3)));
        engine.run_txn(&recorder, &mut |t| {
            assert_eq!(t.read(x(0))?, v(3));
            Ok(())
        });
        assert!(recorder.into_history().is_legal());
    }
}
