//! The transaction-facing API shared by all engines.

use duop_history::{ObjId, Value};
use std::error::Error;
use std::fmt;

/// The transaction has aborted; the current attempt must stop.
///
/// Returned by [`Transaction::read`] and [`Transaction::write`] when the
/// engine kills the transaction (validation failure, lock conflict, ...).
/// The abort event `A_k` has already been recorded when this is returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted;

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted")
    }
}

impl Error for Aborted {}

/// Operations available inside a transaction body.
///
/// Reads are cached: only the first read of each t-object performs (and
/// records) a t-operation, matching the model's at-most-one-read-per-object
/// assumption; subsequent reads, and reads of objects the transaction has
/// written, are served from the transaction's private state without
/// recording.
pub trait Transaction {
    /// Reads a t-object.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] if the engine aborts the transaction (e.g. on
    /// validation failure).
    fn read(&mut self, obj: ObjId) -> Result<Value, Aborted>;

    /// Writes a value to a t-object.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] if the engine aborts the transaction (e.g. on a
    /// lock conflict in an encounter-time engine).
    fn write(&mut self, obj: ObjId, value: Value) -> Result<(), Aborted>;
}

/// Result of one transaction attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The attempt committed (`C_k` recorded).
    Committed,
    /// The attempt aborted (`A_k` recorded) — either the engine killed it
    /// or commit-time validation failed.
    Aborted,
    /// An injected crash stopped the attempt mid-flight: no terminating
    /// event was recorded, so the history keeps a pending operation or a
    /// commit-pending `tryC`. The engine has already recovered its shared
    /// state silently (see [`crate::FaultPlan`]).
    Crashed,
}

impl TxnOutcome {
    /// Returns `true` for [`TxnOutcome::Committed`].
    pub fn is_committed(self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }

    /// Returns `true` for [`TxnOutcome::Crashed`].
    pub fn is_crashed(self) -> bool {
        matches!(self, TxnOutcome::Crashed)
    }
}

/// A software transactional memory engine that records its histories.
///
/// Engines are shared across threads ([`Send`] + [`Sync`]); each
/// [`run_txn`](Engine::run_txn) call performs one transaction *attempt* —
/// retrying after an abort is the caller's business (and produces a fresh
/// transaction identifier, as the model requires).
pub trait Engine: Send + Sync {
    /// Human-readable engine name.
    fn name(&self) -> &'static str;

    /// Number of t-objects in the store.
    fn objects(&self) -> u32;

    /// Runs one transaction attempt under a fault schedule: allocates an
    /// id, executes `body` against a fresh transaction — injecting forced
    /// aborts, crashes and delays at this engine's injection points per
    /// `faults` — and, if the body completes without aborting or crashing,
    /// attempts to commit.
    ///
    /// If `body` returns `Err(Aborted)` the attempt counts as aborted (the
    /// abort response is already recorded). An injected crash yields
    /// [`TxnOutcome::Crashed`] with no terminating event recorded.
    fn run_txn_faulted(
        &self,
        recorder: &crate::Recorder,
        faults: &crate::FaultPlan,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome;

    /// Runs one transaction attempt with no fault injection.
    fn run_txn(
        &self,
        recorder: &crate::Recorder,
        body: &mut dyn FnMut(&mut dyn Transaction) -> Result<(), Aborted>,
    ) -> TxnOutcome {
        self.run_txn_faulted(recorder, &crate::faults::NO_FAULTS, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessor() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Aborted.is_committed());
    }

    #[test]
    fn aborted_displays() {
        assert_eq!(Aborted.to_string(), "transaction aborted");
    }
}
