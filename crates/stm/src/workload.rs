//! Multi-threaded workload driving and history capture.

use crate::{Aborted, Engine, FaultPlan, Recorder, Transaction, TxnOutcome};
use duop_history::{History, ObjId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters of a randomized read/write workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Worker threads.
    pub threads: usize,
    /// Logical transactions per thread (each may be attempted several
    /// times; every attempt is a fresh transaction in the history).
    pub txns_per_thread: usize,
    /// Inclusive range of data operations per transaction.
    pub ops_per_txn: (usize, usize),
    /// Probability that a data operation is a read.
    pub read_ratio: f64,
    /// Give every write a globally unique value; otherwise draw from a
    /// small domain (1..=3), which permits ABA patterns.
    pub unique_values: bool,
    /// Maximum attempts per logical transaction (1 = no retry).
    pub max_attempts: usize,
    /// Yield the OS thread between operations, widening race windows —
    /// useful when hunting for rare interleavings.
    pub yield_between_ops: bool,
    /// Base RNG seed (each thread derives its own).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            txns_per_thread: 10,
            ops_per_txn: (1, 4),
            read_ratio: 0.6,
            unique_values: true,
            max_attempts: 3,
            yield_between_ops: false,
            seed: 0,
        }
    }
}

/// Aggregate outcome of a workload run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Transaction attempts that committed.
    pub committed: usize,
    /// Transaction attempts that aborted.
    pub aborted: usize,
    /// Transaction attempts stopped by an injected crash (never retried).
    pub crashed: usize,
}

impl WorkloadStats {
    /// Total attempts.
    pub fn attempts(&self) -> usize {
        self.committed + self.aborted + self.crashed
    }
}

/// Runs the workload against `engine` on `config.threads` OS threads and
/// returns the recorded history with attempt statistics.
///
/// Each logical transaction executes a random straight-line body (reads
/// and writes over the engine's objects); aborted attempts are retried up
/// to `max_attempts`, every attempt appearing in the history under a fresh
/// transaction identifier, exactly as the paper's model prescribes.
pub fn run_workload(engine: &dyn Engine, config: &WorkloadConfig) -> (History, WorkloadStats) {
    run_workload_faulted(engine, config, &FaultPlan::none())
}

/// As [`run_workload`], but every transaction attempt runs under the given
/// [`FaultPlan`]: forced aborts are retried like genuine ones, an injected
/// crash ends its logical transaction (crashed attempts are never retried),
/// and — per the plan's `thread-crash` probability — may stop the worker
/// thread entirely, abandoning its remaining transactions mid-run.
pub fn run_workload_faulted(
    engine: &dyn Engine,
    config: &WorkloadConfig,
    faults: &FaultPlan,
) -> (History, WorkloadStats) {
    let recorder = Recorder::new();
    let unique_counter = AtomicU64::new(1);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let crashed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for tid in 0..config.threads {
            let recorder = &recorder;
            let unique_counter = &unique_counter;
            let committed = &committed;
            let aborted = &aborted;
            let crashed = &crashed;
            let config = config.clone();
            scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9));
                'thread: for _ in 0..config.txns_per_thread {
                    // Plan the body once per logical transaction.
                    let ops = plan_ops(&mut rng, engine.objects(), &config, unique_counter);
                    for attempt in 0..config.max_attempts.max(1) {
                        let mut body = |txn: &mut dyn Transaction| -> Result<(), Aborted> {
                            for op in &ops {
                                match *op {
                                    PlannedOp::Read(obj) => {
                                        txn.read(obj)?;
                                    }
                                    PlannedOp::Write(obj, v) => txn.write(obj, v)?,
                                }
                                if config.yield_between_ops {
                                    std::thread::yield_now();
                                }
                            }
                            Ok(())
                        };
                        let last = recorder.peek_next_txn();
                        match engine.run_txn_faulted(recorder, faults, &mut body) {
                            TxnOutcome::Committed => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            TxnOutcome::Aborted => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                                let _ = attempt;
                            }
                            TxnOutcome::Crashed => {
                                crashed.fetch_add(1, Ordering::Relaxed);
                                if faults.crash_kills_thread(last) {
                                    // The whole worker dies with its
                                    // transaction.
                                    break 'thread;
                                }
                                // A crashed transaction is gone for good;
                                // its logical work is not retried.
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = WorkloadStats {
        committed: committed.load(Ordering::Relaxed) as usize,
        aborted: aborted.load(Ordering::Relaxed) as usize,
        crashed: crashed.load(Ordering::Relaxed) as usize,
    };
    (recorder.into_history(), stats)
}

#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    Read(ObjId),
    Write(ObjId, Value),
}

fn plan_ops(
    rng: &mut StdRng,
    objects: u32,
    config: &WorkloadConfig,
    unique_counter: &AtomicU64,
) -> Vec<PlannedOp> {
    let count =
        rng.gen_range(config.ops_per_txn.0..=config.ops_per_txn.1.max(config.ops_per_txn.0));
    (0..count)
        .map(|_| {
            let obj = ObjId::new(rng.gen_range(0..objects.max(1)));
            if rng.gen_bool(config.read_ratio) {
                PlannedOp::Read(obj)
            } else {
                let value = if config.unique_values {
                    Value::new(unique_counter.fetch_add(1, Ordering::Relaxed))
                } else {
                    Value::new(rng.gen_range(1..=3))
                };
                PlannedOp::Write(obj, value)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{DirtyRead, Eager2Pl, NoRec, Tl2};

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            threads: 4,
            txns_per_thread: 8,
            ops_per_txn: (1, 3),
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 3,
            yield_between_ops: false,
            seed: 7,
        }
    }

    #[test]
    fn tl2_workload_records_history() {
        let engine = Tl2::new(4);
        let (h, stats) = run_workload(&engine, &small());
        assert!(stats.committed > 0);
        assert_eq!(h.txn_count(), stats.attempts());
        assert!(h.is_t_complete());
    }

    #[test]
    fn norec_workload_records_history() {
        let engine = NoRec::new(4);
        let (h, stats) = run_workload(&engine, &small());
        assert!(stats.committed > 0);
        assert_eq!(h.txn_count(), stats.attempts());
    }

    #[test]
    fn two_pl_workload_records_history() {
        let engine = Eager2Pl::new(4);
        let (h, stats) = run_workload(&engine, &small());
        assert!(stats.committed > 0);
        assert_eq!(h.txn_count(), stats.attempts());
    }

    #[test]
    fn dirty_workload_records_history() {
        let engine = DirtyRead::new(4);
        let (h, stats) = run_workload(&engine, &small());
        assert_eq!(stats.aborted, 0, "dirty engine never aborts");
        assert_eq!(h.txn_count(), stats.attempts());
    }

    #[test]
    fn faulted_run_records_crashes_as_pending_transactions() {
        let engine = Tl2::new(4);
        let plan = FaultPlan::parse("abort=0.1,crash=0.25")
            .unwrap()
            .with_seed(1);
        let cfg = WorkloadConfig {
            threads: 1,
            ..small()
        };
        let (h, stats) = run_workload_faulted(&engine, &cfg, &plan);
        assert!(stats.crashed > 0, "crash plan injected nothing: {stats:?}");
        assert_eq!(h.txn_count(), stats.attempts());
        // Crashed transactions leave the history t-incomplete.
        assert!(!h.is_t_complete());
    }

    #[test]
    fn faulted_single_thread_runs_are_deterministic() {
        let plan = FaultPlan::parse("abort=0.1,crash=0.2,delay=0.3")
            .unwrap()
            .with_seed(11);
        let cfg = WorkloadConfig {
            threads: 1,
            ..small()
        };
        let (a, sa) = run_workload_faulted(&Tl2::new(4), &cfg, &plan);
        let (b, sb) = run_workload_faulted(&Tl2::new(4), &cfg, &plan);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn thread_crash_abandons_remaining_transactions() {
        let engine = Tl2::new(4);
        let plan = FaultPlan::parse("crash=1,thread-crash=1").unwrap();
        let cfg = WorkloadConfig {
            threads: 2,
            ..small()
        };
        let (h, stats) = run_workload_faulted(&engine, &cfg, &plan);
        // Every thread dies on its first transaction.
        assert_eq!(stats.crashed, 2);
        assert_eq!(stats.committed + stats.aborted, 0);
        assert_eq!(h.txn_count(), 2);
    }

    #[test]
    fn single_thread_runs_are_deterministic_histories() {
        let cfg = WorkloadConfig {
            threads: 1,
            ..small()
        };
        let engine = Tl2::new(4);
        let (a, _) = run_workload(&engine, &cfg);
        let engine2 = Tl2::new(4);
        let (b, _) = run_workload(&engine2, &cfg);
        assert_eq!(a, b);
    }
}
