//! End-to-end validation: real multi-threaded STM executions checked
//! against the paper's criteria (the Section 5 claim that du-opacity
//! captures the histories of practical deferred-update TMs).

use duop_core::{check_witness, Criterion, CriterionKind, DuOpacity, FinalStateOpacity};
use duop_stm::engines::{DirtyRead, Eager2Pl, NoRec, Tl2};
use duop_stm::{run_workload, Engine, WorkloadConfig};

fn config(seed: u64, unique: bool) -> WorkloadConfig {
    WorkloadConfig {
        threads: 4,
        txns_per_thread: 10,
        ops_per_txn: (1, 4),
        read_ratio: 0.6,
        unique_values: unique,
        max_attempts: 3,
        yield_between_ops: false,
        seed,
    }
}

#[test]
fn tl2_histories_are_du_opaque() {
    for seed in 0..10 {
        let engine = Tl2::new(6);
        let (h, stats) = run_workload(&engine, &config(seed, true));
        assert!(stats.committed > 0);
        let verdict = DuOpacity::new().check(&h);
        assert!(
            verdict.is_satisfied(),
            "TL2 produced a non-du-opaque history at seed {seed}: {verdict}\n{h}"
        );
        let w = verdict.witness().unwrap();
        assert_eq!(check_witness(&h, w, CriterionKind::DuOpacity), Ok(()));
    }
}

#[test]
fn tl2_histories_with_small_value_domain_are_du_opaque() {
    // Version-based validation has no ABA hole, so TL2 stays du-opaque
    // even when values collide.
    for seed in 0..10 {
        let engine = Tl2::new(3);
        let (h, _) = run_workload(&engine, &config(seed, false));
        assert!(
            DuOpacity::new().check(&h).is_satisfied(),
            "TL2 non-du-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn norec_histories_with_unique_values_are_du_opaque() {
    // Unique values rule out ABA, closing NOrec's value-validation hole.
    for seed in 0..10 {
        let engine = NoRec::new(6);
        let (h, _) = run_workload(&engine, &config(seed, true));
        assert!(
            DuOpacity::new().check(&h).is_satisfied(),
            "NOrec non-du-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn norec_histories_are_final_state_opaque_even_with_aba() {
    // With a colliding value domain NOrec may lose du-opacity to ABA, but
    // final-state opacity must survive.
    for seed in 0..10 {
        let engine = NoRec::new(3);
        let (h, _) = run_workload(&engine, &config(seed, false));
        assert!(
            FinalStateOpacity::new().check(&h).is_satisfied(),
            "NOrec non-final-state-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn eager_2pl_histories_are_du_opaque() {
    for seed in 0..10 {
        let engine = Eager2Pl::new(6);
        let (h, _) = run_workload(&engine, &config(seed, false));
        assert!(
            DuOpacity::new().check(&h).is_satisfied(),
            "eager 2PL non-du-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn dirty_read_engine_violates_du_opacity() {
    // The negative control: with write-heavy contention the dirty engine
    // must eventually produce a rejected history. The interleaving is
    // timing-dependent, so hunt across seeds with yields widening the
    // race windows and stop at the first catch.
    let mut caught = false;
    for seed in 0..200 {
        let engine = DirtyRead::new(1);
        let cfg = WorkloadConfig {
            threads: 8,
            txns_per_thread: 16,
            ops_per_txn: (3, 6),
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 1,
            yield_between_ops: true,
            seed,
        };
        let (h, _) = run_workload(&engine, &cfg);
        if DuOpacity::new().check(&h).is_violated() {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "dirty-read engine produced no du-opacity violation in 200 contended runs"
    );
}

#[test]
fn engine_names_and_sizes() {
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(Tl2::new(5)),
        Box::new(NoRec::new(5)),
        Box::new(Eager2Pl::new(5)),
        Box::new(DirtyRead::new(5)),
    ];
    let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
    assert_eq!(names, vec!["TL2", "NOrec", "eager 2PL", "dirty-read"]);
    for e in &engines {
        assert_eq!(e.objects(), 5);
    }
}

#[test]
fn dstm_histories_are_du_opaque() {
    use duop_stm::engines::Dstm;
    for seed in 0..10 {
        let engine = Dstm::new(6);
        let (h, stats) = run_workload(&engine, &config(seed, true));
        assert!(stats.committed > 0);
        assert!(
            DuOpacity::new().check(&h).is_satisfied(),
            "DSTM non-du-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn dstm_histories_with_small_value_domain_are_du_opaque() {
    // Stamp-based (identity) validation has no ABA hole.
    use duop_stm::engines::Dstm;
    for seed in 0..10 {
        let engine = Dstm::new(3);
        let (h, _) = run_workload(&engine, &config(seed, false));
        assert!(
            DuOpacity::new().check(&h).is_satisfied(),
            "DSTM non-du-opaque at seed {seed}:\n{h}"
        );
    }
}

#[test]
fn pessimistic_engine_never_aborts_but_violates_du_opacity() {
    // Section 5 of the paper: the pessimistic (no-abort, in-place) STM is
    // not du-opaque. Hunt contended interleavings until the checker
    // catches one.
    use duop_stm::engines::Pessimistic;
    let mut caught = false;
    let mut total_aborts = 0;
    for seed in 0..200 {
        let engine = Pessimistic::new(2);
        let cfg = WorkloadConfig {
            threads: 8,
            txns_per_thread: 12,
            ops_per_txn: (2, 5),
            read_ratio: 0.5,
            unique_values: true,
            max_attempts: 1,
            yield_between_ops: true,
            seed,
        };
        let (h, stats) = run_workload(&engine, &cfg);
        total_aborts += stats.aborted;
        if DuOpacity::new().check(&h).is_violated() {
            caught = true;
            break;
        }
    }
    assert_eq!(total_aborts, 0, "the pessimistic engine never aborts");
    assert!(
        caught,
        "pessimistic engine produced no du-opacity violation in 200 contended runs"
    );
}

#[test]
fn corrupted_stm_traces_are_rejected() {
    // Take a certified-safe TL2 trace, corrupt one read value, and confirm
    // the checker catches the tampering — the monitoring use-case.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let engine = Tl2::new(6);
    let (h, _) = run_workload(&engine, &config(5, true));
    assert!(DuOpacity::new().check(&h).is_satisfied());
    let mut rng = StdRng::seed_from_u64(99);
    let mut rejected = 0;
    let mut mutated = 0;
    for _ in 0..20 {
        if let Some(m) = duop_gen::mutate::corrupt_read_value(&h, &mut rng) {
            mutated += 1;
            if DuOpacity::new().check(&m).is_violated() {
                rejected += 1;
            }
        }
    }
    assert!(mutated > 0);
    // With unique write values, changing a read value orphans it: every
    // mutation must be caught.
    assert_eq!(
        rejected, mutated,
        "all corrupted unique-value reads must be rejected"
    );
}
