//! Malformed-HTTP corpus: every request in this file is wrong in some
//! way — oversized headers, bad chunked encoding, bodies truncated at
//! every offset, wrong content types, garbage appended to a valid
//! binary frame — and the daemon must answer each with a structured 4xx
//! (or a clean close for a dead connection), stay alive, and never
//! panic. A well-formed request at the end of the run proves the server
//! survived the whole corpus.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use duop_serve::{ServeConfig, Server, ShutdownHandle};

/// Spawns an in-process daemon on an ephemeral port, returning its
/// address, shutdown handle, and run-loop join handle.
fn spawn_server() -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("server run");
    });
    (addr, handle, join)
}

/// Sends raw bytes on a fresh connection and returns whatever the
/// server wrote back before closing (possibly empty — a clean close).
fn raw_exchange(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

/// The HTTP status code of a raw response, if one was written.
fn status_of(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response).ok()?;
    text.strip_prefix("HTTP/1.1 ")?[..3].parse().ok()
}

/// Asserts the response is a structured 4xx — never a 5xx, never a
/// panic-shaped half-reply.
fn assert_4xx(response: &[u8], what: &str) {
    let status = status_of(response).unwrap_or_else(|| {
        panic!(
            "{what}: no HTTP status in {:?}",
            String::from_utf8_lossy(response)
        )
    });
    assert!(
        (400..500).contains(&status),
        "{what}: expected 4xx, got {status}"
    );
}

/// Proves the daemon still works: create a session, stream a clean
/// trace, read back a satisfied verdict.
fn assert_alive(addr: &str) {
    let create = raw_exchange(
        addr,
        b"POST /v1/session HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&create), Some(201), "session create after corpus");
    let body_text = String::from_utf8_lossy(&create);
    let sid: u64 = body_text
        .rsplit("\"session\":")
        .next()
        .and_then(|s| s.trim_end().trim_end_matches('}').trim().parse().ok())
        .expect("session id");
    let trace = b"T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\n";
    let req = format!(
        "POST /v1/session/{sid}/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         Content-Type: text/plain\r\nContent-Length: {}\r\n\r\n",
        trace.len()
    );
    let mut bytes = req.into_bytes();
    bytes.extend_from_slice(trace);
    assert_eq!(
        status_of(&raw_exchange(addr, &bytes)),
        Some(200),
        "ingest after corpus"
    );
    let verdict = raw_exchange(
        addr,
        format!("GET /v1/session/{sid}/verdict HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    );
    assert_eq!(status_of(&verdict), Some(200), "verdict after corpus");
    assert!(
        String::from_utf8_lossy(&verdict).contains("satisfied"),
        "clean trace should be satisfied"
    );
}

#[test]
fn malformed_corpus_never_kills_the_daemon() {
    let (addr, handle, join) = spawn_server();

    // --- request-line and header malformations ---
    assert_4xx(
        &raw_exchange(&addr, b"GARBAGE\r\n\r\n"),
        "no-HTTP request line",
    );
    assert_4xx(
        &raw_exchange(&addr, b"GET /metrics HTTP/0.9\r\n\r\n"),
        "unsupported HTTP version",
    );
    assert_4xx(
        &raw_exchange(&addr, b"GET metrics HTTP/1.1\r\n\r\n"),
        "non-absolute target",
    );
    assert_4xx(
        &raw_exchange(
            &addr,
            b"POST /v1/session/1/events HTTP/1.1\r\nHost: x\r\n\r\n",
        ),
        "POST without a length",
    );

    // Oversized header block: one header far past the 8 KiB head budget.
    let mut huge = b"GET /metrics HTTP/1.1\r\nX-Pad: ".to_vec();
    huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
    huge.extend_from_slice(b"\r\n\r\n");
    assert_4xx(&raw_exchange(&addr, &huge), "oversized header block");

    // Too many headers.
    let mut many = b"GET /metrics HTTP/1.1\r\n".to_vec();
    for i in 0..200 {
        many.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
    }
    many.extend_from_slice(b"\r\n");
    assert_4xx(&raw_exchange(&addr, &many), "too many headers");

    // Declared body bigger than the server will buffer.
    assert_4xx(
        &raw_exchange(
            &addr,
            b"POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999999\r\n\r\n",
        ),
        "absurd content-length",
    );

    // --- chunked-encoding malformations ---
    assert_4xx(
        &raw_exchange(
            &addr,
            b"POST /v1/session HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\nZZZ\r\nhi\r\n0\r\n\r\n",
        ),
        "non-hex chunk size",
    );
    assert_4xx(
        &raw_exchange(
            &addr,
            b"POST /v1/session HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n",
        ),
        "chunk without CRLF terminator",
    );
    // Truncated mid-chunk: connection dies before the declared bytes
    // arrive. The server may reply 400 or just close; it must survive.
    let resp = raw_exchange(
        &addr,
        b"POST /v1/session HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nshort",
    );
    if let Some(status) = status_of(&resp) {
        assert!(
            (400..500).contains(&status),
            "truncated chunk: got {status}"
        );
    }

    // --- bodies truncated at every offset ---
    let full = b"POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n0123456789";
    for cut in 0..full.len() {
        let resp = raw_exchange(&addr, &full[..cut]);
        if let Some(status) = status_of(&resp) {
            assert!(
                (200..500).contains(&status),
                "truncation at {cut}: got {status}"
            );
        }
        // No response at all is also fine: a dead connection gets a
        // clean close, not a hang or a crash.
    }

    // --- payload malformations against a real session ---
    let create = raw_exchange(
        &addr,
        b"POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&create), Some(201));
    let sid: u64 = String::from_utf8_lossy(&create)
        .rsplit("\"session\":")
        .next()
        .and_then(|s| s.trim_end().trim_end_matches('}').trim().parse().ok())
        .expect("session id");

    // Wrong content-type: binary magic under text/plain parses as a
    // trace and must fail structurally, not crash.
    let mut wrong_type = format!(
        "POST /v1/session/{sid}/events HTTP/1.1\r\nHost: x\r\nContent-Type: text/plain\r\nContent-Length: 8\r\n\r\n"
    )
    .into_bytes();
    wrong_type.extend_from_slice(b"DUOB\x01\x00\x00\x00");
    assert_4xx(&raw_exchange(&addr, &wrong_type), "binary bytes as text");

    // Garbage after a valid .duob frame: encode a real history, then
    // append junk — the reader must reject the trailing bytes.
    let h = duop_history::trace::parse_trace("T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\n").unwrap();
    let mut duob = duop_history::binary::encode(&h);
    duob.extend_from_slice(b"\xde\xad\xbe\xef trailing garbage");
    let mut frame_req = format!(
        "POST /v1/session/{sid}/events HTTP/1.1\r\nHost: x\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
        duob.len()
    )
    .into_bytes();
    frame_req.extend_from_slice(&duob);
    assert_4xx(
        &raw_exchange(&addr, &frame_req),
        "garbage after .duob frame",
    );

    // Malformed trace semantics: a response for a transaction that never
    // invoked anything.
    let bad_trace = b"T7 commit\n";
    let mut bad_req = format!(
        "POST /v1/session/{sid}/events HTTP/1.1\r\nHost: x\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n",
        bad_trace.len()
    )
    .into_bytes();
    bad_req.extend_from_slice(bad_trace);
    assert_4xx(
        &raw_exchange(&addr, &bad_req),
        "semantically malformed trace",
    );

    // Unknown routes and methods.
    assert_eq!(
        status_of(&raw_exchange(
            &addr,
            b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
        )),
        Some(404),
        "unknown route"
    );
    assert_eq!(
        status_of(&raw_exchange(
            &addr,
            b"PATCH /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )),
        Some(404),
        "unsupported method on known path"
    );
    assert_4xx(
        &raw_exchange(
            &addr,
            b"GET /v1/session/notanumber/verdict HTTP/1.1\r\nHost: x\r\n\r\n",
        ),
        "non-numeric session id",
    );
    assert_eq!(
        status_of(&raw_exchange(
            &addr,
            b"GET /v1/session/999999/verdict HTTP/1.1\r\nHost: x\r\n\r\n"
        )),
        Some(404),
        "unknown session id"
    );

    // After the whole corpus, the daemon still serves correct verdicts.
    assert_alive(&addr);

    handle.shutdown();
    join.join().expect("server thread");
}
