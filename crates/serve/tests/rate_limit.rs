//! Per-client rate limiting: with `--peer-rps N`, a client address that
//! exceeds N session-route requests in a one-second window gets a
//! structured `429 Retry-After`, the throttle is visible in `/metrics`
//! (which is itself exempt), and the next window serves the peer again.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use duop_serve::{ServeConfig, Server, ShutdownHandle};

fn spawn_server(peer_rps: u64) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        peer_rps,
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("server run");
    });
    (addr, handle, join)
}

fn raw_exchange(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response).ok()?;
    text.strip_prefix("HTTP/1.1 ")?[..3].parse().ok()
}

fn create_session(addr: &str) -> Vec<u8> {
    raw_exchange(
        addr,
        b"POST /v1/session HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    )
}

#[test]
fn over_limit_peer_gets_429_with_retry_after_and_metrics_count_it() {
    let (addr, handle, join) = spawn_server(2);

    // The first two requests in the window fit the budget...
    assert_eq!(status_of(&create_session(&addr)), Some(201));
    assert_eq!(status_of(&create_session(&addr)), Some(201));

    // ...and everything past it this second is shed with a hint. A few
    // extra attempts guard against a window rolling over mid-test.
    let mut throttled = 0u64;
    for _ in 0..4 {
        let resp = create_session(&addr);
        if status_of(&resp) == Some(429) {
            throttled += 1;
            let text = String::from_utf8_lossy(&resp);
            assert!(
                text.to_ascii_lowercase().contains("retry-after:"),
                "429 must carry Retry-After:\n{text}"
            );
        }
    }
    assert!(throttled >= 3, "expected shed requests, got {throttled}");

    // `/metrics` is exempt from the limit and reports the sheds.
    let metrics = raw_exchange(
        &addr,
        b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(
        status_of(&metrics),
        Some(200),
        "metrics must never throttle"
    );
    let text = String::from_utf8_lossy(&metrics);
    let line = text
        .lines()
        .find(|l| l.starts_with("duop_serve_throttled_requests"))
        .expect("throttled counter exported");
    let count: u64 = line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("counter value parses");
    assert!(
        count >= throttled,
        "metrics undercount the sheds: {count} < {throttled}"
    );

    // The next window serves the same peer again.
    std::thread::sleep(Duration::from_millis(1100));
    assert_eq!(
        status_of(&create_session(&addr)),
        Some(201),
        "a fresh window must clear the throttle"
    );

    handle.shutdown();
    join.join().expect("clean shutdown");
}

#[test]
fn zero_disables_the_limit() {
    let (addr, handle, join) = spawn_server(0);
    for _ in 0..8 {
        assert_eq!(status_of(&create_session(&addr)), Some(201));
    }
    handle.shutdown();
    join.join().expect("clean shutdown");
}
