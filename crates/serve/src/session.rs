//! One daemon session: an [`OnlineChecker`] plus the bookkeeping the
//! service layer needs — acknowledged-event counts, a hard retained-event
//! budget with sound degradation, and checkpoint round-tripping through
//! the [`duop_core::snapshot`] session variant.

use std::time::Instant;

use duop_core::online::{OnlineChecker, OnlineStats};
use duop_core::snapshot::{Fragment, SessionSnapshot, WitnessSnap};
use duop_core::{Criterion, DuOpacity, PartialProgress, SearchConfig, UnknownReason, Verdict};
use duop_history::{Event, History, MalformedHistoryError};

/// What one ingest batch did to the session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events acknowledged by this batch (pushed or, once degraded,
    /// counted-but-dropped).
    pub accepted: u64,
    /// Events of this batch counted-but-dropped because the session is
    /// degraded.
    pub discarded: u64,
    /// Whether this batch pushed the session into degraded mode.
    pub newly_degraded: bool,
}

/// A live checking session.
#[derive(Debug)]
pub struct Session {
    /// Daemon-assigned id.
    pub id: u64,
    checker: OnlineChecker,
    /// Total events acknowledged (pushed + discarded). Clients resume
    /// re-streaming from this offset after a daemon restart.
    ingested: u64,
    /// Events acknowledged but not retained after degradation.
    discarded: u64,
    /// Hard cap on retained events (`None` = unbounded).
    budget: Option<usize>,
    degraded: bool,
    /// Last ingest/verdict activity, for idle reaping.
    pub last_activity: Instant,
    /// Ingest requests since the last checkpoint flush.
    pub dirty_posts: u64,
}

impl Session {
    /// Creates an empty session. `budget` is the hard retained-event cap;
    /// the checker's automatic compaction is armed at the same threshold
    /// so the budget *drives* compaction before it forces degradation.
    pub fn new(id: u64, budget: Option<usize>) -> Self {
        let mut checker = OnlineChecker::new();
        checker.set_compact_every(budget);
        Session {
            id,
            checker,
            ingested: 0,
            discarded: 0,
            budget,
            degraded: false,
            last_activity: Instant::now(),
            dirty_posts: 0,
        }
    }

    /// Total acknowledged events.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Events currently retained in the checker's history.
    pub fn retained(&self) -> usize {
        self.checker.history().len()
    }

    /// Whether the retained-event budget has forced the session to stop
    /// retaining events.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether a (final, Corollary 2) violation has been observed.
    pub fn violated(&self) -> bool {
        self.checker.violation().is_some()
    }

    /// Ingests one batch of already-parsed events.
    ///
    /// Events are pushed one at a time through the online checker. When a
    /// push would grow the retained history past the budget, the session
    /// first asks the checker to compact; if compaction cannot reclaim
    /// space (open transactions, or an uncertified prefix) the session
    /// *degrades*: this and all later events are acknowledged and counted
    /// but not retained, so the budget is never exceeded. A violation
    /// observed before degradation stays final either way.
    ///
    /// # Errors
    ///
    /// A malformed event (one that does not extend the history to a
    /// well-formed one) stops the batch; events before it stay ingested
    /// and the report rides along in the error so the handler can tell
    /// the client how far it got.
    pub fn ingest(
        &mut self,
        events: &[Event],
    ) -> Result<IngestReport, (MalformedHistoryError, IngestReport)> {
        let mut report = IngestReport::default();
        self.last_activity = Instant::now();
        for &event in events {
            if !self.degraded {
                if let Some(budget) = self.budget {
                    if self.checker.history().len() >= budget && self.checker.violation().is_none()
                    {
                        // At the cap: compaction is the only way to admit
                        // the event without exceeding the budget.
                        self.checker.try_compact();
                        if self.checker.history().len() >= budget {
                            self.degraded = true;
                            report.newly_degraded = true;
                        }
                    }
                }
            }
            if self.degraded && !self.violated() {
                self.ingested += 1;
                self.discarded += 1;
                report.accepted += 1;
                report.discarded += 1;
                continue;
            }
            match self.checker.push(event) {
                Ok(_) => {
                    self.ingested += 1;
                    report.accepted += 1;
                }
                Err(e) => return Err((e, report)),
            }
        }
        self.dirty_posts += 1;
        Ok(report)
    }

    /// The session's current du-opacity verdict.
    ///
    /// For a healthy session this is a fresh batch check of the retained
    /// history with the default configuration — on an uncompacted session
    /// that is, byte for byte, the verdict `duop check --criterion du`
    /// computes for the same trace. A degraded session that has not
    /// violated reports `Unknown{state-budget, partial}` (events were
    /// dropped, so no sound positive verdict exists); a violation stays
    /// reportable forever because violations are prefix-final.
    pub fn verdict(&mut self) -> Verdict {
        self.last_activity = Instant::now();
        if self.degraded && !self.violated() {
            return Verdict::Unknown {
                explored: self.ingested,
                reason: UnknownReason::StateBudget,
                partial: Some(PartialProgress::components(0, 1)),
            };
        }
        DuOpacity::with_config(SearchConfig::default()).check(self.checker.history())
    }

    /// Renders the verdict exactly as the `duop check` transcript line
    /// for the du-opacity criterion (JSON or text mode).
    pub fn verdict_line(&mut self, json: bool) -> String {
        let verdict = self.verdict();
        if json {
            let detail = serde_json::to_string(&verdict).expect("verdicts serialize infallibly");
            format!("{{\"criterion\":\"du-opacity\",\"verdict\":{detail}}}\n")
        } else {
            format!("{:<28} {verdict}\n", "du-opacity")
        }
    }

    /// The checker's work counters.
    pub fn stats(&self) -> OnlineStats {
        self.checker.stats()
    }

    /// Captures the session as a checkpointable snapshot. Like the
    /// monitor checkpoint, no verdict is serialized — recovery re-derives
    /// any violation from the retained events themselves.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            session: self.id,
            ingested: self.ingested,
            events: self.checker.history().events().to_vec(),
            degraded: self.degraded,
            discarded: self.discarded,
            witness: self.checker.witness().map(WitnessSnap::from_witness),
            stats: self.checker.stats(),
            fragments: self
                .checker
                .export_fragments()
                .into_iter()
                .map(|(members, placements)| Fragment {
                    members,
                    placements,
                })
                .collect(),
            budget: self.budget.unwrap_or(0) as u64,
        }
    }

    /// Rebuilds a session from a checkpoint. The retained history is
    /// revalidated (`History::new` re-checks well-formedness), the
    /// witness is revalidated by [`OnlineChecker::resume`], and any
    /// violation is re-derived by checking the retained events — a
    /// tampered snapshot can cost a recheck, never forge a verdict.
    ///
    /// # Errors
    ///
    /// The history's own well-formedness error if the snapshot's events
    /// do not form a valid history.
    pub fn resume(snap: SessionSnapshot) -> Result<Self, MalformedHistoryError> {
        let history = History::new(snap.events)?;
        let violated = Some(DuOpacity::with_config(SearchConfig::default()).check(&history))
            .filter(|v| v.is_violated());
        let witness = snap.witness.map(WitnessSnap::into_witness);
        let budget = match snap.budget {
            0 => None,
            b => Some(b as usize),
        };
        let mut checker = OnlineChecker::resume(
            history,
            witness,
            violated,
            snap.stats,
            SearchConfig::default(),
        );
        checker.set_compact_every(budget);
        checker.preload_fragments(
            snap.fragments
                .into_iter()
                .map(|f| (f.members, f.placements))
                .collect(),
        );
        Ok(Session {
            id: snap.session,
            checker,
            ingested: snap.ingested,
            discarded: snap.discarded,
            budget,
            degraded: snap.degraded,
            last_activity: Instant::now(),
            dirty_posts: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::trace::parse_trace;

    const GOOD: &str = "\
T1 write X0 1
T1 ok
T1 tryc
T1 commit
T2 read X0
T2 val 1
T2 tryc
T2 commit
";

    const BAD: &str = "\
T1 write X0 1
T1 ok
T2 read X0
T2 val 1
T1 trya
T1 abort
T2 tryc
T2 commit
";

    fn events(trace: &str) -> Vec<Event> {
        parse_trace(trace).unwrap().events().to_vec()
    }

    #[test]
    fn clean_session_matches_batch_check() {
        let mut s = Session::new(1, None);
        let evs = events(GOOD);
        let report = s.ingest(&evs).unwrap();
        assert_eq!(report.accepted, evs.len() as u64);
        let v = s.verdict();
        assert!(v.is_satisfied(), "{v}");
        let h = History::new(events(GOOD)).unwrap();
        let batch = DuOpacity::with_config(SearchConfig::default()).check(&h);
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn dirty_read_violates_and_stays_final() {
        let mut s = Session::new(2, None);
        s.ingest(&events(BAD)).unwrap();
        assert!(s.violated());
        assert!(s.verdict().is_violated());
    }

    #[test]
    fn snapshot_round_trip_preserves_verdict() {
        let mut s = Session::new(3, None);
        s.ingest(&events(GOOD)).unwrap();
        let before = s.verdict_line(true);
        let mut resumed = Session::resume(s.snapshot()).unwrap();
        assert_eq!(resumed.ingested(), s.ingested());
        assert_eq!(resumed.verdict_line(true), before);
    }

    #[test]
    fn budget_degrades_to_unknown_never_exceeds() {
        // Budget of 2 with an open transaction: compaction cannot fire
        // (not t-complete), so the session must degrade.
        let mut s = Session::new(4, Some(2));
        let evs = events(GOOD);
        let report = s.ingest(&evs).unwrap();
        assert_eq!(report.accepted, evs.len() as u64);
        assert!(s.degraded());
        assert!(s.retained() <= 2, "retained {} > budget", s.retained());
        match s.verdict() {
            Verdict::Unknown {
                reason: UnknownReason::StateBudget,
                partial: Some(_),
                ..
            } => {}
            other => panic!("expected degraded unknown, got {other}"),
        }
    }

    #[test]
    fn violation_survives_degradation() {
        let mut s = Session::new(5, Some(64));
        s.ingest(&events(BAD)).unwrap();
        assert!(s.violated());
        // Shrink the budget story: even when later events are dropped,
        // the violation is final.
        s.ingest(&events(GOOD)).unwrap_err(); // T1 reused: malformed
        assert!(s.verdict().is_violated());
    }

    #[test]
    fn malformed_event_reports_partial_progress() {
        let mut s = Session::new(6, None);
        let mut evs = events(GOOD);
        // A response for a transaction that never began is malformed.
        evs.push(Event::resp(
            duop_history::TxnId::new(9),
            duop_history::Ret::Committed,
        ));
        let (_err, report) = s.ingest(&evs).unwrap_err();
        assert_eq!(report.accepted, (evs.len() - 1) as u64);
        assert_eq!(s.ingested(), (evs.len() - 1) as u64);
    }
}
