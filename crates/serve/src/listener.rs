//! Shared accept-loop plumbing: a non-blocking listener polled against a
//! shutdown flag.
//!
//! Both network daemons in the workspace — the HTTP checking daemon
//! (`duop serve`) and the TCP shard-worker daemon (`duop shard-serve`) —
//! need the same socket skeleton: bind, go non-blocking, poll `accept`
//! every few milliseconds so SIGINT/SIGTERM (or an in-process shutdown
//! handle) can interrupt the loop, and set `TCP_NODELAY` on every
//! accepted connection because both protocols are small request/ack
//! round-trips that Nagle + delayed ACK would stall ~40ms each. This
//! module owns that skeleton so the two daemons cannot drift apart.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How long `poll_accept` sleeps when no connection is pending — the
/// latency bound on noticing a shutdown request.
pub const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// One turn of the accept loop.
#[derive(Debug)]
pub enum Accepted {
    /// A connection arrived (already `TCP_NODELAY`); its peer address
    /// rides along for per-client accounting.
    Conn(TcpStream, SocketAddr),
    /// Nothing pending; the poll sleep has already been taken.
    Idle,
    /// The shutdown flag (or the process-wide interrupt) was raised.
    Shutdown,
}

/// Binds `addr` and switches the socket to non-blocking mode so the
/// accept loop stays interruptible.
///
/// # Errors
///
/// Propagates the bind or `set_nonblocking` failure.
pub fn bind_nonblocking(addr: &str) -> io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// Polls the listener once: returns a connection, an idle tick (after
/// sleeping [`ACCEPT_POLL`]), or a shutdown notice when `stop` (or the
/// process-wide interrupt flag) is set.
///
/// # Errors
///
/// A non-transient `accept` failure.
pub fn poll_accept(listener: &TcpListener, stop: &AtomicBool) -> io::Result<Accepted> {
    if stop.load(Ordering::SeqCst) || duop_core::snapshot::interrupt_requested() {
        return Ok(Accepted::Shutdown);
    }
    match listener.accept() {
        Ok((stream, peer)) => {
            stream.set_nodelay(true).ok();
            Ok(Accepted::Conn(stream, peer))
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            std::thread::sleep(ACCEPT_POLL);
            Ok(Accepted::Idle)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn idle_then_conn_then_shutdown() {
        let listener = bind_nonblocking("127.0.0.1:0").unwrap();
        let stop = AtomicBool::new(false);
        assert!(matches!(poll_accept(&listener, &stop), Ok(Accepted::Idle)));
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        // The connection may take a poll or two to surface.
        let mut seen = false;
        for _ in 0..50 {
            if let Ok(Accepted::Conn(_, peer)) = poll_accept(&listener, &stop) {
                assert!(peer.ip().is_loopback());
                seen = true;
                break;
            }
        }
        assert!(seen, "the pending connection never surfaced");
        stop.store(true, Ordering::SeqCst);
        assert!(matches!(
            poll_accept(&listener, &stop),
            Ok(Accepted::Shutdown)
        ));
    }
}
