//! The daemon: a thread-per-connection HTTP/1.1 accept loop multiplexing
//! checking sessions, with idle reaping, global load shedding, periodic
//! per-session checkpointing, eager `--state-dir` recovery, graceful
//! drain on SIGINT/SIGTERM, a Prometheus-style `/metrics` endpoint, and
//! the `DUOP_SERVE_KILL_*` deterministic fault hooks.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use duop_core::snapshot::{self, Snapshot};
use duop_core::Verdict;
use duop_history::reader::TraceReader;
use duop_history::Event;

use crate::http::{self, HttpError, Request, Response};
use crate::listener::{self, Accepted};
use crate::session::Session;

/// Exit code of a fault-hook-induced death (same value as the shard
/// protocol's kill hooks, so test harnesses can share the constant).
pub const KILL_EXIT_CODE: i32 = 83;

/// `DUOP_SERVE_KILL_INGEST=N`: die (exit [`KILL_EXIT_CODE`]) once N
/// total events have been ingested — *before* the batch's checkpoint and
/// acknowledgement, so everything past the last flush is lost.
pub const KILL_INGEST_ENV: &str = "DUOP_SERVE_KILL_INGEST";
/// `DUOP_SERVE_KILL_CHECKPOINT=N`: die immediately before the Nth
/// checkpoint write (mid-checkpoint crash; the atomic temp-file+rename
/// save means the previous checkpoint must survive intact).
pub const KILL_CHECKPOINT_ENV: &str = "DUOP_SERVE_KILL_CHECKPOINT";
/// `DUOP_SERVE_DROP_CONN=N`: drop the Nth accepted connection on the
/// floor without reading or answering it.
pub const DROP_CONN_ENV: &str = "DUOP_SERVE_DROP_CONN";

/// Daemon configuration (the `duop serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (printed on startup).
    pub addr: String,
    /// Checkpoint directory. `None` disables crash safety.
    pub state_dir: Option<String>,
    /// Maximum live sessions; creation beyond it is shed with 429.
    pub session_cap: usize,
    /// Reap sessions idle for longer than this (flushed to the state
    /// dir first, and transparently recovered on next access).
    pub idle_timeout: Duration,
    /// Global ceiling on retained events across all sessions; ingest
    /// beyond it is shed with `429 Retry-After` until compaction or
    /// reaping brings the total back down.
    pub max_retained: Option<u64>,
    /// Default per-session retained-event budget (overridable per
    /// session with `POST /v1/session?budget=N`).
    pub session_budget: Option<usize>,
    /// Flush a session's checkpoint every N ingest requests.
    pub checkpoint_every: u64,
    /// Per-client (peer-address) ceiling on session-route requests per
    /// second; `0` disables it. One hot client is throttled with
    /// `429 Retry-After` before it can crowd out the global ceiling
    /// every other client shares.
    pub peer_rps: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            state_dir: None,
            session_cap: 256,
            idle_timeout: Duration::from_secs(300),
            max_retained: None,
            session_budget: None,
            checkpoint_every: 1,
            peer_rps: 0,
        }
    }
}

/// Why the daemon could not start or crashed out of its accept loop.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic counters and gauges behind `/metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_created: AtomicU64,
    sessions_reaped: AtomicU64,
    sessions_recovered: AtomicU64,
    events_ingested: AtomicU64,
    events_discarded: AtomicU64,
    retained_peak: AtomicU64,
    requests_total: AtomicU64,
    shed_requests: AtomicU64,
    throttled_requests: AtomicU64,
    checkpoints_written: AtomicU64,
    connections_accepted: AtomicU64,
    connections_dropped: AtomicU64,
    verdicts_satisfied: AtomicU64,
    verdicts_violated: AtomicU64,
    verdicts_unknown: AtomicU64,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One peer's fixed-window request tally.
struct PeerWindow {
    start: Instant,
    count: u64,
}

struct State {
    cfg: ServeConfig,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    metrics: Metrics,
    /// Sum of retained events across live sessions (the shedding gauge).
    retained: AtomicU64,
    /// Per-peer request windows for `peer_rps` throttling.
    peers: Mutex<HashMap<IpAddr, PeerWindow>>,
    conns: AtomicU64,
    checkpoints: AtomicU64,
    kill_ingest: Option<u64>,
    kill_checkpoint: Option<u64>,
    drop_conn: Option<u64>,
}

/// A cloneable handle that asks a running server to drain and stop (the
/// in-process equivalent of SIGTERM, used by tests that share the
/// process-wide interrupt flag with other tests).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").finish()
    }
}

impl ShutdownHandle {
    /// Requests a graceful drain.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// The daemon. [`Server::bind`] opens the socket and recovers any
/// checkpointed sessions; [`Server::run`] blocks in the accept loop
/// until a drain is requested.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

fn session_path(dir: &str, id: u64) -> String {
    format!("{dir}/session-{id}.ck")
}

impl Server {
    /// Binds the listen socket and eagerly recovers every loadable
    /// `session-*.ck` checkpoint in the state dir. A corrupt or
    /// unreadable checkpoint is skipped (the daemon must come up), never
    /// trusted: recovery re-derives verdicts from the retained events.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot be bound or the state dir
    /// cannot be created.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = listener::bind_nonblocking(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("{}: {e}", cfg.addr)))?;
        let state = Arc::new(State {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            metrics: Metrics::default(),
            retained: AtomicU64::new(0),
            peers: Mutex::new(HashMap::new()),
            conns: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            kill_ingest: env_u64(KILL_INGEST_ENV),
            kill_checkpoint: env_u64(KILL_CHECKPOINT_ENV),
            drop_conn: env_u64(DROP_CONN_ENV),
            cfg,
        });
        if let Some(dir) = state.cfg.state_dir.clone() {
            std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io(format!("{dir}: {e}")))?;
            recover_sessions(&state, &dir);
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        Ok(Server {
            listener,
            state,
            shutdown,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` ended in
    /// `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket's own failure to report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Sessions recovered from the state dir at bind time.
    pub fn recovered_sessions(&self) -> u64 {
        self.state
            .metrics
            .sessions_recovered
            .load(Ordering::Relaxed)
    }

    /// A handle that triggers the same graceful drain as SIGTERM.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Runs the accept loop until SIGINT/SIGTERM (the process-wide
    /// interrupt flag) or the [`ShutdownHandle`] requests a drain, then
    /// drains: stops accepting, lets in-flight requests finish, flushes
    /// every session to the state dir, and returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a non-transient accept failure.
    pub fn run(self, out: &mut dyn Write) -> Result<(), ServeError> {
        let addr = self.local_addr()?;
        writeln!(out, "listening on {addr}").map_err(|e| ServeError::Io(e.to_string()))?;
        out.flush().ok();
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut last_reap = Instant::now();
        loop {
            match listener::poll_accept(&self.listener, &self.shutdown) {
                Ok(Accepted::Shutdown) => break,
                Ok(Accepted::Idle) => {}
                Ok(Accepted::Conn(stream, peer)) => {
                    let n = self.state.conns.fetch_add(1, Ordering::SeqCst) + 1;
                    self.state
                        .metrics
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if self.state.drop_conn == Some(n) {
                        // Fault hook: hang up without a byte of response.
                        self.state
                            .metrics
                            .connections_dropped
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    stream
                        .set_read_timeout(Some(Duration::from_millis(500)))
                        .ok();
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(&state, &shutdown, stream, peer.ip());
                    }));
                }
                Err(e) => return Err(ServeError::Io(format!("accept: {e}"))),
            }
            workers.retain(|w| !w.is_finished());
            if last_reap.elapsed() >= Duration::from_secs(1) {
                reap_idle(&self.state);
                last_reap = Instant::now();
            }
        }
        // Drain: in-flight requests finish (each worker notices the
        // shutdown flag within one read timeout), then every session is
        // flushed so a restart resumes exactly here.
        self.shutdown.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().ok();
        }
        let flushed = flush_all(&self.state);
        writeln!(out, "drained ({flushed} sessions flushed)")
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(())
    }
}

fn recover_sessions(state: &Arc<State>, dir: &str) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut max_id = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with("session-") || !name.ends_with(".ck") {
            continue;
        }
        let path = format!("{dir}/{name}");
        let snap = match snapshot::load(&path) {
            Ok(Snapshot::Session(s)) => s,
            // A corrupt (or foreign-kind) checkpoint cannot stop the
            // daemon from coming up; it is skipped, not deleted, so the
            // evidence survives for inspection.
            _ => continue,
        };
        match Session::resume(snap) {
            Ok(session) => {
                max_id = max_id.max(session.id);
                state
                    .retained
                    .fetch_add(session.retained() as u64, Ordering::SeqCst);
                state
                    .metrics
                    .sessions_recovered
                    .fetch_add(1, Ordering::Relaxed);
                state
                    .sessions
                    .lock()
                    .unwrap()
                    .insert(session.id, Arc::new(Mutex::new(session)));
            }
            Err(_) => continue,
        }
    }
    bump_retained_peak(state);
    let next = state.next_id.load(Ordering::SeqCst).max(max_id + 1);
    state.next_id.store(next, Ordering::SeqCst);
}

fn bump_retained_peak(state: &State) {
    let now = state.retained.load(Ordering::SeqCst);
    state.metrics.retained_peak.fetch_max(now, Ordering::SeqCst);
}

/// Flushes one session's checkpoint (honouring the mid-checkpoint kill
/// hook). Returns whether a file was written.
fn checkpoint_session(state: &State, session: &mut Session) -> bool {
    let Some(dir) = state.cfg.state_dir.as_deref() else {
        return false;
    };
    let nth = state.checkpoints.fetch_add(1, Ordering::SeqCst) + 1;
    if state.kill_checkpoint == Some(nth) {
        // Fault hook: die mid-checkpoint. The atomic save (temp file +
        // rename) has not started, so the previous checkpoint survives.
        std::process::exit(KILL_EXIT_CODE);
    }
    let snap = Snapshot::Session(session.snapshot());
    if snapshot::save(&session_path(dir, session.id), &snap).is_ok() {
        session.dirty_posts = 0;
        state
            .metrics
            .checkpoints_written
            .fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

fn reap_idle(state: &Arc<State>) {
    let timeout = state.cfg.idle_timeout;
    let mut sessions = state.sessions.lock().unwrap();
    let idle: Vec<u64> = sessions
        .iter()
        .filter(|(_, s)| {
            s.lock()
                .map(|s| s.last_activity.elapsed() >= timeout)
                .unwrap_or(false)
        })
        .map(|(&id, _)| id)
        .collect();
    for id in idle {
        if let Some(arc) = sessions.remove(&id) {
            if let Ok(mut session) = arc.lock() {
                checkpoint_session(state, &mut session);
                state
                    .retained
                    .fetch_sub(session.retained() as u64, Ordering::SeqCst);
            }
            state
                .metrics
                .sessions_reaped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn flush_all(state: &Arc<State>) -> u64 {
    let sessions = state.sessions.lock().unwrap();
    let mut flushed = 0;
    for arc in sessions.values() {
        if let Ok(mut session) = arc.lock() {
            if checkpoint_session(state, &mut session) {
                flushed += 1;
            }
        }
    }
    flushed
}

fn handle_connection(
    state: &Arc<State>,
    shutdown: &Arc<AtomicBool>,
    stream: TcpStream,
    peer: IpAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    loop {
        let draining = shutdown.load(Ordering::SeqCst) || snapshot::interrupt_requested();
        match http::parse_request(&mut reader) {
            Ok(req) => {
                state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                let close = req.wants_close() || draining;
                let resp = route(state, &req, peer);
                if http::write_response(&mut write_half, &resp, close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Idle) => {
                if draining {
                    return;
                }
            }
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let resp = Response::error(status, reason, &e.to_string());
                    http::write_response(&mut write_half, &resp, true).ok();
                }
                return;
            }
        }
    }
}

/// Splits `/v1/session/17/events` into its id and trailing segment.
fn session_route(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/v1/session/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn lookup(state: &State, id: u64) -> Option<Arc<Mutex<Session>>> {
    if let Some(s) = state.sessions.lock().unwrap().get(&id) {
        return Some(Arc::clone(s));
    }
    // Reaped (or pre-restart) sessions page back in from their
    // checkpoint transparently.
    let dir = state.cfg.state_dir.as_deref()?;
    let snap = match snapshot::load(&session_path(dir, id)) {
        Ok(Snapshot::Session(s)) => s,
        _ => return None,
    };
    let session = Session::resume(snap).ok()?;
    state
        .retained
        .fetch_add(session.retained() as u64, Ordering::SeqCst);
    state
        .metrics
        .sessions_recovered
        .fetch_add(1, Ordering::Relaxed);
    bump_retained_peak(state);
    let arc = Arc::new(Mutex::new(session));
    let mut sessions = state.sessions.lock().unwrap();
    Some(Arc::clone(
        sessions.entry(id).or_insert_with(|| Arc::clone(&arc)),
    ))
}

fn shed(state: &State) -> Response {
    state.metrics.shed_requests.fetch_add(1, Ordering::Relaxed);
    let mut resp = Response::error(
        429,
        "Too Many Requests",
        "retained-event ceiling reached; retry after compaction or reaping",
    );
    resp.extra.push(("Retry-After", "1".to_owned()));
    resp
}

fn over_ceiling(state: &State) -> bool {
    state
        .cfg
        .max_retained
        .is_some_and(|cap| state.retained.load(Ordering::SeqCst) >= cap)
}

/// Counts `peer` against its fixed one-second window and reports whether
/// this request exceeds the per-client ceiling. The global retained
/// ceiling ([`over_ceiling`]) protects the daemon; this protects the
/// *other clients* from one hot peer monopolizing it.
fn peer_throttled(state: &State, peer: IpAddr) -> bool {
    let limit = state.cfg.peer_rps;
    if limit == 0 {
        return false;
    }
    let mut peers = state.peers.lock().unwrap();
    // Bound the table: stale windows from long-gone peers are dropped
    // before inserting new ones.
    if peers.len() >= 1024 {
        peers.retain(|_, w| w.start.elapsed() < Duration::from_secs(10));
    }
    let window = peers.entry(peer).or_insert_with(|| PeerWindow {
        start: Instant::now(),
        count: 0,
    });
    if window.start.elapsed() >= Duration::from_secs(1) {
        window.start = Instant::now();
        window.count = 0;
    }
    window.count += 1;
    if window.count > limit {
        state
            .metrics
            .throttled_requests
            .fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

fn throttled(peer: IpAddr, limit: u64) -> Response {
    let mut resp = Response::error(
        429,
        "Too Many Requests",
        &format!("client {peer} exceeded {limit} session requests/s"),
    );
    resp.extra.push(("Retry-After", "1".to_owned()));
    resp
}

fn route(state: &Arc<State>, req: &Request, peer: IpAddr) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => metrics_response(state),
        ("POST", "/v1/session") => {
            if peer_throttled(state, peer) {
                return throttled(peer, state.cfg.peer_rps);
            }
            create_session(state, req)
        }
        (method, path) => match session_route(path) {
            Some((id, tail)) => {
                if peer_throttled(state, peer) {
                    return throttled(peer, state.cfg.peer_rps);
                }
                session_request(state, req, method, id, tail)
            }
            None => Response::error(404, "Not Found", &format!("no route for {path}")),
        },
    }
}

fn create_session(state: &Arc<State>, req: &Request) -> Response {
    if over_ceiling(state) {
        return shed(state);
    }
    let budget = match req.query_param("budget") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => None,
            Ok(b) => Some(b),
            Err(_) => {
                return Response::error(400, "Bad Request", &format!("bad budget `{raw}`"));
            }
        },
        None => state.cfg.session_budget,
    };
    let mut sessions = state.sessions.lock().unwrap();
    if sessions.len() >= state.cfg.session_cap {
        drop(sessions);
        return shed(state);
    }
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    sessions.insert(id, Arc::new(Mutex::new(Session::new(id, budget))));
    drop(sessions);
    state
        .metrics
        .sessions_created
        .fetch_add(1, Ordering::Relaxed);
    Response::json(201, "Created", format!("{{\"session\":{id}}}\n"))
}

fn session_request(
    state: &Arc<State>,
    req: &Request,
    method: &str,
    id: u64,
    tail: &str,
) -> Response {
    let Some(arc) = lookup(state, id) else {
        return Response::error(404, "Not Found", &format!("no session {id}"));
    };
    match (method, tail) {
        ("POST", "events") => ingest(state, &arc, req),
        ("GET", "verdict") => verdict(state, &arc, req),
        ("GET", "") => {
            let session = arc.lock().unwrap();
            Response::json(
                200,
                "OK",
                format!(
                    "{{\"session\":{},\"ingested\":{},\"retained\":{},\"degraded\":{},\"violated\":{}}}\n",
                    session.id,
                    session.ingested(),
                    session.retained(),
                    session.degraded(),
                    session.violated(),
                ),
            )
        }
        ("DELETE", "") => {
            let removed = state.sessions.lock().unwrap().remove(&id);
            if let Some(arc) = removed {
                if let Ok(session) = arc.lock() {
                    state
                        .retained
                        .fetch_sub(session.retained() as u64, Ordering::SeqCst);
                }
            }
            if let Some(dir) = state.cfg.state_dir.as_deref() {
                std::fs::remove_file(session_path(dir, id)).ok();
            }
            Response::json(200, "OK", format!("{{\"deleted\":{id}}}\n"))
        }
        _ => Response::error(
            405,
            "Method Not Allowed",
            &format!("{method} not supported on this route"),
        ),
    }
}

fn parse_body_events(body: &[u8]) -> Result<Vec<Event>, String> {
    let mut reader = TraceReader::new(body).map_err(|e| e.to_string())?;
    let mut events = Vec::new();
    while let Some(event) = reader.next_event().map_err(|e| e.to_string())? {
        events.push(event);
    }
    Ok(events)
}

fn ingest(state: &Arc<State>, arc: &Arc<Mutex<Session>>, req: &Request) -> Response {
    if over_ceiling(state) {
        return shed(state);
    }
    let events = match parse_body_events(&req.body) {
        Ok(events) => events,
        Err(e) => return Response::error(400, "Bad Request", &e),
    };
    let mut session = arc.lock().unwrap();
    let before_retained = session.retained() as u64;
    let (report, malformed) = match session.ingest(&events) {
        Ok(report) => (report, None),
        Err((e, partial)) => (partial, Some(e.to_string())),
    };
    let after_retained = session.retained() as u64;
    // Update the shedding gauge by the batch's delta (compaction can
    // shrink it).
    if after_retained >= before_retained {
        state
            .retained
            .fetch_add(after_retained - before_retained, Ordering::SeqCst);
    } else {
        state
            .retained
            .fetch_sub(before_retained - after_retained, Ordering::SeqCst);
    }
    bump_retained_peak(state);
    let total = state
        .metrics
        .events_ingested
        .fetch_add(report.accepted, Ordering::SeqCst)
        + report.accepted;
    state
        .metrics
        .events_discarded
        .fetch_add(report.discarded, Ordering::Relaxed);
    if state.kill_ingest.is_some_and(|n| total >= n) {
        // Fault hook: die mid-ingest, before this batch is checkpointed
        // or acknowledged — the client must re-stream it after recovery.
        std::process::exit(KILL_EXIT_CODE);
    }
    if session.dirty_posts >= state.cfg.checkpoint_every.max(1) {
        checkpoint_session(state, &mut session);
    }
    let ack = format!(
        "{{\"session\":{},\"ingested\":{},\"retained\":{},\"degraded\":{},\"violated\":{}}}\n",
        session.id,
        session.ingested(),
        session.retained(),
        session.degraded(),
        session.violated(),
    );
    match malformed {
        Some(e) => Response::error(
            400,
            "Bad Request",
            &format!("{e} (ingested so far ride in /v1/session/{})", session.id),
        ),
        None => Response::json(200, "OK", ack),
    }
}

fn verdict(state: &Arc<State>, arc: &Arc<Mutex<Session>>, req: &Request) -> Response {
    let json = req.query_param("format") != Some("text");
    let mut session = arc.lock().unwrap();
    let verdict = session.verdict();
    match verdict {
        Verdict::Satisfied(_) => &state.metrics.verdicts_satisfied,
        Verdict::Violated(_) => &state.metrics.verdicts_violated,
        Verdict::Unknown { .. } => &state.metrics.verdicts_unknown,
    }
    .fetch_add(1, Ordering::Relaxed);
    let body = session.verdict_line(json);
    if json {
        Response::json(200, "OK", body)
    } else {
        Response::text(200, "OK", body)
    }
}

fn metrics_response(state: &Arc<State>) -> Response {
    let m = &state.metrics;
    let live = state.sessions.lock().unwrap().len() as u64;
    let mut body = String::new();
    let mut metric = |name: &str, kind: &str, value: u64| {
        body.push_str(&format!(
            "# TYPE duop_serve_{name} {kind}\nduop_serve_{name} {value}\n"
        ));
    };
    metric("sessions_live", "gauge", live);
    metric(
        "sessions_created",
        "counter",
        m.sessions_created.load(Ordering::Relaxed),
    );
    metric(
        "sessions_reaped",
        "counter",
        m.sessions_reaped.load(Ordering::Relaxed),
    );
    metric(
        "sessions_recovered",
        "counter",
        m.sessions_recovered.load(Ordering::Relaxed),
    );
    metric(
        "events_ingested",
        "counter",
        m.events_ingested.load(Ordering::Relaxed),
    );
    metric(
        "events_discarded",
        "counter",
        m.events_discarded.load(Ordering::Relaxed),
    );
    metric(
        "retained_events",
        "gauge",
        state.retained.load(Ordering::SeqCst),
    );
    metric(
        "retained_peak_events",
        "gauge",
        m.retained_peak.load(Ordering::Relaxed),
    );
    metric(
        "requests_total",
        "counter",
        m.requests_total.load(Ordering::Relaxed),
    );
    metric(
        "shed_requests",
        "counter",
        m.shed_requests.load(Ordering::Relaxed),
    );
    metric(
        "throttled_requests",
        "counter",
        m.throttled_requests.load(Ordering::Relaxed),
    );
    metric(
        "checkpoints_written",
        "counter",
        m.checkpoints_written.load(Ordering::Relaxed),
    );
    metric(
        "connections_accepted",
        "counter",
        m.connections_accepted.load(Ordering::Relaxed),
    );
    metric(
        "connections_dropped",
        "counter",
        m.connections_dropped.load(Ordering::Relaxed),
    );
    for (shape, counter) in [
        ("satisfied", &m.verdicts_satisfied),
        ("violated", &m.verdicts_violated),
        ("unknown", &m.verdicts_unknown),
    ] {
        body.push_str(&format!(
            "duop_serve_verdicts{{shape=\"{shape}\"}} {}\n",
            counter.load(Ordering::Relaxed)
        ));
    }
    Response::text(200, "OK", body)
}
