//! `duop serve`: a crash-safe, overload-shedding checking daemon.
//!
//! A hand-rolled HTTP/1.1 server over `std::net` (matching the repo's
//! no-external-dependencies philosophy) multiplexes many concurrent
//! checking sessions, one [`duop_core::online::OnlineChecker`] each:
//!
//! - [`http`]: request parsing with hard limits — every malformed or
//!   oversized request degrades to a structured 4xx, never a panic.
//! - [`session`]: one session's checker, retained-event budget, sound
//!   degradation to `Unknown{partial}`, and checkpoint round-tripping.
//! - [`server`]: the accept loop — lifecycle routes, idle reaping,
//!   global `429 Retry-After` shedding, periodic checkpoints, eager
//!   `--state-dir` recovery, graceful drain, `/metrics`, and the
//!   `DUOP_SERVE_KILL_*` fault hooks that make the recovery paths
//!   testable the way the shard protocol's are.
//!
//! The robustness contract mirrors the paper's prefix-closure results:
//! violations are final (Corollary 2), so a session can compact, crash,
//! recover, and shed load without ever un-deciding a verdict; positive
//! verdicts are recomputed from the retained history, so an uncompacted
//! session's verdict is byte-identical to one-shot `duop check` on the
//! full trace — including across a kill/restart recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod listener;
pub mod server;
pub mod session;

pub use server::{
    ServeConfig, ServeError, Server, ShutdownHandle, DROP_CONN_ENV, KILL_CHECKPOINT_ENV,
    KILL_EXIT_CODE, KILL_INGEST_ENV,
};
pub use session::{IngestReport, Session};
