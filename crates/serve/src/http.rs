//! A deliberately small HTTP/1.1 server-side implementation over
//! `std::io`: request parsing with hard resource limits, chunked and
//! `Content-Length` bodies, and plain-text response writing.
//!
//! The parser's contract mirrors the malformed-trace and shard-frame
//! corpora: every syntactically broken, oversized, or truncated request
//! degrades to a structured [`HttpError`] (mapped to a 4xx status by the
//! server), never a panic and never unbounded memory. The limits are
//! constants rather than configuration because they bound *parsing*, not
//! policy — session- and daemon-level budgets live in
//! [`crate::server::ServeConfig`].

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Maximum bytes for the request line plus all header lines.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted request-body size (either declared via
/// `Content-Length` or accumulated across chunks).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request: method, path (with any `?query` split off), query
/// string, lower-cased headers, and the fully read body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Query string (after `?`), empty if absent.
    pub query: String,
    /// Headers with lower-cased names; duplicate names keep the last
    /// value (none of the headers the daemon reads are list-valued).
    pub headers: BTreeMap<String, String>,
    /// The request body, after chunked decoding if applicable.
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (already lower-cased), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The value of query parameter `name` in a `a=1&b=2` query string.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// Why a request could not be parsed. Each variant maps to one 4xx
/// status; the `Closed` variant is the clean end of a keep-alive
/// connection (no request bytes at all), which is not an error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed before sending any request bytes.
    Closed,
    /// The read timeout fired before any request bytes arrived — a quiet
    /// keep-alive connection, not an error; the caller decides whether
    /// to keep waiting.
    Idle,
    /// Socket-level failure mid-request.
    Io(String),
    /// Malformed request line, header, or chunked framing → 400.
    Bad(String),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] or
    /// [`MAX_HEADERS`] → 431.
    HeadersTooLarge,
    /// Declared or accumulated body exceeds [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// A body-carrying method arrived without `Content-Length` or
    /// `Transfer-Encoding: chunked` → 411.
    LengthRequired,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "idle connection"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Bad(e) => write!(f, "bad request: {e}"),
            HttpError::HeadersTooLarge => write!(f, "request headers too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::LengthRequired => write!(f, "length required"),
        }
    }
}

impl HttpError {
    /// The response status this parse failure maps to (`None` for
    /// [`HttpError::Closed`] and I/O failures, where no response can or
    /// should be written).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed | HttpError::Idle | HttpError::Io(_) => None,
            HttpError::Bad(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
        }
    }
}

fn io_err(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Reads one CRLF- (or bare-LF-) terminated line, bounding the total
/// head bytes consumed so a header flood cannot exhaust memory.
fn read_line(r: &mut impl BufRead, consumed: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Bad("truncated line".into()));
            }
            Ok(_) => {
                *consumed += 1;
                if *consumed > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Bad("non-UTF-8 header bytes".into()));
                }
                line.push(byte[0]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout. Before any bytes of a request this is a
                // quiet keep-alive connection; mid-request it is a
                // truncation.
                if line.is_empty() && *consumed == 0 {
                    return Err(HttpError::Idle);
                }
                return Err(HttpError::Bad("timed out mid-request".into()));
            }
            Err(e) => return Err(io_err(e)),
        }
    }
}

fn read_exact_limited(
    r: &mut impl BufRead,
    len: usize,
    into: &mut Vec<u8>,
) -> Result<(), HttpError> {
    if into.len() + len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let start = into.len();
    into.resize(start + len, 0);
    r.read_exact(&mut into[start..])
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::WouldBlock => {
                HttpError::Bad("truncated body".into())
            }
            _ => io_err(e),
        })
}

fn read_chunked(r: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        // Chunk-size lines live outside the head budget; bound them
        // separately (a hex size never legitimately needs 1 KiB).
        let mut consumed = MAX_HEAD_BYTES - 1024;
        let line = match read_line(r, &mut consumed) {
            Ok(l) => l,
            Err(HttpError::Closed) => return Err(HttpError::Bad("truncated chunked body".into())),
            Err(e) => return Err(e),
        };
        let size_tok = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_tok, 16)
            .map_err(|_| HttpError::Bad(format!("bad chunk size `{size_tok}`")))?;
        if size == 0 {
            // Trailer section: consume lines until the blank terminator.
            loop {
                let mut c = MAX_HEAD_BYTES - 1024;
                match read_line(r, &mut c) {
                    Ok(l) if l.is_empty() => return Ok(body),
                    Ok(_) => continue,
                    Err(_) => return Err(HttpError::Bad("truncated chunk trailer".into())),
                }
            }
        }
        read_exact_limited(r, size, &mut body)?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)
            .map_err(|_| HttpError::Bad("truncated chunk terminator".into()))?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Bad("chunk data not CRLF-terminated".into()));
        }
    }
}

/// Parses one request from `r`. Blocks until a full request arrives, the
/// peer closes, or the stream's read timeout fires.
///
/// # Errors
///
/// [`HttpError::Closed`] for a clean no-bytes close (keep-alive end);
/// every other variant is a malformed or over-limit request.
pub fn parse_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut consumed = 0usize;
    let request_line = read_line(r, &mut consumed)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Bad("missing method".into()))?
        .to_owned();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::Bad("garbage after HTTP version".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad(format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = BTreeMap::new();
    loop {
        let line = match read_line(r, &mut consumed) {
            Ok(l) => l,
            Err(HttpError::Closed) => return Err(HttpError::Bad("truncated headers".into())),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("header line without `:`: `{line}`")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad(format!("bad header name `{name}`")));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_owned());
    }

    let chunked = headers
        .get("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    let body = if chunked {
        read_chunked(r)?
    } else if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| HttpError::Bad(format!("bad Content-Length `{len}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        let mut body = Vec::new();
        read_exact_limited(r, len, &mut body)?;
        body
    } else if method == "POST" || method == "PUT" {
        return Err(HttpError::LengthRequired);
    } else {
        Vec::new()
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// One response, built by the route handlers and serialized by
/// [`write_response`].
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on a 429.
    pub extra: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// The standard error shape: `{"error":"..."}` plus the status.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        let body = format!("{{\"error\":{}}}\n", json_string(message));
        Response::json(status, reason, body)
    }
}

/// Renders `text` as a JSON string literal (the subset of escaping the
/// daemon's error messages need, handled fully).
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes `resp` to `w` as an HTTP/1.1 message. `close` adds
/// `Connection: close`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    close: bool,
) -> Result<(), std::io::Error> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        resp.reason,
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_simple_post() {
        let req = parse(b"POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/session");
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_query_params() {
        let req =
            parse(b"POST /v1/session?budget=64&x=1 HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(req.query_param("budget"), Some("64"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn parses_chunked_body() {
        let req = parse(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"wikipedia");
    }

    #[test]
    fn bad_chunk_size_is_structured() {
        let err =
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)), "{err:?}");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse(b"POST /x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::LengthRequired);
        assert_eq!(err.status(), Some((411, "Length Required")));
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let err = parse(
            format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        req.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEAD_BYTES)).as_bytes());
        req.extend_from_slice(b"\r\n");
        assert_eq!(parse(&req).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn empty_stream_is_clean_close() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn truncated_body_is_bad_request() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)), "{err:?}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
