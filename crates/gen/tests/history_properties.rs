//! Property tests of the history model's algebraic laws, over generated
//! histories.

use duop_gen::{arb_history, HistoryGenConfig};
use duop_history::trace::{format_trace, from_json, parse_trace, to_json};
use duop_history::{CommitCapability, History};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Text and JSON trace round-trips are the identity.
    #[test]
    fn trace_roundtrips(h in arb_history(HistoryGenConfig::medium_simulated())) {
        prop_assert_eq!(&parse_trace(&format_trace(&h)).unwrap(), &h);
        prop_assert_eq!(&from_json(&to_json(&h)).unwrap(), &h);
    }

    /// Prefixes are monotone and consistent: `H^i` is a prefix of `H^j`
    /// for `i ≤ j`, and `H^len = H`.
    #[test]
    fn prefixes_are_monotone(h in arb_history(HistoryGenConfig::small_adversarial())) {
        prop_assert_eq!(&h.prefix(h.len()), &h);
        for i in 0..=h.len() {
            let p = h.prefix(i);
            prop_assert_eq!(p.events(), &h.events()[..i]);
            // txns(H^i) ⊆ txns(H).
            for id in p.txn_ids() {
                prop_assert!(h.participates(id));
            }
        }
    }

    /// Equivalence is reflexive and invariant under transaction-projection
    /// reassembly: a history is equivalent to itself filtered to all
    /// transactions.
    #[test]
    fn equivalence_laws(h in arb_history(HistoryGenConfig::small_adversarial())) {
        prop_assert!(h.equivalent(&h));
        let everyone = h.filter_txns(|_| true);
        prop_assert!(h.equivalent(&everyone));
    }

    /// Every materialized completion is a completion (Definition 2), is
    /// t-complete, and preserves the per-transaction prefix.
    #[test]
    fn completions_are_completions(h in arb_history(HistoryGenConfig::small_adversarial())) {
        for c in h.completions() {
            prop_assert!(c.is_t_complete());
            prop_assert!(c.is_completion_of(&h));
        }
        // The number of completions is 2^pending.
        let pending = h.commit_pending_txns().len();
        prop_assert_eq!(h.completions().count(), 1usize << pending);
    }

    /// Real-time order is a strict partial order: irreflexive, asymmetric
    /// and transitive.
    #[test]
    fn real_time_order_is_a_strict_partial_order(h in arb_history(HistoryGenConfig::small_adversarial())) {
        let ids: Vec<_> = h.txn_ids().collect();
        for &a in &ids {
            prop_assert!(!h.precedes_rt(a, a), "irreflexive");
            for &b in &ids {
                if h.precedes_rt(a, b) {
                    prop_assert!(!h.precedes_rt(b, a), "asymmetric");
                }
                for &c in &ids {
                    if h.precedes_rt(a, b) && h.precedes_rt(b, c) {
                        prop_assert!(h.precedes_rt(a, c), "transitive");
                    }
                }
            }
        }
    }

    /// Live sets are symmetric: `a ∈ Lset(b)` iff `b ∈ Lset(a)`, and every
    /// transaction is in its own live set.
    #[test]
    fn live_sets_are_symmetric(h in arb_history(HistoryGenConfig::small_adversarial())) {
        let ids: Vec<_> = h.txn_ids().collect();
        for &a in &ids {
            prop_assert!(h.live_set(a).contains(&a));
            for &b in &ids {
                prop_assert_eq!(
                    h.live_set(a).contains(&b),
                    h.live_set(b).contains(&a),
                    "live-set symmetry between {} and {}", a, b
                );
            }
        }
    }

    /// Commit capabilities exactly partition the terminal behaviours the
    /// completions realize.
    #[test]
    fn capabilities_match_completions(h in arb_history(HistoryGenConfig::small_adversarial())) {
        for txn in h.txns() {
            let id = txn.id();
            let can_commit = h.completions().any(|c| c.txn(id).unwrap().is_committed());
            let can_abort = h.completions().any(|c| c.txn(id).unwrap().is_aborted());
            match txn.commit_capability() {
                CommitCapability::Committed => {
                    prop_assert!(can_commit && !can_abort);
                }
                CommitCapability::NeverCommitted => {
                    prop_assert!(!can_commit && can_abort);
                }
                CommitCapability::CommitPending => {
                    prop_assert!(can_commit && can_abort);
                }
            }
        }
    }
}

/// A regression guard on the generator contract: repeated reads never
/// occur, which `History::new` would reject.
#[test]
fn generator_respects_single_read_per_object() {
    use duop_gen::{GenMode, HistoryGen};
    for seed in 0..100 {
        for mode in [
            GenMode::Simulated,
            GenMode::ValueValidated,
            GenMode::Adversarial,
        ] {
            let cfg = HistoryGenConfig {
                mode,
                ..HistoryGenConfig::medium_simulated()
            };
            let h = HistoryGen::new(cfg, seed).generate();
            // Constructing a History already validates; touch it to be
            // explicit.
            assert!(History::new(h.events().to_vec()).is_ok());
        }
    }
}
