//! Exhaustive interleaving enumeration for small-scope testing.
//!
//! Given per-transaction event scripts, [`interleavings`] yields every
//! history that merges them (preserving each script's internal order) —
//! the complete set of schedules a scheduler could produce. Counts grow
//! multinomially, so this is for small scripts; [`interleaving_count`]
//! predicts the cost.

use duop_history::{Event, History};

/// Number of interleavings of scripts with the given lengths:
/// the multinomial coefficient `(Σlᵢ)! / Πlᵢ!`.
///
/// # Examples
///
/// ```
/// use duop_gen::schedule::interleaving_count;
///
/// assert_eq!(interleaving_count(&[2, 2]), 6);
/// assert_eq!(interleaving_count(&[4, 4]), 70);
/// ```
pub fn interleaving_count(lens: &[usize]) -> u128 {
    let total: usize = lens.iter().sum();
    let mut result: u128 = 1;
    let mut denominator_pool: Vec<usize> = Vec::new();
    for &l in lens {
        for k in 1..=l {
            denominator_pool.push(k);
        }
    }
    let mut denom_iter = denominator_pool.into_iter();
    for numerator in 1..=total {
        result *= numerator as u128;
        if let Some(d) = denom_iter.next() {
            result /= d as u128;
        }
    }
    for d in denom_iter {
        result /= d as u128;
    }
    result
}

/// Enumerates every merge of the given per-transaction event scripts as
/// validated histories.
///
/// Scripts whose merge is ill-formed (e.g. two scripts for the same
/// transaction) cause a panic, since scripts are fixture code.
///
/// # Panics
///
/// Panics if a merged schedule fails history validation, or if the total
/// number of interleavings exceeds `limit`.
///
/// # Examples
///
/// ```
/// use duop_gen::interleavings;
/// use duop_history::{Event, Op, Ret, ObjId, TxnId, Value};
///
/// let t1 = TxnId::new(1);
/// let t2 = TxnId::new(2);
/// let x = ObjId::new(0);
/// let s1 = vec![Event::inv(t1, Op::TryCommit), Event::resp(t1, Ret::Committed)];
/// let s2 = vec![Event::inv(t2, Op::TryAbort), Event::resp(t2, Ret::Aborted)];
/// let all = interleavings(&[s1, s2], 100);
/// assert_eq!(all.len(), 6);
/// ```
pub fn interleavings(scripts: &[Vec<Event>], limit: u128) -> Vec<History> {
    let lens: Vec<usize> = scripts.iter().map(Vec::len).collect();
    let count = interleaving_count(&lens);
    assert!(
        count <= limit,
        "interleaving count {count} exceeds limit {limit}"
    );
    let mut cursor = vec![0usize; scripts.len()];
    let mut current: Vec<Event> = Vec::new();
    let mut out = Vec::new();
    enumerate(scripts, &mut cursor, &mut current, &mut out);
    out
}

fn enumerate(
    scripts: &[Vec<Event>],
    cursor: &mut Vec<usize>,
    current: &mut Vec<Event>,
    out: &mut Vec<History>,
) {
    if cursor.iter().zip(scripts).all(|(&c, s)| c == s.len()) {
        out.push(History::new(current.clone()).expect("scripts merge to well-formed histories"));
        return;
    }
    for i in 0..scripts.len() {
        if cursor[i] < scripts[i].len() {
            current.push(scripts[i][cursor[i]]);
            cursor[i] += 1;
            enumerate(scripts, cursor, current, out);
            cursor[i] -= 1;
            current.pop();
        }
    }
}

/// Builds the event script of a whole committed transaction that writes
/// `value` to `obj`: `W(obj,value)·ok · tryC·C`.
pub fn writer_script(
    txn: duop_history::TxnId,
    obj: duop_history::ObjId,
    value: duop_history::Value,
) -> Vec<Event> {
    use duop_history::{Op, Ret};
    vec![
        Event::inv(txn, Op::Write(obj, value)),
        Event::resp(txn, Ret::Ok),
        Event::inv(txn, Op::TryCommit),
        Event::resp(txn, Ret::Committed),
    ]
}

/// Builds the event script of a whole committed transaction that reads
/// `value` from `obj`.
pub fn reader_script(
    txn: duop_history::TxnId,
    obj: duop_history::ObjId,
    value: duop_history::Value,
) -> Vec<Event> {
    use duop_history::{Op, Ret};
    vec![
        Event::inv(txn, Op::Read(obj)),
        Event::resp(txn, Ret::Value(value)),
        Event::inv(txn, Op::TryCommit),
        Event::resp(txn, Ret::Committed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{ObjId, TxnId, Value};

    #[test]
    fn counts_match_enumeration() {
        let t1 = TxnId::new(1);
        let t2 = TxnId::new(2);
        let x = ObjId::new(0);
        let s1 = writer_script(t1, x, Value::new(1));
        let s2 = reader_script(t2, x, Value::new(1));
        let all = interleavings(&[s1.clone(), s2.clone()], 1_000);
        assert_eq!(all.len() as u128, interleaving_count(&[4, 4]));
        // All distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn single_script_has_one_interleaving() {
        let t1 = TxnId::new(1);
        let s = writer_script(t1, ObjId::new(0), Value::new(1));
        let all = interleavings(&[s], 10);
        assert_eq!(all.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn limit_enforced() {
        let t1 = TxnId::new(1);
        let t2 = TxnId::new(2);
        let s1 = writer_script(t1, ObjId::new(0), Value::new(1));
        let s2 = writer_script(t2, ObjId::new(0), Value::new(2));
        interleavings(&[s1, s2], 10);
    }

    #[test]
    fn count_formula() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[3]), 1);
        assert_eq!(interleaving_count(&[1, 1, 1]), 6);
        assert_eq!(interleaving_count(&[2, 3]), 10);
    }
}
