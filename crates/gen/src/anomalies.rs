//! Hand-built anomaly histories, one per lint rule family.
//!
//! Each builder returns the smallest history exhibiting one textbook
//! anomaly shape, for lint coverage tests and the rule-triggering corpus:
//! the names match the diagnostics `duop-core`'s lint pipeline emits.

use duop_history::{History, HistoryBuilder, ObjId, TxnId, Value};

fn t(k: u32) -> TxnId {
    TxnId::new(k)
}
fn x() -> ObjId {
    ObjId::new(0)
}
fn y() -> ObjId {
    ObjId::new(1)
}
fn v(n: u64) -> Value {
    Value::new(n)
}

/// A dirty read (Figure 2 shape): `T2` observes `T1`'s write while `T1`'s
/// `tryC` is still pending. Du-opaque — the completion may commit `T1` —
/// so this lints as a warning, not an error.
pub fn dirty_read() -> History {
    HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .inv_try_commit(t(1))
        .read(t(2), x(), v(1))
        .commit(t(2))
        .build()
}

/// A premature read: `T2` observes a value whose only writer invokes
/// `tryC` *after* the read responded — refutes du-opacity
/// (Definition 3(3)) but not final-state opacity.
pub fn premature_read() -> History {
    HistoryBuilder::new()
        .write(t(1), x(), v(1))
        .read(t(2), x(), v(1))
        .commit(t(2))
        .commit(t(1))
        .build()
}

/// A stale read: `T2` runs entirely after `T1` committed, yet still
/// observes the initial value — a must-precede cycle (real-time plus
/// anti-dependency) that refutes every criterion.
pub fn stale_read() -> History {
    HistoryBuilder::new()
        .committed_writer(t(1), x(), v(1))
        .read(t(2), x(), v(0))
        .commit(t(2))
        .build()
}

/// An orphan read: `T1` observes a value no transaction ever writes.
pub fn orphan_read() -> History {
    HistoryBuilder::new()
        .committed_reader(t(1), x(), v(7))
        .build()
}

/// The classic lost update: two concurrent transactions each read the
/// initial value of `X` and each commits an overwrite.
pub fn lost_update() -> History {
    HistoryBuilder::new()
        .inv_read(t(1), x())
        .inv_read(t(2), x())
        .resp_value(t(1), v(0))
        .resp_value(t(2), v(0))
        .inv_write(t(1), x(), v(1))
        .inv_write(t(2), x(), v(2))
        .resp_ok(t(1))
        .resp_ok(t(2))
        .inv_try_commit(t(1))
        .inv_try_commit(t(2))
        .resp_committed(t(1))
        .resp_committed(t(2))
        .build()
}

/// Write skew: each transaction reads the initial value of the object the
/// other commits a write to.
pub fn write_skew() -> History {
    HistoryBuilder::new()
        .inv_read(t(1), x())
        .inv_read(t(2), y())
        .resp_value(t(1), v(0))
        .resp_value(t(2), v(0))
        .inv_write(t(1), y(), v(1))
        .inv_write(t(2), x(), v(2))
        .resp_ok(t(1))
        .resp_ok(t(2))
        .inv_try_commit(t(1))
        .inv_try_commit(t(2))
        .resp_committed(t(1))
        .resp_committed(t(2))
        .build()
}

/// A read-commit-order inversion (Figure 5 shape): `T2` is forced after
/// `T3` by a read, yet one of `T2`'s reads responded before `T3`'s `tryC`
/// — du-opaque but not RCO-opaque.
pub fn rco_inversion() -> History {
    HistoryBuilder::new()
        .committed_writer(t(1), x(), v(1))
        .read(t(2), x(), v(1))
        .write(t(3), x(), v(2))
        .write(t(3), y(), v(1))
        .commit(t(3))
        .read(t(2), y(), v(1))
        .build()
}

/// Ambiguous suppliers: two committed writers of the same value, so the
/// history leaves Theorem 11's unique-writes regime.
pub fn ambiguous_suppliers() -> History {
    HistoryBuilder::new()
        .committed_writer(t(1), x(), v(1))
        .committed_writer(t(2), x(), v(1))
        .committed_reader(t(3), x(), v(1))
        .build()
}

/// The full catalogue, with stable names for coverage tests.
pub fn catalogue() -> Vec<(&'static str, History)> {
    vec![
        ("dirty-read", dirty_read()),
        ("premature-read", premature_read()),
        ("stale-read", stale_read()),
        ("orphan-read", orphan_read()),
        ("lost-update", lost_update()),
        ("write-skew", write_skew()),
        ("rco-inversion", rco_inversion()),
        ("ambiguous-suppliers", ambiguous_suppliers()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_well_formed_and_distinct() {
        let entries = catalogue();
        assert_eq!(entries.len(), 8);
        for (name, h) in &entries {
            assert!(h.txn_count() >= 1, "{name} has no transactions");
            assert!(!name.is_empty());
        }
    }
}
