//! Random history and workload generators for exercising the du-opacity
//! checkers.
//!
//! Three generators with different guarantees:
//!
//! * [`HistoryGen`] in **simulated mode** ([`GenMode::Simulated`]) drives a
//!   deferred-update TM with snapshot validation, producing histories that
//!   are du-opaque *by construction* — positive test material;
//! * [`HistoryGen`] in **adversarial mode** ([`GenMode::Adversarial`])
//!   answers reads with arbitrary plausible values, producing a mix of
//!   correct and violating histories — differential-test material;
//! * [`interleavings`] exhaustively enumerates every interleaving of a few
//!   fixed transaction scripts — exhaustive small-scope material.
//!
//! [`mutate`] injects targeted violations into correct histories, and
//! [`anomalies`] catalogues hand-built minimal anomaly shapes (dirty
//! read, lost update, write skew, ...) for the lint pipeline's coverage
//! tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod anomalies;
pub mod mutate;
pub mod schedule;

mod history_gen;

pub use history_gen::{GenMode, HistoryGen, HistoryGenConfig, KeyDist};
pub use schedule::interleavings;

use duop_history::History;
use proptest::prelude::*;

/// A proptest strategy producing histories from [`HistoryGen`] with the
/// given configuration; the strategy varies the RNG seed.
///
/// # Examples
///
/// ```
/// use duop_gen::{arb_history, HistoryGenConfig};
/// use proptest::prelude::*;
///
/// proptest::proptest!(|(h in arb_history(HistoryGenConfig::small_simulated()))| {
///     prop_assert!(h.txn_count() > 0);
/// });
/// ```
pub fn arb_history(config: HistoryGenConfig) -> impl Strategy<Value = History> {
    any::<u64>().prop_map(move |seed| HistoryGen::new(config.clone(), seed).generate())
}
