//! The randomized history generator.

use duop_history::{Event, History, ObjId, Op, Ret, TxnId, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;

/// How data operations choose which t-object to touch.
///
/// The conflict-graph shape of a generated history is almost entirely a
/// function of this knob: uniform access over many objects yields many
/// small independent components (the planner's best case), while skewed
/// access funnels transactions through a few hot objects and fuses the
/// conflict graph into one large component (the sharded checker's
/// stress case).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every object equally likely — the historical behavior. The RNG
    /// draw sequence is bit-identical to what it was before this knob
    /// existed, so seeded traces reproduce.
    Uniform,
    /// Zipfian skew: object `i` is drawn with weight `(i + 1)^-theta`.
    /// `theta ≈ 0.99` is YCSB's default skew; larger is hotter. `theta
    /// = 0` degenerates to uniform (through the weighted path, so the
    /// draw sequence differs from [`KeyDist::Uniform`]).
    Zipfian {
        /// Skew exponent; must be finite and non-negative.
        theta: f64,
    },
    /// Two-tier hotspot: the first `ceil(hot_fraction * objs)` objects
    /// jointly receive `hot_prob` of the accesses, the rest share the
    /// remainder uniformly.
    Hotspot {
        /// Fraction of the object space that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability mass given to the hot set, in `[0, 1]`.
        hot_prob: f64,
    },
}

/// How read responses and commit outcomes are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenMode {
    /// Simulate a deferred-update TM with *version-based* snapshot
    /// validation (TL2-style): reads return currently committed values and
    /// the transaction aborts if any object it read has since been
    /// re-committed. Histories generated in this mode are du-opaque by
    /// construction.
    Simulated,
    /// Simulate a deferred-update TM with *value-based* snapshot
    /// validation (NOrec-style). Vulnerable to ABA: an object rewritten to
    /// the value a transaction read still validates. The resulting
    /// histories are opaque but occasionally **not du-opaque** — the
    /// overwriting transaction had invoked `tryC` before the read's
    /// response and poisons the local serialization. This is live
    /// experimental material for the paper's Theorem 10 separation.
    ValueValidated,
    /// Answer reads with arbitrary plausible values and commit attempts
    /// with random outcomes. Histories generated in this mode are a mix of
    /// correct and violating — ideal for differential testing.
    Adversarial,
}

/// Configuration for [`HistoryGen`].
#[derive(Clone, Debug)]
pub struct HistoryGenConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Number of distinct t-objects.
    pub objs: u32,
    /// Inclusive range of data operations (reads/writes) per transaction.
    pub ops_per_txn: (usize, usize),
    /// Probability that a data operation is a read.
    pub read_ratio: f64,
    /// Maximum number of concurrently live transactions.
    pub concurrency: usize,
    /// Probability that a finishing transaction invokes `tryC` (vs `tryA`).
    pub commit_prob: f64,
    /// Probability that any pending response is never delivered (the
    /// operation stays incomplete).
    pub stall_prob: f64,
    /// Probability that a transaction ends without invoking `tryC`/`tryA`
    /// (complete but not t-complete).
    pub drop_prob: f64,
    /// Give every write a globally unique value (Theorem 11's hypothesis);
    /// otherwise draw values from a small colliding domain.
    pub unique_writes: bool,
    /// Drain the concurrency window after every `barrier_every` spawned
    /// transactions (0 disables). Each drain makes the prefix emitted so
    /// far t-complete, which is what the streaming monitor's compaction
    /// needs to find cut points.
    pub barrier_every: usize,
    /// Read/commit semantics.
    pub mode: GenMode,
    /// How data operations choose their t-object.
    pub key_dist: KeyDist,
}

impl HistoryGenConfig {
    /// A small simulated-mode configuration (≤ 5 transactions) suitable
    /// for cross-checking against the brute-force reference checker.
    pub fn small_simulated() -> Self {
        HistoryGenConfig {
            txns: 4,
            objs: 3,
            ops_per_txn: (1, 3),
            read_ratio: 0.5,
            concurrency: 3,
            commit_prob: 0.85,
            stall_prob: 0.05,
            drop_prob: 0.05,
            unique_writes: false,
            barrier_every: 0,
            mode: GenMode::Simulated,
            key_dist: KeyDist::Uniform,
        }
    }

    /// A small adversarial-mode configuration for differential testing.
    pub fn small_adversarial() -> Self {
        HistoryGenConfig {
            mode: GenMode::Adversarial,
            ..HistoryGenConfig::small_simulated()
        }
    }

    /// A medium simulated-mode configuration (STM-trace scale).
    pub fn medium_simulated() -> Self {
        HistoryGenConfig {
            txns: 24,
            objs: 6,
            ops_per_txn: (1, 4),
            read_ratio: 0.6,
            concurrency: 4,
            commit_prob: 0.9,
            stall_prob: 0.02,
            drop_prob: 0.02,
            unique_writes: false,
            barrier_every: 0,
            mode: GenMode::Simulated,
            key_dist: KeyDist::Uniform,
        }
    }

    /// A large simulated-mode configuration for ingestion and streaming
    /// benchmarks. The narrow concurrency window means the live set drains
    /// often, so long prefixes become t-complete early — exactly the shape
    /// the streaming monitor's `--compact-every` compaction thrives on.
    /// Stalls and drops are disabled so every transaction completes and no
    /// operation pends forever (a pending operation pins the prefix).
    pub fn large_streaming() -> Self {
        HistoryGenConfig {
            txns: 4096,
            objs: 32,
            ops_per_txn: (2, 5),
            // Read-heavy: compaction needs the latest committed writer of
            // every object to be free of overlapping rival writers, so
            // frequent writes would starve it of usable cut points.
            read_ratio: 0.75,
            concurrency: 3,
            commit_prob: 0.95,
            stall_prob: 0.0,
            drop_prob: 0.0,
            unique_writes: false,
            barrier_every: 4,
            mode: GenMode::Simulated,
            key_dist: KeyDist::Uniform,
        }
    }

    /// Sets the barrier interval (0 disables draining).
    pub fn with_barrier_every(mut self, barrier_every: usize) -> Self {
        self.barrier_every = barrier_every;
        self
    }

    /// Enables or disables the unique-writes regime.
    pub fn with_unique_writes(mut self, unique: bool) -> Self {
        self.unique_writes = unique;
        self
    }

    /// Sets the number of transactions.
    pub fn with_txns(mut self, txns: usize) -> Self {
        self.txns = txns;
        self
    }

    /// Sets the number of t-objects.
    pub fn with_objs(mut self, objs: u32) -> Self {
        self.objs = objs;
        self
    }

    /// Sets the concurrency level.
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// Sets the key-access distribution.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters: a non-finite or negative Zipf
    /// `theta`, a `hot_fraction` outside `(0, 1]`, or a `hot_prob`
    /// outside `[0, 1]`.
    pub fn with_key_dist(mut self, key_dist: KeyDist) -> Self {
        match key_dist {
            KeyDist::Uniform => {}
            KeyDist::Zipfian { theta } => {
                assert!(
                    theta.is_finite() && theta >= 0.0,
                    "zipfian theta must be finite and non-negative, got {theta}"
                );
            }
            KeyDist::Hotspot {
                hot_fraction,
                hot_prob,
            } => {
                assert!(
                    hot_fraction > 0.0 && hot_fraction <= 1.0,
                    "hot_fraction must be in (0, 1], got {hot_fraction}"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_prob),
                    "hot_prob must be in [0, 1], got {hot_prob}"
                );
            }
        }
        self.key_dist = key_dist;
        self
    }
}

impl Default for HistoryGenConfig {
    fn default() -> Self {
        HistoryGenConfig::small_simulated()
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum LiveState {
    /// Ready to invoke the next operation.
    Idle,
    /// An operation is invoked and awaiting its response.
    Pending(Op),
    /// The transaction will issue no further events.
    Finished,
}

#[derive(Debug)]
struct LiveTxn {
    id: TxnId,
    remaining_ops: usize,
    state: LiveState,
    own_writes: HashMap<ObjId, Value>,
    /// Objects read so far with the value and committed version observed
    /// (the validation set).
    read_set: HashMap<ObjId, (Value, u64)>,
    /// Objects already read (the model forbids repeated reads).
    read_objs: Vec<ObjId>,
}

/// Deterministic, seeded history generator. See [`GenMode`] for the two
/// operating modes.
///
/// # Examples
///
/// ```
/// use duop_gen::{HistoryGen, HistoryGenConfig};
///
/// let h = HistoryGen::new(HistoryGenConfig::small_simulated(), 42).generate();
/// assert!(h.txn_count() <= 4);
/// ```
#[derive(Debug)]
pub struct HistoryGen {
    config: HistoryGenConfig,
    rng: StdRng,
    /// Per-object sampling weights for skewed key distributions; `None`
    /// for [`KeyDist::Uniform`], which keeps the historical draw
    /// sequence untouched.
    key_weights: Option<Vec<f64>>,
}

fn key_weights(cfg: &HistoryGenConfig) -> Option<Vec<f64>> {
    let n = cfg.objs as usize;
    match cfg.key_dist {
        KeyDist::Uniform => None,
        KeyDist::Zipfian { theta } => Some((0..n).map(|i| ((i + 1) as f64).powf(-theta)).collect()),
        KeyDist::Hotspot {
            hot_fraction,
            hot_prob,
        } => {
            let hot = (((n as f64) * hot_fraction).ceil() as usize).clamp(1, n.max(1));
            if hot >= n {
                return Some(vec![1.0; n]);
            }
            let hot_w = hot_prob / hot as f64;
            let cold_w = (1.0 - hot_prob) / (n - hot) as f64;
            Some(
                (0..n)
                    .map(|i| if i < hot { hot_w } else { cold_w })
                    .collect(),
            )
        }
    }
}

impl HistoryGen {
    /// Creates a generator with the given configuration and RNG seed.
    pub fn new(config: HistoryGenConfig, seed: u64) -> Self {
        let key_weights = key_weights(&config);
        HistoryGen {
            config,
            rng: StdRng::seed_from_u64(seed),
            key_weights,
        }
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision (the
    /// vendored rand shim has no float ranges).
    fn unit_f64(&mut self) -> f64 {
        ((self.rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks one object id from `candidates` according to the configured
    /// key distribution (weights renormalized over the candidate set).
    fn pick_key(&mut self, candidates: &[u32]) -> u32 {
        let Some(weights) = &self.key_weights else {
            return candidates[self.rng.gen_range(0..candidates.len())];
        };
        let total: f64 = candidates.iter().map(|&o| weights[o as usize]).sum();
        if total <= 0.0 {
            return candidates[self.rng.gen_range(0..candidates.len())];
        }
        let mut r = self.unit_f64() * total;
        for &o in candidates {
            let w = self.key_weights.as_ref().expect("checked above")[o as usize];
            if r < w {
                return o;
            }
            r -= w;
        }
        *candidates.last().expect("candidates is non-empty")
    }

    /// Picks a write target from the full object space.
    fn pick_write_key(&mut self) -> u32 {
        if self.key_weights.is_none() {
            return self.rng.gen_range(0..self.config.objs);
        }
        let all: Vec<u32> = (0..self.config.objs).collect();
        self.pick_key(&all)
    }

    /// Generates one history.
    pub fn generate(&mut self) -> History {
        let cfg = self.config.clone();
        let mut events: Vec<Event> = Vec::new();
        let mut committed: HashMap<ObjId, (Value, u64)> = HashMap::new();
        let mut next_txn: u32 = 1;
        let mut value_pool: Vec<Value> = vec![Value::INITIAL];
        let mut live: Vec<LiveTxn> = Vec::new();

        loop {
            // Spawn while below the concurrency cap. A pending barrier
            // (the previous transaction filled a window of `barrier_every`)
            // additionally waits for the window to drain completely, making
            // the prefix emitted so far t-complete.
            while live
                .iter()
                .filter(|t| t.state != LiveState::Finished)
                .count()
                < cfg.concurrency
                && (next_txn as usize) <= cfg.txns
                && (cfg.barrier_every == 0
                    || !(next_txn as usize - 1).is_multiple_of(cfg.barrier_every)
                    || live.iter().all(|t| t.state == LiveState::Finished))
            {
                let ops = self
                    .rng
                    .gen_range(cfg.ops_per_txn.0..=cfg.ops_per_txn.1.max(cfg.ops_per_txn.0));
                live.push(LiveTxn {
                    id: TxnId::new(next_txn),
                    remaining_ops: ops,
                    state: LiveState::Idle,
                    own_writes: HashMap::new(),
                    read_set: HashMap::new(),
                    read_objs: Vec::new(),
                });
                next_txn += 1;
            }

            let active: Vec<usize> = live
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state != LiveState::Finished)
                .map(|(i, _)| i)
                .collect();
            if active.is_empty() {
                break;
            }
            let i = active[self.rng.gen_range(0..active.len())];

            match live[i].state.clone() {
                LiveState::Idle => {
                    let op = self.pick_op(&live[i]);
                    events.push(Event::inv(live[i].id, op));
                    if self.rng.gen_bool(cfg.stall_prob) {
                        // Response never arrives.
                        live[i].state = LiveState::Finished;
                    } else {
                        live[i].state = LiveState::Pending(op);
                    }
                }
                LiveState::Pending(op) => {
                    let (ret, terminal) =
                        self.respond(op, &mut live[i], &mut committed, &mut value_pool);
                    events.push(Event::resp(live[i].id, ret));
                    if terminal {
                        live[i].state = LiveState::Finished;
                    } else {
                        live[i].remaining_ops = live[i].remaining_ops.saturating_sub(1);
                        live[i].state = if live[i].remaining_ops == 0
                            && self.rng.gen_bool(self.config.drop_prob)
                        {
                            LiveState::Finished
                        } else {
                            LiveState::Idle
                        };
                    }
                }
                LiveState::Finished => unreachable!("filtered out"),
            }
        }

        History::new(events).expect("generator emits well-formed histories")
    }

    fn pick_op(&mut self, txn: &LiveTxn) -> Op {
        let cfg = &self.config;
        if txn.remaining_ops == 0 {
            return if self.rng.gen_bool(cfg.commit_prob) {
                Op::TryCommit
            } else {
                Op::TryAbort
            };
        }
        let unread: Vec<u32> = (0..cfg.objs)
            .filter(|o| !txn.read_objs.contains(&ObjId::new(*o)))
            .collect();
        let want_read = self.rng.gen_bool(cfg.read_ratio) && !unread.is_empty();
        if want_read {
            let obj = self.pick_key(&unread);
            Op::Read(ObjId::new(obj))
        } else {
            let obj = ObjId::new(self.pick_write_key());
            // Value chosen at response time for unique mode would change
            // the invocation; choose now.
            let value = self.pick_write_value();
            Op::Write(obj, value)
        }
    }

    fn pick_write_value(&mut self) -> Value {
        if self.config.unique_writes {
            // A draw from a 2^63 space: collisions are (for test purposes)
            // impossible, so the unique-writes hypothesis holds.
            Value::new(self.rng.gen_range(1..=u64::MAX / 2))
        } else {
            Value::new(self.rng.gen_range(1..=3))
        }
    }

    fn respond(
        &mut self,
        op: Op,
        txn: &mut LiveTxn,
        committed: &mut HashMap<ObjId, (Value, u64)>,
        value_pool: &mut Vec<Value>,
    ) -> (Ret, bool) {
        let current = |committed: &HashMap<ObjId, (Value, u64)>, o: &ObjId| {
            committed.get(o).copied().unwrap_or((Value::INITIAL, 0))
        };
        let read_set_valid =
            |committed: &HashMap<ObjId, (Value, u64)>, txn: &LiveTxn, by_version: bool| {
                txn.read_set.iter().all(|(o, (v, ver))| {
                    let (cv, cver) = current(committed, o);
                    if by_version {
                        cver == *ver
                    } else {
                        cv == *v
                    }
                })
            };
        match op {
            Op::Read(x) => {
                txn.read_objs.push(x);
                if let Some(&own) = txn.own_writes.get(&x) {
                    return (Ret::Value(own), false);
                }
                match self.config.mode {
                    GenMode::Simulated | GenMode::ValueValidated => {
                        // Snapshot validation: the whole read set must
                        // still be current, or the transaction aborts.
                        let by_version = self.config.mode == GenMode::Simulated;
                        if !read_set_valid(committed, txn, by_version) {
                            return (Ret::Aborted, true);
                        }
                        let (v, ver) = current(committed, &x);
                        txn.read_set.insert(x, (v, ver));
                        (Ret::Value(v), false)
                    }
                    GenMode::Adversarial => {
                        let v = if self.rng.gen_bool(0.6) {
                            current(committed, &x).0
                        } else {
                            value_pool[self.rng.gen_range(0..value_pool.len())]
                        };
                        txn.read_set.insert(x, (v, 0));
                        (Ret::Value(v), false)
                    }
                }
            }
            Op::Write(x, v) => {
                txn.own_writes.insert(x, v);
                value_pool.push(v);
                (Ret::Ok, false)
            }
            Op::TryCommit => {
                let commit_ok = match self.config.mode {
                    GenMode::Simulated => read_set_valid(committed, txn, true),
                    GenMode::ValueValidated => read_set_valid(committed, txn, false),
                    GenMode::Adversarial => self.rng.gen_bool(0.7),
                };
                if commit_ok {
                    for (o, v) in txn.own_writes.drain() {
                        let ver = current(committed, &o).1;
                        committed.insert(o, (v, ver + 1));
                    }
                    (Ret::Committed, true)
                } else {
                    (Ret::Aborted, true)
                }
            }
            Op::TryAbort => (Ret::Aborted, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = HistoryGen::new(HistoryGenConfig::small_simulated(), 7).generate();
        let b = HistoryGen::new(HistoryGenConfig::small_simulated(), 7).generate();
        assert_eq!(a, b);
        let c = HistoryGen::new(HistoryGenConfig::small_simulated(), 8).generate();
        assert!(a != c || a.len() == c.len());
    }

    #[test]
    fn generates_well_formed_histories() {
        for seed in 0..200 {
            let h = HistoryGen::new(HistoryGenConfig::small_adversarial(), seed).generate();
            assert!(h.txn_count() <= 4);
            // Constructed through History::new, so well-formed by type;
            // sanity: every complete transaction ends with a response.
            for t in h.txns() {
                if t.is_t_complete() {
                    assert!(t.is_complete());
                }
            }
        }
    }

    #[test]
    fn unique_writes_mode_avoids_collisions() {
        for seed in 0..50 {
            let cfg = HistoryGenConfig::medium_simulated().with_unique_writes(true);
            let h = HistoryGen::new(cfg, seed).generate();
            // No two distinct transactions write the same (object, value)
            // pair, and nobody rewrites the initial value — Theorem 11's
            // hypothesis.
            let mut owner: std::collections::HashMap<(ObjId, Value), TxnId> =
                std::collections::HashMap::new();
            for t in h.txns() {
                for op in t.ops() {
                    if let Op::Write(x, v) = op.op {
                        assert_ne!(v, Value::INITIAL, "seed {seed} rewrote the initial value");
                        let prev = owner.insert((x, v), t.id());
                        assert!(
                            prev.is_none() || prev == Some(t.id()),
                            "seed {seed}: {x}={v} written by two transactions"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn medium_config_scales() {
        let h = HistoryGen::new(HistoryGenConfig::medium_simulated(), 1).generate();
        assert!(h.txn_count() >= 10, "got {}", h.txn_count());
    }

    fn access_counts(h: &History, objs: u32) -> Vec<usize> {
        let mut counts = vec![0usize; objs as usize];
        for t in h.txns() {
            for op in t.ops() {
                match op.op {
                    Op::Read(x) | Op::Write(x, _) => counts[x.index() as usize] += 1,
                    _ => {}
                }
            }
        }
        counts
    }

    #[test]
    fn uniform_is_the_default_distribution() {
        assert_eq!(
            HistoryGenConfig::small_simulated().key_dist,
            KeyDist::Uniform
        );
        assert_eq!(
            HistoryGenConfig::large_streaming().key_dist,
            KeyDist::Uniform
        );
    }

    #[test]
    fn zipfian_skews_access_toward_low_ids() {
        let mut first = 0;
        let mut last = 0;
        for seed in 0..20 {
            let cfg = HistoryGenConfig::medium_simulated()
                .with_objs(8)
                .with_key_dist(KeyDist::Zipfian { theta: 1.2 });
            let h = HistoryGen::new(cfg, seed).generate();
            let counts = access_counts(&h, 8);
            first += counts[0];
            last += counts[7];
        }
        assert!(
            first > 2 * last,
            "zipfian theta=1.2 should hit object 0 far more than object 7 \
             (got {first} vs {last})"
        );
    }

    #[test]
    fn hotspot_concentrates_access_on_the_hot_set() {
        let mut hot = 0;
        let mut total = 0;
        for seed in 0..20 {
            let cfg = HistoryGenConfig::medium_simulated()
                .with_objs(8)
                .with_key_dist(KeyDist::Hotspot {
                    hot_fraction: 0.25,
                    hot_prob: 0.9,
                });
            let h = HistoryGen::new(cfg, seed).generate();
            let counts = access_counts(&h, 8);
            hot += counts[0] + counts[1];
            total += counts.iter().sum::<usize>();
        }
        // Reads renormalize over the unread set, which dilutes the skew a
        // little below the nominal 90%; well above half is the invariant.
        assert!(
            hot * 2 > total,
            "hot 2/8 objects should absorb most accesses (got {hot}/{total})"
        );
    }

    #[test]
    fn skewed_generation_is_deterministic_and_well_formed() {
        for &dist in &[
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Hotspot {
                hot_fraction: 0.2,
                hot_prob: 0.8,
            },
        ] {
            let cfg = HistoryGenConfig::medium_simulated().with_key_dist(dist);
            let a = HistoryGen::new(cfg.clone(), 9).generate();
            let b = HistoryGen::new(cfg, 9).generate();
            assert_eq!(a, b, "{dist:?} must be deterministic per seed");
        }
    }

    #[test]
    #[should_panic(expected = "zipfian theta")]
    fn negative_theta_is_rejected() {
        let _ = HistoryGenConfig::small_simulated().with_key_dist(KeyDist::Zipfian { theta: -1.0 });
    }

    #[test]
    fn stall_prob_one_leaves_everything_incomplete() {
        let cfg = HistoryGenConfig {
            stall_prob: 1.0,
            ..HistoryGenConfig::small_simulated()
        };
        let h = HistoryGen::new(cfg, 3).generate();
        for t in h.txns() {
            assert!(!t.is_complete());
        }
    }
}
