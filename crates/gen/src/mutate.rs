//! Targeted violation injection.
//!
//! Each mutator perturbs a (presumably correct) history in a way that is
//! likely — not guaranteed — to break a correctness criterion, while
//! keeping the history well-formed. Tests pair them with the checkers to
//! confirm violations are caught, and with correct inputs to measure
//! near-miss discrimination.

use duop_history::{Event, EventKind, History, Op, Ret, Value};
use rand::Rng;

/// Replaces the value returned by one randomly chosen read with a
/// different value, producing a likely-illegal read.
///
/// Returns `None` if the history contains no value-returning read or the
/// mutation would be ill-formed.
pub fn corrupt_read_value(h: &History, rng: &mut impl Rng) -> Option<History> {
    let candidates: Vec<usize> = h
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Resp(Ret::Value(_))))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let at = candidates[rng.gen_range(0..candidates.len())];
    let mut events = h.events().to_vec();
    if let EventKind::Resp(Ret::Value(v)) = events[at].kind {
        let bumped = Value::new(v.get().wrapping_add(1 + rng.gen_range(0..5)));
        events[at] = Event::resp(events[at].txn, Ret::Value(bumped));
    }
    History::new(events).ok()
}

/// Flips one randomly chosen commit response (`C_k`) into an abort
/// (`A_k`), likely orphaning any reader of the transaction's writes.
///
/// Returns `None` if no transaction commits.
pub fn flip_commit_to_abort(h: &History, rng: &mut impl Rng) -> Option<History> {
    let candidates: Vec<usize> = h
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Resp(Ret::Committed)))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let at = candidates[rng.gen_range(0..candidates.len())];
    let mut events = h.events().to_vec();
    events[at] = Event::resp(events[at].txn, Ret::Aborted);
    History::new(events).ok()
}

/// Moves one randomly chosen `tryC` invocation (with its response, if any)
/// to the end of the history, which tends to break the deferred-update
/// condition while leaving plain opacity intact — the separation Theorem 10
/// is about.
///
/// Returns `None` if there is no `tryC` to move or the move is ill-formed.
pub fn delay_try_commit(h: &History, rng: &mut impl Rng) -> Option<History> {
    let invs: Vec<usize> = h
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Inv(Op::TryCommit)))
        .map(|(i, _)| i)
        .collect();
    if invs.is_empty() {
        return None;
    }
    let at = invs[rng.gen_range(0..invs.len())];
    let txn = h.events()[at].txn;
    let mut moved = Vec::new();
    let mut rest = Vec::new();
    for (i, e) in h.events().iter().enumerate() {
        if i >= at && e.txn == txn {
            moved.push(*e);
        } else {
            rest.push(*e);
        }
    }
    rest.extend(moved);
    History::new(rest).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duop_history::{HistoryBuilder, ObjId, TxnId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn sample() -> History {
        HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .committed_reader(t(2), x(), v(1))
            .build()
    }

    #[test]
    fn corrupt_read_changes_exactly_one_value() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let mutated = corrupt_read_value(&h, &mut rng).expect("has a read");
        assert_eq!(mutated.len(), h.len());
        let diffs = h
            .events()
            .iter()
            .zip(mutated.events())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn corrupt_read_requires_a_read() {
        let h = HistoryBuilder::new()
            .committed_writer(t(1), x(), v(1))
            .build();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(corrupt_read_value(&h, &mut rng).is_none());
    }

    #[test]
    fn flip_commit_aborts_a_committed_txn() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let mutated = flip_commit_to_abort(&h, &mut rng).expect("has commits");
        let aborted = mutated.txns().filter(|t| t.is_aborted()).count();
        assert_eq!(aborted, 1);
    }

    #[test]
    fn delay_try_commit_moves_txn_suffix_to_end() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let mutated = delay_try_commit(&h, &mut rng).expect("has tryC");
        assert_eq!(mutated.len(), h.len());
        // The last event is now a commit/abort response.
        assert!(matches!(
            mutated.events().last().unwrap().kind,
            EventKind::Resp(Ret::Committed | Ret::Aborted)
        ));
    }

    #[test]
    fn mutators_preserve_well_formedness() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            if let Some(m) = corrupt_read_value(&h, &mut rng) {
                assert_eq!(m.txn_count(), h.txn_count());
            }
            if let Some(m) = flip_commit_to_abort(&h, &mut rng) {
                assert_eq!(m.txn_count(), h.txn_count());
            }
            if let Some(m) = delay_try_commit(&h, &mut rng) {
                assert_eq!(m.txn_count(), h.txn_count());
            }
        }
    }
}
