//! Robustness corpus: hostile and malformed trace inputs must produce a
//! structured, JSON-formattable parse error and a usage-error exit code —
//! never a panic — from both `duop check` and `duop lint`.

use duop_history::trace::{from_json, parse_trace, TraceParseError, MAX_LINE_BYTES};

/// Each corpus entry: a label and the hostile trace text.
fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("nul-mid-line", "T1 \0tryc\n".into()),
        ("nul-at-start", "\0T1 tryc\n".into()),
        ("bell-control-char", "T1 tryc\x07\n".into()),
        ("carriage-return-mid-line", "T1\rtryc\n".into()),
        ("escape-sequence", "T1 \x1b[31mtryc\n".into()),
        (
            "overlong-line",
            format!("T1 write X0 {}\n", "9".repeat(MAX_LINE_BYTES + 100)),
        ),
        ("giant-txn-id", "T4294967295 tryc\n".into()),
        (
            "txn-id-overflows-u32",
            "T99999999999999999999 tryc\n".into(),
        ),
        ("giant-obj-id", "T1 read X4294967295\n".into()),
        ("reserved-t0", "T0 tryc\n".into()),
        ("unknown-action", "T1 frobnicate\n".into()),
        ("missing-action", "T1\n".into()),
        ("trailing-token", "T1 tryc extra\n".into()),
        ("read-missing-object", "T1 read\n".into()),
        ("write-missing-value", "T1 write X0\n".into()),
        ("negative-value", "T1 write X0 -1\n".into()),
        ("bad-object-prefix", "T1 read Y0\n".into()),
        ("non-ascii-action", "T1 rеad X0\n".into()),
        ("response-without-invocation", "T1 ok\n".into()),
        (
            "duplicate-commit-response",
            "T1 tryc\nT1 commit\nT1 commit\n".into(),
        ),
        ("value-for-write", "T1 write X0 1\nT1 val 1\n".into()),
        (
            "error-on-later-line",
            "T1 tryc\nT1 commit\nT2 bogus\n".into(),
        ),
    ]
}

fn json_corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("json-truncated", "[{\"txn\":"),
        ("json-not-an-array", "{\"txn\": 1}"),
        ("json-wrong-items", "[1, 2, 3]"),
        ("json-bare-bracket", "["),
        ("json-nul", "[\"\0\"]"),
    ]
}

fn temp_trace(label: &str, content: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("duop-malformed-{}-{label}.txt", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

/// Runs the CLI in-process; a panic would abort the test, so returning at
/// all is the no-panic guarantee.
fn run(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = duop_cli::run(&argv, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn check_and_lint_reject_every_malformed_trace_without_panicking() {
    for (label, content) in corpus() {
        let path = temp_trace(label, &content);
        for sub in ["check", "lint"] {
            let (code, output) = run(&[sub, &path]);
            assert_eq!(
                code, 2,
                "`duop {sub}` on {label} should exit 2, output:\n{output}"
            );
            assert!(
                output.contains("error:"),
                "`duop {sub}` on {label} should explain itself, output:\n{output}"
            );
        }
    }
}

#[test]
fn malformed_json_traces_are_rejected_too() {
    for (label, content) in json_corpus() {
        let path = temp_trace(label, content);
        let (code, output) = run(&["check", &path]);
        assert_eq!(code, 2, "{label} should exit 2, output:\n{output}");
        assert!(output.contains("error:"), "{label} output:\n{output}");
    }
}

#[test]
fn every_corpus_error_is_json_formattable() {
    for (label, content) in corpus() {
        let err = parse_trace(&content)
            .map(|_| ())
            .expect_err(&format!("{label} must fail to parse"));
        let json = serde_json::to_string(&err.to_content())
            .unwrap_or_else(|e| panic!("{label}: error does not serialize: {e}"));
        assert!(json.contains("\"error\":"), "{label}: {json}");
        assert!(json.contains("\"message\":"), "{label}: {json}");
        if let TraceParseError::Syntax { .. } = err {
            assert!(json.contains("\"line\":"), "{label}: {json}");
            assert!(json.contains("\"column\":"), "{label}: {json}");
        }
    }
    for (label, content) in json_corpus() {
        let err = from_json(content)
            .map(|_| ())
            .expect_err(&format!("{label} must fail to parse"));
        assert!(matches!(err, TraceParseError::Json { .. }), "{label}");
        let json = serde_json::to_string(&err.to_content()).unwrap();
        assert!(json.contains("\"error\":\"json\""), "{label}: {json}");
    }
}

#[test]
fn syntax_errors_point_at_the_offending_token() {
    let err = parse_trace("T1 tryc\n  T2 bogus\n").unwrap_err();
    match err {
        TraceParseError::Syntax { line, column, .. } => {
            assert_eq!(line, 2);
            assert_eq!(column, 6);
        }
        other => panic!("expected a syntax error, got {other:?}"),
    }
}
