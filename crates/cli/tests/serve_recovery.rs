//! Kill/recover soak: a real `duop serve` daemon is killed mid-stream by
//! its deterministic fault hooks while several concurrent sessions are
//! being fed, restarted against the same `--state-dir`, and the clients
//! re-stream their unacknowledged suffixes. Every final verdict must be
//! byte-identical to a one-shot `duop check --criterion du --format json`
//! of the same trace — recovery is invisible in the output.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const DUOP: &str = env!("CARGO_BIN_EXE_duop");

/// Exit code the fault hooks use (mirrors `duop_serve::KILL_EXIT_CODE`).
const KILL_EXIT_CODE: i32 = 83;

fn temp_dir(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("duop-serve-rec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.to_string_lossy().into_owned()
}

fn repo_trace(name: &str) -> String {
    format!(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/traces/{}"),
        name
    )
}

/// Starts the daemon and blocks until it prints its ephemeral address.
fn start_daemon(state_dir: &str, envs: &[(&str, &str)]) -> (Child, String) {
    let mut cmd = Command::new(DUOP);
    cmd.args(["serve", "--state-dir", state_dir])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn duop serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("daemon banner line")
        .expect("read daemon stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {first}"))
        .to_owned();
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn client(trace: &str, addr: &str, extra: &[&str]) -> std::process::Output {
    let mut args = vec!["client", trace, "--addr", addr, "--chunk-events", "2"];
    args.extend_from_slice(extra);
    Command::new(DUOP)
        .args(&args)
        .output()
        .expect("run duop client")
}

fn batch_verdict(trace: &str) -> Vec<u8> {
    let out = Command::new(DUOP)
        .args(["check", trace, "--criterion", "du", "--format", "json"])
        .output()
        .expect("run duop check");
    out.stdout
}

/// The core soak: stream every example trace concurrently into a daemon
/// armed to die once `kill_env` fires, restart it on the same state dir,
/// re-stream the suffixes, and diff the verdicts against one-shot checks.
fn kill_recover_roundtrip(tag: &str, kill_env: &str, kill_at: &str) {
    let state = temp_dir(tag);
    let traces = ["clean.txt", "fig2.txt", "lost-update.txt", "stale-read.txt"];

    let (mut daemon, addr) = start_daemon(&state, &[(kill_env, kill_at)]);

    // First pass: concurrent clients race the fault hook. Some sessions
    // finish, some are cut off mid-stream — both are fine, the point is
    // the daemon dies with streams in flight.
    let firsts: Vec<_> = traces
        .iter()
        .map(|t| {
            let trace = repo_trace(t);
            let addr = addr.clone();
            std::thread::spawn(move || client(&trace, &addr, &[]))
        })
        .collect();
    for h in firsts {
        let _ = h.join().expect("first-pass client");
    }
    let status = daemon.wait().expect("wait daemon");
    assert_eq!(
        status.code(),
        Some(KILL_EXIT_CODE),
        "{tag}: fault hook should kill the daemon with exit {KILL_EXIT_CODE}"
    );

    // The daemon died, so at least one checkpoint must exist for
    // recovery to mean anything.
    let checkpoints = std::fs::read_dir(&state)
        .expect("read state dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".ck"))
        .count();
    assert!(checkpoints > 0, "{tag}: no checkpoints written before kill");

    // Second pass: restart, re-attach each trace to its recovered
    // session (ids are assigned in creation order 1..=N, but clients may
    // have raced — so resolve by re-streaming through explicit ids and
    // accepting whichever trace each session holds is already acked).
    // Simpler and order-independent: give every trace a *fresh* client
    // run against its original session id; the client reads the acked
    // offset and re-streams only the suffix. Session ids were assigned
    // in spawn order, which is racy, so instead let each trace claim a
    // brand-new session too and verify both paths.
    let (mut daemon2, addr2) = start_daemon(&state, &[]);

    // Recovered sessions: ids 1..=k for whatever k sessions were
    // created before the kill. Re-stream every trace through every
    // recovered id is wrong (different traces); instead, each client
    // created its own session, and the suffix-resume contract is what we
    // soak here: re-run the same client for each session id with the
    // trace it originally streamed. We can recover the pairing from the
    // first pass outputs, but the race makes that brittle; so this test
    // streams the traces *sequentially* in a fixed order on a fresh
    // state dir below for the byte-diff, and here asserts recovery is
    // lossless for re-created sessions.
    for t in &traces {
        let trace = repo_trace(t);
        let out = client(&trace, &addr2, &[]);
        assert!(
            out.status.code().is_some(),
            "{tag}: second-pass client for {t} died"
        );
        assert_eq!(
            out.stdout,
            batch_verdict(&trace),
            "{tag}: fresh-session verdict for {t}"
        );
    }
    let _ = daemon2.kill();
    let _ = daemon2.wait();
    let _ = std::fs::remove_dir_all(&state);
}

/// Deterministic single-session recovery: stream a trace in small
/// chunks, kill at a precise ingest count, restart, resume the *same*
/// session by id, and require the final verdict byte-identical to the
/// one-shot check.
fn deterministic_resume(tag: &str, kill_env: &str, kill_at: &str, trace_name: &str) {
    let state = temp_dir(tag);
    let trace = repo_trace(trace_name);

    let (mut daemon, addr) = start_daemon(&state, &[(kill_env, kill_at)]);
    let first = client(&trace, &addr, &[]);
    assert_ne!(
        first.status.code(),
        Some(0),
        "{tag}: client should fail when the daemon dies mid-stream \
         (stdout: {:?})",
        String::from_utf8_lossy(&first.stdout)
    );
    let status = daemon.wait().expect("wait daemon");
    assert_eq!(status.code(), Some(KILL_EXIT_CODE), "{tag}: daemon exit");

    let (mut daemon2, addr2) = start_daemon(&state, &[]);
    let second = client(&trace, &addr2, &["--session", "1"]);
    assert_eq!(
        second.stdout,
        batch_verdict(&trace),
        "{tag}: recovered verdict differs from one-shot check"
    );
    let _ = daemon2.kill();
    let _ = daemon2.wait();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn kill_during_ingest_then_recover_concurrent_sessions() {
    // Die once 6 events have been ingested across all sessions, before
    // the acknowledging checkpoint — clients lose their tail.
    kill_recover_roundtrip("ingest", "DUOP_SERVE_KILL_INGEST", "6");
}

#[test]
fn kill_during_checkpoint_then_recover_concurrent_sessions() {
    // Die immediately before the 3rd checkpoint write — a crash inside
    // the persistence path itself.
    kill_recover_roundtrip("checkpoint", "DUOP_SERVE_KILL_CHECKPOINT", "3");
}

#[test]
fn deterministic_suffix_resume_matches_one_shot_check() {
    deterministic_resume(
        "det-violated",
        "DUOP_SERVE_KILL_INGEST",
        "5",
        "lost-update.txt",
    );
    deterministic_resume("det-clean", "DUOP_SERVE_KILL_INGEST", "4", "clean.txt");
}

#[test]
fn recovery_survives_a_corrupt_checkpoint_neighbor() {
    // A truncated checkpoint next to a good one: the daemon must skip
    // the corrupt file, recover the good session, and keep serving.
    let state = temp_dir("corrupt");
    let trace = repo_trace("fig2.txt");

    let (mut daemon, addr) = start_daemon(&state, &[("DUOP_SERVE_KILL_INGEST", "5")]);
    let _ = client(&trace, &addr, &[]);
    assert_eq!(daemon.wait().expect("wait").code(), Some(KILL_EXIT_CODE));

    std::fs::write(format!("{state}/session-999.ck"), b"{\"kind\":\"sess").expect("plant corrupt");

    let (mut daemon2, addr2) = start_daemon(&state, &[]);
    let out = client(&trace, &addr2, &["--session", "1"]);
    assert_eq!(
        out.stdout,
        batch_verdict(&trace),
        "recovery with corrupt neighbor"
    );
    let _ = daemon2.kill();
    let _ = daemon2.wait();
    let _ = std::fs::remove_dir_all(&state);
}
