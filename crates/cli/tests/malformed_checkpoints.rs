//! Robustness corpus: hostile and corrupted checkpoint files must make
//! `duop resume` exit with a structured error and the usage-error exit
//! code — never a panic, and never a silently wrong verdict from a
//! mangled snapshot. Mirrors the malformed-trace corpus from the fault
//! injection work.

use duop_core::snapshot::{self, load, CheckSnapshot, InFlight, Snapshot, SnapshotError};
use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

/// A well-formed checkpoint file body to corrupt.
fn good_checkpoint() -> String {
    let h = HistoryBuilder::new()
        .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
        .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
        .build();
    snapshot::to_file_string(&Snapshot::Check(CheckSnapshot {
        events: h.events().to_vec(),
        criteria: vec!["du".to_string()],
        format: "text".to_string(),
        decompose: true,
        prelint: true,
        ladder: true,
        escalate_milli: 2000,
        current: Some(InFlight {
            name: "du".to_string(),
            explored: 17,
            fragments: Vec::new(),
        }),
        ..CheckSnapshot::default()
    }))
}

/// Each corpus entry: a label and the hostile checkpoint bytes.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let good = good_checkpoint();
    let mut entries: Vec<(&'static str, Vec<u8>)> = vec![
        ("empty-file", Vec::new()),
        ("not-json", b"this is not a checkpoint\n".to_vec()),
        ("json-but-not-object", b"[1, 2, 3]\n".to_vec()),
        ("truncated-half", good.as_bytes()[..good.len() / 2].to_vec()),
        (
            "truncated-one-byte",
            good.as_bytes()[..good.len() - 2].to_vec(),
        ),
        (
            "wrong-version",
            good.replacen("\"version\":1", "\"version\":99", 1)
                .into_bytes(),
        ),
        (
            "missing-version",
            good.replacen("\"version\":1,", "", 1).into_bytes(),
        ),
        ("bad-hash-field", {
            let hash_start = good.find("\"hash\":\"").unwrap() + 8;
            let mut bad = good.clone().into_bytes();
            bad[hash_start] = b'z';
            bad
        }),
        (
            "wrong-kind",
            good.replacen("\"kind\":\"check\"", "\"kind\":\"cheque\"", 1)
                .into_bytes(),
        ),
        ("nul-bytes", b"\0\0\0\0".to_vec()),
        (
            // Valid JSON, tampered content: the integrity hash must catch
            // a payload edit that the parser cannot.
            "value-tamper",
            good.replacen("\"explored\":17", "\"explored\":71", 1)
                .into_bytes(),
        ),
    ];
    // Bit-flips inside the payload: the hash must catch every one. Flip a
    // byte at several positions past the payload marker.
    let payload_at = good.find("\"payload\":").unwrap() + 12;
    for (label, offset) in [
        ("bit-flip-early", payload_at),
        (
            "bit-flip-middle",
            payload_at + (good.len() - payload_at) / 2,
        ),
        ("bit-flip-late", good.len() - 4),
    ] {
        let mut bytes = good.clone().into_bytes();
        bytes[offset] ^= 0x20;
        entries.push((label, bytes));
    }
    entries
}

fn temp_checkpoint(label: &str, content: &[u8]) -> String {
    let path = std::env::temp_dir().join(format!("duop-badck-{}-{label}.json", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

/// Runs the CLI in-process; a panic would abort the test, so returning at
/// all is the no-panic guarantee.
fn run(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = duop_cli::run(&argv, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn resume_rejects_every_corrupt_checkpoint_without_panicking() {
    for (label, content) in corpus() {
        let path = temp_checkpoint(label, &content);
        let (code, output) = run(&["resume", &path]);
        assert_eq!(
            code, 2,
            "`duop resume` on {label} should exit 2, output:\n{output}"
        );
        assert!(
            output.contains("error:"),
            "`duop resume` on {label} should explain itself, output:\n{output}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn missing_checkpoint_is_an_io_error() {
    let (code, output) = run(&["resume", "/nonexistent/duop-no-such.ck"]);
    assert_eq!(code, 2, "output:\n{output}");
    assert!(output.contains("error:"), "output:\n{output}");
}

#[test]
fn corrupt_checkpoints_map_to_the_right_structured_errors() {
    let cases = corpus();
    let expect = |label: &str| {
        cases
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(l, c)| (temp_checkpoint(l, c), *l))
            .unwrap()
    };
    type Matcher<'a> = &'a dyn Fn(&SnapshotError) -> bool;
    for (label, matcher) in [
        (
            "truncated-half",
            (&|e: &SnapshotError| matches!(e, SnapshotError::Syntax(_))) as Matcher,
        ),
        ("wrong-version", &|e| {
            matches!(e, SnapshotError::WrongVersion { found: 99 })
        }),
        // A blind bit-flip may hit a structural byte (Syntax) or only
        // content (HashMismatch); either way it must be caught.
        ("bit-flip-middle", &|e| {
            matches!(
                e,
                SnapshotError::HashMismatch | SnapshotError::Syntax(_) | SnapshotError::Shape(_)
            )
        }),
        ("value-tamper", &|e| {
            matches!(e, SnapshotError::HashMismatch)
        }),
        ("wrong-kind", &|e| {
            matches!(e, SnapshotError::HashMismatch | SnapshotError::Shape(_))
        }),
    ] {
        let (path, label) = expect(label);
        let err = load(&path).expect_err(label);
        assert!(matcher(&err), "{label}: got {err:?}");
        let _ = std::fs::remove_file(&path);
    }
    let err = load("/nonexistent/duop-no-such.ck").expect_err("missing file");
    assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
}

#[test]
fn the_uncorrupted_checkpoint_actually_resumes() {
    // The corpus is only meaningful if its base file is valid: the same
    // bytes with no corruption must load and resume to a verdict.
    let path = temp_checkpoint("pristine", good_checkpoint().as_bytes());
    let loaded = load(&path).expect("pristine checkpoint must load");
    assert!(matches!(loaded, Snapshot::Check(_)));
    let (code, output) = run(&["resume", &path]);
    assert_eq!(code, 0, "pristine resume should succeed, output:\n{output}");
    assert!(output.contains("du-opacity"), "output:\n{output}");
    let _ = std::fs::remove_file(&path);
}
