//! End-to-end signal handling: a real `duop check --checkpoint` process
//! killed with SIGTERM mid-search must flush a final checkpoint and exit
//! cleanly, and `duop resume` on that checkpoint must reach the same
//! verdict as the uninterrupted run. This drives the actual binary (the
//! in-process tests cannot exercise the signal handler in `main.rs`).

#![cfg(unix)]

use std::io::Write as _;
use std::process::{Command, Stdio};

const DUOP: &str = env!("CARGO_BIN_EXE_duop");

fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("duop-signal-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// A generated history large and concurrent enough that the sequential
/// search runs for a while (empirically ~1s in debug builds), giving the
/// signal a wide window.
fn slow_trace(path: &str, txns: u32) {
    let out = Command::new(DUOP)
        .args([
            "generate",
            "--mode",
            "simulated",
            "--seed",
            "7",
            "--objs",
            "2",
            "--concurrency",
            "24",
            "--txns",
            &txns.to_string(),
        ])
        .output()
        .expect("run duop generate");
    assert!(out.status.success());
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(&out.stdout))
        .expect("write trace");
}

fn check_args(trace: &str) -> Vec<String> {
    [
        "check",
        trace,
        "--criterion",
        "du-opacity",
        "--no-prelint",
        "--no-ladder",
        "--no-decompose",
        "--threads",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn sigterm_flushes_a_resumable_checkpoint() {
    let trace = temp_path("trace.txt");
    let ck = temp_path("ck.json");

    // The uninterrupted truth, computed once up front.
    slow_trace(&trace, 120);
    let truth = Command::new(DUOP)
        .args(check_args(&trace))
        .output()
        .expect("uninterrupted check");
    let truth_code = truth.status.code();

    // Try to land a SIGTERM mid-search; the window scales with trace
    // size, so grow the trace if the check keeps winning the race.
    let mut interrupted = false;
    for (txns, delay_ms) in [(120u32, 150u64), (150, 150), (200, 250)] {
        slow_trace(&trace, txns);
        let _ = std::fs::remove_file(&ck);
        let child = Command::new(DUOP)
            .args(check_args(&trace))
            .args(["--checkpoint", &ck])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn duop check");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        let _ = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status();
        let out = child.wait_with_output().expect("wait for duop check");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        if stdout.contains("interrupted") {
            assert!(
                stdout.contains("progress checkpointed"),
                "interrupted run must say where it flushed:\n{stdout}"
            );
            assert!(
                std::path::Path::new(&ck).exists(),
                "checkpoint file missing after SIGTERM"
            );
            interrupted = true;
            break;
        }
        // The check finished before the signal landed; its verdict must
        // still match the truth run.
        assert_eq!(
            out.status.code(),
            truth_code,
            "un-interrupted rerun diverged"
        );
    }

    if interrupted {
        // Resume must complete to the same verdict as the uninterrupted
        // run (the resumed trace may be a larger one than the truth
        // trace — recompute truth for whatever was interrupted).
        let fresh = Command::new(DUOP)
            .args(check_args(&trace))
            .output()
            .expect("fresh check");
        let resumed = Command::new(DUOP)
            .args(["resume", &ck])
            .output()
            .expect("duop resume");
        assert_eq!(
            resumed.status.code(),
            fresh.status.code(),
            "resumed verdict diverges from uninterrupted run:\nfresh: {}\nresumed: {}",
            String::from_utf8_lossy(&fresh.stdout),
            String::from_utf8_lossy(&resumed.stdout),
        );
        let fresh_line = String::from_utf8_lossy(&fresh.stdout)
            .lines()
            .find(|l| l.starts_with("du-opacity"))
            .map(str::to_owned)
            .expect("fresh run prints a du-opacity line");
        let resumed_out = String::from_utf8_lossy(&resumed.stdout).into_owned();
        assert!(
            resumed_out.contains(&fresh_line),
            "resumed output must contain the uninterrupted verdict line\nexpected: {fresh_line}\ngot:\n{resumed_out}"
        );
    } else {
        eprintln!("note: SIGTERM never landed mid-search on this machine; covered the finished-before-signal path only");
    }

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&ck);
}
