//! Distributed-vs-local verdict equivalence.
//!
//! The sharded pipeline's contract is exactness: for every history and
//! criterion, `run_sharded` must return the same [`Verdict`] as the
//! in-process checker — same witness order, same commit choices, same
//! violation, not merely the same satisfied/violated bit. This suite
//! sweeps criteria × worker counts × decomposition on generated
//! histories (du-opaque by construction *and* adversarial), validates
//! every satisfied witness independently with [`check_witness`], and
//! exercises the worker-death re-queue path with the fault-injection
//! hook.

use duop_core::{
    check_criterion_with_stats, check_witness, CriterionKind, PlanCriterion, SearchConfig, Verdict,
};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::History;
use duop_shard::{
    run_sharded, ShardConfig, ShardCriterion, ShardJob, KILL_AFTER_HELLO_ENV, KILL_TASK_ENV,
};

fn worker_cmd() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_duop").to_owned(),
        "shard-worker".to_owned(),
    ]
}

fn shard_config(workers: usize, decompose: bool) -> ShardConfig {
    ShardConfig {
        workers,
        worker_cmd: worker_cmd(),
        decompose,
        ..ShardConfig::default()
    }
}

fn local_config(decompose: bool) -> SearchConfig {
    SearchConfig {
        decompose,
        prelint: true,
        ladder: true,
        ..SearchConfig::default()
    }
}

fn sample_histories() -> Vec<History> {
    let mut histories = Vec::new();
    for seed in [3, 17] {
        let cfg = HistoryGenConfig::medium_simulated().with_txns(30);
        histories.push(HistoryGen::new(cfg, seed).generate());
    }
    for seed in [5, 23] {
        let cfg = HistoryGenConfig {
            txns: 20,
            objs: 4,
            mode: GenMode::Adversarial,
            ..HistoryGenConfig::medium_simulated()
        };
        histories.push(HistoryGen::new(cfg, seed).generate());
    }
    histories
}

fn witness_kind(criterion: PlanCriterion) -> Option<CriterionKind> {
    match criterion {
        PlanCriterion::Du => Some(CriterionKind::DuOpacity),
        PlanCriterion::FinalState => Some(CriterionKind::FinalStateOpacity),
        PlanCriterion::Rco => Some(CriterionKind::ReadCommitOrder),
        _ => None,
    }
}

#[test]
fn distributed_matches_local_across_the_matrix() {
    let histories = sample_histories();
    let criteria = [
        PlanCriterion::Du,
        PlanCriterion::FinalState,
        PlanCriterion::Rco,
    ];

    for criterion in criteria {
        for workers in [1usize, 4] {
            for decompose in [true, false] {
                let jobs: Vec<ShardJob> = histories
                    .iter()
                    .map(|h| ShardJob {
                        history: h.clone(),
                        criterion: ShardCriterion::Plan(criterion),
                    })
                    .collect();
                let verdicts = run_sharded(jobs, &shard_config(workers, decompose))
                    .expect("sharded run completes");
                assert_eq!(verdicts.len(), histories.len());

                for (h, distributed) in histories.iter().zip(&verdicts) {
                    let (local, _) =
                        check_criterion_with_stats(h, criterion, &local_config(decompose));
                    assert_eq!(
                        *distributed,
                        local,
                        "criterion {} workers {workers} decompose {decompose}: \
                         distributed and local verdicts diverge",
                        criterion.token(),
                    );
                    if let (Verdict::Satisfied(witness), Some(kind)) =
                        (distributed, witness_kind(criterion))
                    {
                        check_witness(h, witness, kind).unwrap_or_else(|e| {
                            panic!(
                                "criterion {} workers {workers}: merged witness invalid: {e}",
                                criterion.token()
                            )
                        });
                    }
                }
            }
        }
    }
}

#[test]
fn opacity_ships_whole_histories_and_matches() {
    use duop_core::{Criterion, Opacity};
    for h in sample_histories() {
        let jobs = vec![ShardJob {
            history: h.clone(),
            criterion: ShardCriterion::Opacity,
        }];
        let verdicts = run_sharded(jobs, &shard_config(2, true)).expect("sharded run completes");
        let local = Opacity::with_config(local_config(true)).check(&h);
        assert_eq!(
            verdicts[0], local,
            "opacity diverged on a whole-history job"
        );
    }
}

/// Killing a worker mid-component must cost one re-queue, not the
/// verdict: with the injected death on the first dispatch of task 0,
/// the retry (attempt 1) answers normally and the merged verdict equals
/// the uninterrupted run's.
#[test]
fn worker_death_requeues_and_preserves_the_verdict() {
    let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(30), 3).generate();
    let jobs = |criterion| {
        vec![ShardJob {
            history: h.clone(),
            criterion,
        }]
    };

    let baseline = run_sharded(
        jobs(ShardCriterion::Plan(PlanCriterion::Du)),
        &shard_config(2, true),
    )
    .expect("uninterrupted run completes");

    let mut killer = shard_config(2, true);
    killer.worker_env = vec![(KILL_TASK_ENV.to_owned(), "0".to_owned())];
    let survived = run_sharded(jobs(ShardCriterion::Plan(PlanCriterion::Du)), &killer)
        .expect("run survives an injected worker death");

    assert_eq!(
        survived, baseline,
        "verdict changed after a worker was killed mid-component"
    );
    assert!(
        matches!(survived[0], Verdict::Satisfied(_) | Verdict::Violated(_)),
        "the re-queued task must still be decided, not degraded to unknown"
    );
}

/// Workers that die shortly after the handshake, never reading a frame,
/// fail every dispatch: the task dies unread in the pipe (or the write
/// itself breaks). The coordinator must keep the task through both
/// routes — re-queue it, burn the retry budget on the equally doomed
/// respawns, and degrade the verdict to `unknown (worker-death)` —
/// never strand it off the queue and stall. (If a worker loses a timing
/// race and dies before the task even reaches it, `AllWorkersDead` is
/// the documented outcome instead; both prove the task was not
/// silently lost.)
#[test]
fn failed_dispatch_never_strands_a_task() {
    use duop_core::UnknownReason;
    use duop_shard::ShardError;
    let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(30), 3).generate();

    let mut cfg = shard_config(1, false);
    cfg.retry = 1;
    cfg.prelint = false; // force a real task: the lint prefilter must not decide it
    cfg.ladder = false;
    cfg.worker_env = vec![(KILL_AFTER_HELLO_ENV.to_owned(), "1".to_owned())];

    match run_sharded(
        vec![ShardJob {
            history: h,
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        }],
        &cfg,
    ) {
        Ok(verdicts) => match &verdicts[0] {
            Verdict::Unknown {
                reason: UnknownReason::WorkerDeath,
                ..
            } => {}
            other => panic!("expected unknown (worker-death), got {other:?}"),
        },
        Err(ShardError::AllWorkersDead(_)) => {}
        Err(other) => panic!("expected a completed run or all-workers-dead, got {other}"),
    }
}

/// With the retry budget forced to zero, the same injected death must
/// degrade the affected verdict to `unknown (worker-death)` instead of
/// failing the run — the documented fallback.
#[test]
fn exhausted_retry_budget_degrades_to_worker_death() {
    use duop_core::UnknownReason;
    let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(30), 3).generate();

    let mut cfg = shard_config(1, false);
    cfg.retry = 0;
    cfg.prelint = false; // force a real search task the hook can kill
    cfg.ladder = false;
    cfg.worker_env = vec![(KILL_TASK_ENV.to_owned(), "0".to_owned())];

    let verdicts = run_sharded(
        vec![ShardJob {
            history: h,
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        }],
        &cfg,
    )
    .expect("the run itself must survive");
    match &verdicts[0] {
        Verdict::Unknown {
            reason: UnknownReason::WorkerDeath,
            ..
        } => {}
        other => panic!("expected unknown (worker-death), got {other:?}"),
    }
}
