//! The exit-code contract, in one table: every verdict-bearing
//! subcommand exits 0 when everything it checked holds, 1 when it found
//! a violation (or a fuzz finding), and 2 on malformed input or usage
//! errors. Scripts and CI steps branch on these codes, so the table is
//! pinned across all six subcommands — check, lint, fuzz, monitor,
//! localize, and resume.

use duop_core::snapshot::{self, CheckSnapshot, InFlight, Snapshot};
use duop_history::trace::parse_trace;

const GOOD: &str =
    "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 1\nT2 tryc\nT2 commit\n";
const BAD: &str =
    "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 9\nT2 tryc\nT2 commit\n";
const MALFORMED: &str = "T1 frobnicate\n";

fn temp_file(label: &str, content: &str) -> String {
    let path = std::env::temp_dir().join(format!("duop-exit-{}-{label}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

/// A valid checkpoint whose resumed check yields the given trace's
/// verdict.
fn checkpoint_for(label: &str, trace: &str) -> String {
    let events = parse_trace(trace).unwrap().events().to_vec();
    let body = snapshot::to_file_string(&Snapshot::Check(CheckSnapshot {
        events,
        criteria: vec!["du".to_string()],
        format: "text".to_string(),
        decompose: true,
        prelint: true,
        ladder: true,
        escalate_milli: 2000,
        current: Some(InFlight {
            name: "du".to_string(),
            explored: 0,
            fragments: Vec::new(),
        }),
        ..CheckSnapshot::default()
    }));
    temp_file(label, &body)
}

fn run(args: &[String]) -> (i32, String) {
    let mut out = Vec::new();
    let code = duop_cli::run(args, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn every_subcommand_honors_the_exit_code_table() {
    let good = temp_file("good.trace", GOOD);
    let bad = temp_file("bad.trace", BAD);
    let malformed = temp_file("malformed.trace", MALFORMED);
    let ck_good = checkpoint_for("good.ck", GOOD);
    let ck_bad = checkpoint_for("bad.ck", BAD);
    let ck_corrupt = temp_file("corrupt.ck", "not a checkpoint\n");

    // (label, argv, expected exit code)
    let table: Vec<(&str, Vec<String>, i32)> = vec![
        ("check satisfied", vec!["check".into(), good.clone()], 0),
        ("check violated", vec!["check".into(), bad.clone()], 1),
        (
            "check malformed",
            vec!["check".into(), malformed.clone()],
            2,
        ),
        (
            "check bad flag",
            vec![
                "check".into(),
                good.clone(),
                "--escalate".into(),
                "0.5".into(),
            ],
            2,
        ),
        ("lint clean", vec!["lint".into(), good.clone()], 0),
        ("lint diagnosed", vec!["lint".into(), bad.clone()], 1),
        ("lint malformed", vec!["lint".into(), malformed.clone()], 2),
        (
            "fuzz safe engine",
            vec![
                "fuzz".into(),
                "--engine".into(),
                "tl2".into(),
                "--iters".into(),
                "5".into(),
                "--seed".into(),
                "1".into(),
            ],
            0,
        ),
        (
            "fuzz finding",
            vec![
                "fuzz".into(),
                "--engine".into(),
                "dirty".into(),
                "--iters".into(),
                "40".into(),
                "--seed".into(),
                "3".into(),
            ],
            1,
        ),
        (
            "fuzz finding (json)",
            vec![
                "fuzz".into(),
                "--engine".into(),
                "dirty".into(),
                "--iters".into(),
                "40".into(),
                "--seed".into(),
                "3".into(),
                "--format".into(),
                "json".into(),
            ],
            1,
        ),
        (
            "fuzz unknown engine",
            vec!["fuzz".into(), "--engine".into(), "warp".into()],
            2,
        ),
        ("monitor satisfied", vec!["monitor".into(), good.clone()], 0),
        ("monitor violated", vec!["monitor".into(), bad.clone()], 1),
        (
            "monitor malformed",
            vec!["monitor".into(), malformed.clone()],
            2,
        ),
        (
            "localize satisfied",
            vec!["localize".into(), good.clone()],
            0,
        ),
        ("localize violated", vec!["localize".into(), bad.clone()], 1),
        (
            "localize malformed",
            vec!["localize".into(), malformed.clone()],
            2,
        ),
        (
            "resume to satisfied",
            vec!["resume".into(), ck_good.clone()],
            0,
        ),
        (
            "resume to violated",
            vec!["resume".into(), ck_bad.clone()],
            1,
        ),
        (
            "resume corrupt",
            vec!["resume".into(), ck_corrupt.clone()],
            2,
        ),
        (
            "resume missing file",
            vec!["resume".into(), "/nonexistent/duop.ck".into()],
            2,
        ),
        ("unknown subcommand", vec!["transmogrify".into()], 2),
    ];

    for (label, argv, expected) in table {
        let (code, output) = run(&argv);
        assert_eq!(
            code, expected,
            "{label}: expected exit {expected}, got {code}, output:\n{output}"
        );
        if expected == 2 {
            assert!(
                output.contains("error:"),
                "{label}: exit-2 runs must explain themselves, output:\n{output}"
            );
        }
    }

    for f in [good, bad, malformed, ck_good, ck_bad, ck_corrupt] {
        let _ = std::fs::remove_file(f);
    }
}
