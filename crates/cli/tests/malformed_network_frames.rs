//! Robustness corpus for the TCP shard transport: a `shard-serve`
//! daemon fed hostile bytes in place of the authenticated hello must
//! reject the connection before reading a single task frame and keep
//! serving — never panic, never wedge — and a coordinator pointed at a
//! garbage-speaking listener must return, never hang. The network
//! mirror of `malformed_shard_frames.rs`.

use duop_history::binary::{crc32, write_varint};
use duop_shard::protocol::{
    auth_tag, decode_challenge, encode_auth, encode_hello, encode_task, FrameReader, TaskMsg,
    FRAME_AUTH, FRAME_CHALLENGE, FRAME_HEARTBEAT, FRAME_HELLO, FRAME_SHUTDOWN, FRAME_TASK,
    MAX_PAYLOAD_BYTES, NONCE_LEN, TAG_LEN,
};
use duop_shard::{
    run_sharded, ShardConfig, ShardCriterion, ShardJob, ShardServeConfig, ShardServer,
};
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

const SECRET: &[u8] = b"corpus-secret";

/// Starts an in-process daemon; the caller talks raw TCP to it. The
/// thread (and its socket) die with the shutdown handle at test end.
fn start_daemon() -> (SocketAddr, duop_shard::ShardServeHandle) {
    let server = ShardServer::bind(ShardServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        secret: SECRET.to_vec(),
        drop_conn: None,
        stall_conn: None,
    })
    .expect("bind shard-serve");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("daemon accept loop");
    });
    (addr, handle)
}

/// Connects and reads the daemon's challenge nonce.
fn connect_and_read_challenge(addr: SocketAddr) -> (TcpStream, [u8; NONCE_LEN]) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    let (ty, payload) = reader
        .read_frame()
        .expect("challenge frame decodes")
        .expect("daemon sends a challenge");
    assert_eq!(ty, FRAME_CHALLENGE, "first daemon frame is the challenge");
    let nonce = decode_challenge(payload).expect("challenge payload decodes");
    (stream, nonce)
}

/// A raw frame with independent control over every field.
fn raw_frame(ty: u8, payload: &[u8], crc: u32) -> Vec<u8> {
    let mut out = vec![ty];
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn good_frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut covered = vec![ty];
    covered.extend_from_slice(payload);
    raw_frame(ty, payload, crc32(&covered))
}

fn sample_task_frame() -> Vec<u8> {
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
    let h = HistoryBuilder::new()
        .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
        .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
        .build();
    good_frame(
        FRAME_TASK,
        &encode_task(&TaskMsg {
            task_id: 0,
            attempt: 0,
            criterion: "du".to_owned(),
            prelint: false,
            ladder: false,
            decompose: true,
            saturate: false,
            max_states: 0,
            deadline_ms: 0,
            history: duop_history::binary::encode(&h),
        }),
    )
}

/// Drains the connection, returning every frame type the daemon sent
/// after the bytes under test (heartbeats only start post-auth, so any
/// `FRAME_HELLO` here means the hostile bytes authenticated).
fn drain_frame_types(stream: &TcpStream) -> Vec<u8> {
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    let mut seen = Vec::new();
    loop {
        match reader.read_frame() {
            Ok(Some((ty, _))) => seen.push(ty),
            Ok(None) | Err(_) => return seen,
        }
    }
}

/// Completes a legitimate handshake and hello exchange, proving the
/// daemon is alive and still accepts honest coordinators.
fn good_handshake_succeeds(addr: SocketAddr) {
    let (mut stream, nonce) = connect_and_read_challenge(addr);
    let mut bytes = good_frame(FRAME_AUTH, &encode_auth(&auth_tag(SECRET, &nonce)));
    bytes.extend_from_slice(&good_frame(FRAME_HELLO, &encode_hello()));
    stream.write_all(&bytes).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    loop {
        let (ty, _) = reader
            .read_frame()
            .expect("worker reply decodes")
            .expect("worker replies before EOF");
        if ty == FRAME_HEARTBEAT {
            continue;
        }
        assert_eq!(ty, FRAME_HELLO, "worker answers the hello");
        break;
    }
    stream.write_all(&good_frame(FRAME_SHUTDOWN, &[])).unwrap();
}

/// Hostile bytes built per-connection from the challenge nonce, so
/// entries can be almost-right.
type HostileBytes = Box<dyn Fn(&[u8; NONCE_LEN]) -> Vec<u8>>;

/// Each corpus entry: a label and the hostile bytes sent where the
/// `FRAME_AUTH` answer belongs.
fn corpus() -> Vec<(&'static str, HostileBytes)> {
    vec![
        (
            "garbage-instead-of-auth",
            Box::new(|_| vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF, 0x13, 0x37]),
        ),
        (
            "http-request-instead-of-auth",
            // A port scanner or misdirected curl must bounce cleanly.
            Box::new(|_| b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec()),
        ),
        (
            "hello-before-auth",
            Box::new(|_| good_frame(FRAME_HELLO, &encode_hello())),
        ),
        ("task-before-auth", Box::new(|_| sample_task_frame())),
        (
            "wrong-secret-tag",
            Box::new(|nonce| {
                good_frame(
                    FRAME_AUTH,
                    &encode_auth(&auth_tag(b"not-the-secret", nonce)),
                )
            }),
        ),
        (
            "flipped-tag-bits",
            Box::new(|nonce| {
                let mut tag = auth_tag(SECRET, nonce);
                for b in &mut tag {
                    *b = !*b;
                }
                good_frame(FRAME_AUTH, &encode_auth(&tag))
            }),
        ),
        (
            "short-tag-payload",
            Box::new(|nonce| {
                let tag = auth_tag(SECRET, nonce);
                good_frame(FRAME_AUTH, &tag[..TAG_LEN / 2])
            }),
        ),
        (
            "empty-auth-payload",
            Box::new(|_| good_frame(FRAME_AUTH, &[])),
        ),
        (
            "crc-flip-on-valid-auth",
            Box::new(|nonce| {
                let mut b = good_frame(FRAME_AUTH, &encode_auth(&auth_tag(SECRET, nonce)));
                let flip = b.len() - 6; // a payload byte, not the stored CRC
                b[flip] ^= 0xFF;
                b
            }),
        ),
        (
            "oversized-declared-length",
            Box::new(|_| {
                let mut b = vec![FRAME_AUTH];
                write_varint(&mut b, (MAX_PAYLOAD_BYTES + 1) as u64);
                b
            }),
        ),
        (
            "unterminated-varint-length",
            Box::new(|_| {
                let mut b = vec![FRAME_AUTH];
                b.extend_from_slice(&[0xFF; 11]);
                b
            }),
        ),
    ]
}

#[test]
fn hostile_hello_bytes_are_rejected_before_any_task_frame() {
    let (addr, handle) = start_daemon();
    for (label, bytes_for) in corpus() {
        let (mut stream, nonce) = connect_and_read_challenge(addr);
        stream.write_all(&bytes_for(&nonce)).unwrap();
        stream.flush().unwrap();
        let _ = stream.shutdown(Shutdown::Write);
        let seen = drain_frame_types(&stream);
        assert!(
            !seen.contains(&FRAME_HELLO) && !seen.contains(&FRAME_HEARTBEAT),
            "{label}: hostile bytes must never authenticate (daemon sent {seen:?})"
        );
        // The rejection cost one connection, not the daemon.
        good_handshake_succeeds(addr);
    }
    handle.shutdown();
}

#[test]
fn replayed_tag_from_another_connection_is_rejected() {
    let (addr, handle) = start_daemon();
    // Connection A's tag is valid — for connection A's nonce only.
    let (mut stream_a, nonce_a) = connect_and_read_challenge(addr);
    let tag_a = auth_tag(SECRET, &nonce_a);

    // Replaying it on connection B must bounce before any task frame.
    let (mut stream_b, nonce_b) = connect_and_read_challenge(addr);
    assert_ne!(nonce_a, nonce_b, "every connection gets a fresh nonce");
    stream_b
        .write_all(&good_frame(FRAME_AUTH, &encode_auth(&tag_a)))
        .unwrap();
    stream_b.flush().unwrap();
    let _ = stream_b.shutdown(Shutdown::Write);
    let seen = drain_frame_types(&stream_b);
    assert!(
        !seen.contains(&FRAME_HELLO) && !seen.contains(&FRAME_HEARTBEAT),
        "replayed tag must not authenticate (daemon sent {seen:?})"
    );

    // The same tag still authenticates the connection it was minted
    // for: the rejection above was the replay, not the tag.
    let mut bytes = good_frame(FRAME_AUTH, &encode_auth(&tag_a));
    bytes.extend_from_slice(&good_frame(FRAME_HELLO, &encode_hello()));
    stream_a.write_all(&bytes).unwrap();
    stream_a.flush().unwrap();
    let mut reader = FrameReader::new(stream_a.try_clone().unwrap());
    loop {
        let (ty, _) = reader
            .read_frame()
            .expect("worker reply decodes")
            .expect("connection A still authenticates");
        if ty == FRAME_HEARTBEAT {
            continue;
        }
        assert_eq!(ty, FRAME_HELLO);
        break;
    }
    handle.shutdown();
}

#[test]
fn truncation_at_every_offset_never_kills_the_daemon() {
    let (addr, handle) = start_daemon();
    // The full post-challenge transcript: auth, coordinator hello, one
    // task. Rebuilt per connection (the tag binds the fresh nonce) and
    // cut at every byte offset; cuts at frame boundaries are a clean
    // wind-down, cuts inside a frame a structured rejection — either
    // way the daemon survives.
    let transcript_len = {
        let (stream, nonce) = connect_and_read_challenge(addr);
        drop(stream);
        let mut t = good_frame(FRAME_AUTH, &encode_auth(&auth_tag(SECRET, &nonce)));
        t.extend_from_slice(&good_frame(FRAME_HELLO, &encode_hello()));
        t.extend_from_slice(&sample_task_frame());
        t.len()
    };
    for cut in 0..=transcript_len {
        let (mut stream, nonce) = connect_and_read_challenge(addr);
        let mut transcript = good_frame(FRAME_AUTH, &encode_auth(&auth_tag(SECRET, &nonce)));
        transcript.extend_from_slice(&good_frame(FRAME_HELLO, &encode_hello()));
        transcript.extend_from_slice(&sample_task_frame());
        stream.write_all(&transcript[..cut]).unwrap();
        stream.flush().unwrap();
        let _ = stream.shutdown(Shutdown::Write);
        // Drain until the daemon closes its side; a hang here (not a
        // clean EOF within the read timeout) fails the test.
        drain_frame_types(&stream);
    }
    good_handshake_succeeds(addr);
    handle.shutdown();
}

/// A "daemon" that speaks garbage (or nothing) at coordinators. The
/// coordinator must burn its reconnect budget and return a sound
/// degraded verdict — never hang, never report a wrong one.
#[test]
fn coordinator_never_hangs_on_a_garbage_speaking_listener() {
    use duop_core::{UnknownReason, Verdict};
    use duop_gen::{HistoryGen, HistoryGenConfig};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind imposter");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        // Answer every dial with junk where the challenge belongs.
        while let Ok((mut stream, _)) = listener.accept() {
            let _ = stream.write_all(b"\x00\x01NOT-A-CHALLENGE\xFF\xFE");
            let _ = stream.shutdown(Shutdown::Both);
        }
    });

    let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(20), 3).generate();
    let cfg = ShardConfig {
        workers: 0, // remote-only pool: the imposter is all we have
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_duop").to_owned(),
            "shard-worker".to_owned(),
        ],
        connect: vec![addr.to_string()],
        secret: SECRET.to_vec(),
        prelint: false, // force a real dispatched task: the prefilters
        ladder: false,  // must not decide the history in-coordinator
        saturate: false,
        ..ShardConfig::default()
    };
    let verdicts = run_sharded(
        vec![ShardJob {
            history: h,
            criterion: ShardCriterion::Plan(duop_core::PlanCriterion::Du),
        }],
        &cfg,
    )
    .expect("the run degrades instead of failing");
    match &verdicts[0] {
        Verdict::Unknown {
            reason: UnknownReason::WorkerDeath,
            ..
        } => {}
        other => panic!("expected unknown (worker-death), got {other:?}"),
    }
}
