//! Robustness corpus for the shard wire protocol: a worker fed hostile
//! or corrupted frames must produce a structured [`ProtocolError`] and a
//! usage-error exit code (2) — never a panic — whether driven in-process
//! through [`run_worker_io`] or as the real `duop shard-worker`
//! subprocess. The shard-protocol mirror of `malformed_binary.rs`.

use duop_history::binary::{crc32, write_varint};
use duop_history::{HistoryBuilder, ObjId, TxnId, Value};
use duop_shard::protocol::{
    encode_hello, encode_task, ProtocolError, TaskMsg, FRAME_HELLO, FRAME_SHUTDOWN, FRAME_TASK,
    FRAME_VERDICT, MAX_PAYLOAD_BYTES,
};
use duop_shard::run_worker_io;
use std::io::Write as _;
use std::process::{Command, Stdio};

/// A raw frame with independent control over every field, so entries can
/// be internally inconsistent (the CRC covers the type byte + payload).
fn raw_frame(ty: u8, payload: &[u8], crc: u32) -> Vec<u8> {
    let mut out = vec![ty];
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn good_frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut covered = vec![ty];
    covered.extend_from_slice(payload);
    raw_frame(ty, payload, crc32(&covered))
}

fn hello() -> Vec<u8> {
    good_frame(FRAME_HELLO, &encode_hello())
}

fn sample_task() -> TaskMsg {
    let h = HistoryBuilder::new()
        .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
        .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
        .build();
    TaskMsg {
        task_id: 0,
        attempt: 0,
        criterion: "du".to_owned(),
        prelint: false,
        ladder: false,
        decompose: true,
        saturate: false,
        max_states: 0,
        deadline_ms: 0,
        history: duop_history::binary::encode(&h),
    }
}

/// Each corpus entry: a label and the hostile input stream.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let task_payload = encode_task(&sample_task());

    vec![
        (
            "first-frame-not-hello",
            good_frame(FRAME_TASK, &task_payload),
        ),
        ("bad-hello-magic", {
            let mut payload = b"XUOS".to_vec();
            write_varint(&mut payload, 1);
            good_frame(FRAME_HELLO, &payload)
        }),
        ("wrong-hello-version", {
            let mut payload = b"DUOS".to_vec();
            write_varint(&mut payload, 9);
            good_frame(FRAME_HELLO, &payload)
        }),
        ("empty-hello", good_frame(FRAME_HELLO, &[])),
        ("truncated-mid-frame", {
            let h = hello();
            h[..h.len() - 3].to_vec()
        }),
        ("crc-mismatch", {
            let mut b = hello();
            let flip = b.len() - 6; // a payload byte, not the stored CRC
            b[flip] ^= 0xFF;
            b
        }),
        ("crc-of-wrong-bytes", {
            // CRC over the payload alone (omitting the type byte) must
            // not verify: the type byte is covered exactly so a frame
            // cannot be replayed as a different type.
            let payload = encode_hello();
            raw_frame(FRAME_HELLO, &payload, crc32(&payload))
        }),
        ("oversized-declared-length", {
            let mut b = vec![FRAME_TASK];
            write_varint(&mut b, (MAX_PAYLOAD_BYTES + 1) as u64);
            b
        }),
        ("unterminated-varint-length", {
            let mut b = vec![FRAME_TASK];
            b.extend_from_slice(&[0xFF; 11]);
            b
        }),
        ("unknown-frame-type", {
            let mut b = hello();
            b.extend_from_slice(&good_frame(b'Q', &[1, 2, 3]));
            b
        }),
        ("verdict-frame-to-worker", {
            // Role reversal: only coordinators receive verdict frames.
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_VERDICT, &[0]));
            b
        }),
        ("garbage-task-payload", {
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_TASK, &[0xEE; 24]));
            b
        }),
        ("truncated-task-payload", {
            let mut b = hello();
            let payload = encode_task(&sample_task());
            b.extend_from_slice(&good_frame(FRAME_TASK, &payload[..payload.len() - 4]));
            b
        }),
        ("task-unknown-flag-bits", {
            let mut payload = Vec::new();
            write_varint(&mut payload, 0); // task_id
            write_varint(&mut payload, 0); // attempt
            write_varint(&mut payload, 2); // criterion length
            payload.extend_from_slice(b"du");
            payload.push(0b1000); // only bits 0-2 are defined
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_TASK, &payload));
            b
        }),
        ("task-garbage-history", {
            let mut task = sample_task();
            task.history = vec![0xFF; 32];
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_TASK, &encode_task(&task)));
            b
        }),
        ("task-unknown-criterion", {
            let mut task = sample_task();
            task.criterion = "bogus".to_owned();
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_TASK, &encode_task(&task)));
            b
        }),
        ("shutdown-with-trailing-garbage-frame", {
            // Bytes after an orderly shutdown are never read — but a
            // corrupt frame *instead of* the handshake reply is.
            let mut b = good_frame(FRAME_SHUTDOWN, &[]);
            b.extend_from_slice(&hello());
            b
        }),
    ]
}

#[test]
fn every_corpus_entry_errors_in_process_without_panicking() {
    for (label, input) in corpus() {
        let mut output = Vec::new();
        // Returning at all is the no-panic guarantee; all entries except
        // the shutdown-first one must surface a structured error.
        let result = run_worker_io(&input[..], &mut output);
        if label == "shutdown-with-trailing-garbage-frame" {
            assert!(
                matches!(
                    result,
                    Err(ProtocolError::Malformed {
                        context: "handshake",
                        ..
                    })
                ),
                "{label}: a shutdown before the handshake is still a protocol breach"
            );
            continue;
        }
        let err = result.expect_err(label);
        assert!(
            matches!(err, ProtocolError::Malformed { .. } | ProtocolError::Io(_)),
            "{label}: unexpected error shape {err:?}"
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains("malformed") || rendered.contains("i/o error"),
            "{label}: error does not explain itself: {rendered}"
        );
    }
}

#[test]
fn truncation_at_every_offset_never_panics() {
    // A valid two-frame session (hello, then shutdown), cut at every
    // byte offset. Cuts at frame boundaries are a clean EOF (Ok); cuts
    // inside a frame are structured errors. Nothing may panic.
    let mut valid = hello();
    valid.extend_from_slice(&good_frame(FRAME_SHUTDOWN, &[]));
    for cut in 0..=valid.len() {
        let mut output = Vec::new();
        let _ = run_worker_io(&valid[..cut], &mut output);
    }
}

#[test]
fn worker_subprocess_exits_2_on_every_corpus_entry() {
    for (label, input) in corpus() {
        let mut child = Command::new(env!("CARGO_BIN_EXE_duop"))
            .arg("shard-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn shard-worker");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(&input)
            .ok(); // the worker may exit before reading everything
        let out = child.wait_with_output().expect("worker terminates");
        let code = out.status.code();
        assert_eq!(
            code,
            Some(2),
            "{label}: shard-worker should exit 2 (a panic would be 101), stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("duop shard-worker:"),
            "{label}: stderr should carry the structured error"
        );
    }
}

#[test]
fn worker_subprocess_is_orderly_on_clean_streams() {
    for (label, input) in [
        ("empty-stream", Vec::new()),
        ("hello-then-eof", hello()),
        ("hello-then-shutdown", {
            let mut b = hello();
            b.extend_from_slice(&good_frame(FRAME_SHUTDOWN, &[]));
            b
        }),
    ] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_duop"))
            .arg("shard-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn shard-worker");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(&input)
            .unwrap();
        let out = child.wait_with_output().expect("worker terminates");
        assert_eq!(out.status.code(), Some(0), "{label}: orderly shutdown");
    }
}
