//! Robustness corpus for the `.duob` binary trace format: hostile and
//! corrupted inputs must produce a structured parse error and a usage-error
//! exit code — never a panic — from every trace-consuming subcommand. The
//! binary mirror of `malformed_traces.rs`.

use duop_history::binary::{
    self, crc32, write_varint, BinaryParseError, FRAME_END, FRAME_EVENTS, MAGIC, VERSION,
};
use duop_history::trace::TraceParseError;
use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

/// A small valid history whose encoding the corpus mutates.
fn sample_bytes() -> Vec<u8> {
    let h = HistoryBuilder::new()
        .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
        .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
        .build();
    binary::encode(&h)
}

/// Appends a syntactically well-formed frame (length prefix and CRC are
/// consistent) with the given type byte and payload.
fn push_frame(out: &mut Vec<u8>, ty: u8, payload: &[u8]) {
    out.push(ty);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Each corpus entry: a label and the hostile bytes.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let valid = sample_bytes();
    let header: Vec<u8> = MAGIC.iter().copied().chain([VERSION]).collect();

    // An empty input is deliberately absent: with nothing to sniff it is
    // a valid empty *text* trace, not a truncated binary one.
    let mut entries: Vec<(&'static str, Vec<u8>)> = vec![
        ("truncated-magic", b"DUO".to_vec()),
        ("bad-magic", {
            let mut b = valid.clone();
            b[0] = b'X';
            b
        }),
        ("wrong-version", {
            let mut b = valid.clone();
            b[4] = 9;
            b
        }),
        ("header-only", header.clone()),
        ("truncated-mid-frame", valid[..header.len() + 3].to_vec()),
        ("truncated-before-crc", valid[..valid.len() - 9].to_vec()),
        ("truncated-last-byte", valid[..valid.len() - 1].to_vec()),
        ("crc-mismatch", {
            // Flip one payload byte of the first frame; its stored CRC no
            // longer matches.
            let mut b = valid.clone();
            let i = header.len() + 2;
            b[i] ^= 0xFF;
            b
        }),
        ("trailing-bytes", {
            let mut b = valid.clone();
            b.extend_from_slice(b"extra");
            b
        }),
        ("unknown-frame-type", {
            let mut b = header.clone();
            push_frame(&mut b, b'Q', &[1, 2, 3]);
            b
        }),
        ("oversized-varint-frame-len", {
            // Eleven continuation bytes can never terminate a varint.
            let mut b = header.clone();
            b.push(FRAME_EVENTS);
            b.extend_from_slice(&[0xFF; 11]);
            b
        }),
        ("frame-too-large", {
            let mut b = header.clone();
            b.push(FRAME_EVENTS);
            write_varint(&mut b, (binary::MAX_FRAME_BYTES + 1) as u64);
            b
        }),
        ("unknown-event-tag", {
            let mut b = header.clone();
            let mut payload = Vec::new();
            write_varint(&mut payload, 1); // one event in the chunk
            payload.push(0xEE); // no such tag
            write_varint(&mut payload, 1);
            push_frame(&mut b, FRAME_EVENTS, &payload);
            b
        }),
        ("event-txn-id-out-of-range", {
            let mut b = header.clone();
            let mut payload = Vec::new();
            write_varint(&mut payload, 1);
            payload.push(2); // tryC invocation tag
            write_varint(&mut payload, u64::from(u32::MAX)); // reserved id
            push_frame(&mut b, FRAME_EVENTS, &payload);
            b
        }),
        ("end-frame-count-mismatch", {
            // A valid-looking end frame declaring more events than the
            // stream carried.
            let mut b = header.clone();
            let mut payload = Vec::new();
            write_varint(&mut payload, 99);
            push_frame(&mut b, FRAME_END, &payload);
            b
        }),
        ("events-after-end-frame", {
            // Splice a second copy of the stream after the end frame.
            let mut b = valid.clone();
            b.extend_from_slice(&valid[header.len()..]);
            b
        }),
    ];

    // A Z-frame whose payload is empty (count missing entirely).
    let mut empty_end = header;
    push_frame(&mut empty_end, FRAME_END, &[]);
    entries.push(("end-frame-missing-count", empty_end));

    entries
}

fn temp_trace(label: &str, content: &[u8]) -> String {
    let path = std::env::temp_dir().join(format!(
        "duop-malformed-bin-{}-{label}.duob",
        std::process::id()
    ));
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

/// Runs the CLI in-process; a panic would abort the test, so returning at
/// all is the no-panic guarantee.
fn run(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = duop_cli::run(&argv, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn every_subcommand_rejects_every_malformed_binary_without_panicking() {
    for (label, content) in corpus() {
        let path = temp_trace(label, &content);
        for sub in ["check", "lint", "monitor", "render", "convert"] {
            let args: &[&str] = if sub == "convert" {
                &["convert", &path, "--format", "text"]
            } else {
                &[sub, &path]
            };
            let (code, output) = run(args);
            assert_eq!(
                code, 2,
                "`duop {sub}` on {label} should exit 2, output:\n{output}"
            );
            assert!(
                output.contains("error:"),
                "`duop {sub}` on {label} should explain itself, output:\n{output}"
            );
        }
    }
}

#[test]
fn corpus_errors_decode_to_the_expected_variants() {
    let expect = |label: &str| {
        let (_, content) = corpus()
            .into_iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no corpus entry {label}"));
        binary::decode(&content).expect_err(label)
    };
    assert!(matches!(expect("bad-magic"), BinaryParseError::BadMagic));
    assert!(matches!(
        expect("wrong-version"),
        BinaryParseError::UnsupportedVersion(9)
    ));
    assert!(matches!(
        expect("crc-mismatch"),
        BinaryParseError::CrcMismatch { .. }
    ));
    assert!(matches!(
        expect("truncated-last-byte"),
        BinaryParseError::Truncated { .. }
    ));
    assert!(matches!(
        expect("oversized-varint-frame-len"),
        BinaryParseError::OversizedVarint { .. }
    ));
    assert!(matches!(
        expect("unknown-frame-type"),
        BinaryParseError::UnknownFrameType { byte: b'Q', .. }
    ));
    assert!(matches!(
        expect("unknown-event-tag"),
        BinaryParseError::UnknownEventTag { byte: 0xEE }
    ));
    assert!(matches!(
        expect("frame-too-large"),
        BinaryParseError::FrameTooLarge { .. }
    ));
    assert!(matches!(
        expect("end-frame-count-mismatch"),
        BinaryParseError::CountMismatch { declared: 99, .. }
    ));
    assert!(matches!(
        expect("header-only"),
        BinaryParseError::MissingEndFrame | BinaryParseError::Truncated { .. }
    ));
    assert!(matches!(
        expect("trailing-bytes"),
        BinaryParseError::TrailingBytes { .. }
    ));
    assert!(matches!(
        expect("event-txn-id-out-of-range"),
        BinaryParseError::IdOutOfRange { .. }
    ));
}

#[test]
fn every_corpus_error_is_json_formattable() {
    for (label, content) in corpus() {
        let err: TraceParseError = binary::decode(&content)
            .map(|_| ())
            .expect_err(&format!("{label} must fail to decode"))
            .into();
        let json = serde_json::to_string(&err.to_content())
            .unwrap_or_else(|e| panic!("{label}: error does not serialize: {e}"));
        assert!(json.contains("\"error\":"), "{label}: {json}");
        assert!(json.contains("\"message\":"), "{label}: {json}");
    }
}

#[test]
fn truncation_at_every_offset_errors_cleanly() {
    // Exhaustive prefix sweep: no cut point may panic, and every strict
    // prefix of a valid stream must be rejected (the end frame makes a
    // truncated stream detectable at any offset).
    let valid = sample_bytes();
    for cut in 0..valid.len() {
        let err = binary::decode(&valid[..cut]);
        assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
    }
    assert!(binary::decode(&valid).is_ok());
}
