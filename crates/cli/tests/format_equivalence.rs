//! Round-trip and verdict-invariance properties of the trace encodings:
//! re-encoding a trace through the `.duob` binary format (or JSON) is the
//! identity on histories, and `duop check` verdicts do not depend on which
//! encoding carried the events.

use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::trace::{format_trace, parse_trace, to_json};
use duop_history::{binary, reader, History};

/// The checked-in example traces.
fn example_traces() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/traces");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/traces exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "txt") {
            out.push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&path).unwrap(),
            ));
        }
    }
    assert!(!out.is_empty(), "no example traces found");
    out
}

/// A spread of generated workloads across modes and seeds.
fn generated() -> Vec<(String, History)> {
    let mut out = Vec::new();
    for (name, mode) in [
        ("simulated", GenMode::Simulated),
        ("value", GenMode::ValueValidated),
        ("adversarial", GenMode::Adversarial),
    ] {
        for seed in [0u64, 7, 1234] {
            let cfg = HistoryGenConfig {
                txns: 24,
                objs: 4,
                mode,
                ..HistoryGenConfig::medium_simulated()
            }
            .with_concurrency(4);
            out.push((
                format!("{name}-{seed}"),
                HistoryGen::new(cfg, seed).generate(),
            ));
        }
    }
    out
}

fn run(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = duop_cli::run(&argv, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

fn temp_file(label: &str, content: &[u8]) -> String {
    let path = std::env::temp_dir().join(format!("duop-fmt-eq-{}-{label}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn text_binary_text_is_identity_on_the_example_corpus() {
    for (name, text) in example_traces() {
        let h = parse_trace(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let bin = binary::encode(&h);
        let back = binary::decode(&bin).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, h, "{name}: binary round trip changed the history");
        assert_eq!(
            format_trace(&back),
            format_trace(&h),
            "{name}: re-rendered text differs"
        );
    }
}

#[test]
fn history_binary_history_is_identity_on_generated_workloads() {
    for (name, h) in generated() {
        let bin = binary::encode(&h);
        let back = binary::decode(&bin).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, h, "{name}: binary round trip changed the history");
        // JSON and text take the same round trip.
        let jback = reader::read_history(to_json(&h).as_bytes()).unwrap();
        assert_eq!(jback, h, "{name}: JSON round trip changed the history");
        let tback = reader::read_history(format_trace(&h).as_bytes()).unwrap();
        assert_eq!(tback, h, "{name}: text round trip changed the history");
    }
}

#[test]
fn check_verdicts_are_byte_format_invariant() {
    // Quick criteria over every example trace plus a couple of generated
    // ones, in all three lossless encodings: the transcript must be
    // byte-identical, exit code included.
    let mut cases: Vec<(String, History)> = example_traces()
        .into_iter()
        .map(|(name, text)| (name.clone(), parse_trace(&text).unwrap()))
        .collect();
    cases.extend(generated().into_iter().take(2));
    for (name, h) in cases {
        let text_path = temp_file(&format!("{name}.txt"), format_trace(&h).as_bytes());
        let json_path = temp_file(&format!("{name}.json"), to_json(&h).as_bytes());
        let bin_path = temp_file(&format!("{name}.duob"), &binary::encode(&h));
        let check = |path: &str| run(&["check", path, "-c", "du", "-c", "fso", "-c", "strict"]);
        let (text_code, text_out) = check(&text_path);
        let (json_code, json_out) = check(&json_path);
        let (bin_code, bin_out) = check(&bin_path);
        assert_eq!(text_code, json_code, "{name}: text vs json exit");
        assert_eq!(text_code, bin_code, "{name}: text vs binary exit");
        assert_eq!(text_out, json_out, "{name}: text vs json transcript");
        assert_eq!(text_out, bin_out, "{name}: text vs binary transcript");
    }
}

#[test]
fn monitor_verdicts_are_byte_format_invariant() {
    for (name, h) in generated().into_iter().take(3) {
        let text_path = temp_file(&format!("mon-{name}.txt"), format_trace(&h).as_bytes());
        let bin_path = temp_file(&format!("mon-{name}.duob"), &binary::encode(&h));
        let (text_code, text_out) = run(&["monitor", &text_path]);
        let (bin_code, bin_out) = run(&["monitor", &bin_path]);
        assert_eq!(text_code, bin_code, "{name}: monitor exit codes differ");
        assert_eq!(text_out, bin_out, "{name}: monitor transcripts differ");
    }
}

#[test]
fn convert_cli_round_trips_every_example() {
    for (name, text) in example_traces() {
        let path = temp_file(&format!("cli-{name}.txt"), text.as_bytes());
        let bin_path = format!("{path}.duob");
        let (code, _) = run(&["convert", &path, &bin_path, "--format", "binary"]);
        assert_eq!(code, 0, "{name}: convert to binary failed");
        let (code, round) = run(&["convert", &bin_path, "--format", "text"]);
        assert_eq!(code, 0, "{name}: convert back to text failed");
        let canonical = format_trace(&parse_trace(&text).unwrap());
        assert_eq!(round, canonical, "{name}: CLI round trip changed the trace");
    }
}
