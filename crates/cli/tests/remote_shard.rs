//! Multi-host sharding equivalence and partition drills.
//!
//! The TCP transport inherits the shard pipeline's exactness contract:
//! with remote workers — alone or mixed with local ones — `run_sharded`
//! must return byte-identical verdicts to the in-process checker, and a
//! dropped connection, a stalled (partitioned) host, or an outright
//! dead daemon must cost retries, never a wrong verdict. Only when
//! every remote is gone for good may the affected verdicts degrade to
//! `unknown (worker-death)` with a partial payload.

use duop_core::{check_criterion_with_stats, PlanCriterion, SearchConfig, UnknownReason, Verdict};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::History;
use duop_shard::{
    run_sharded, ShardConfig, ShardCriterion, ShardJob, ShardServeConfig, ShardServeHandle,
    ShardServer, NET_TIMEOUT_ENV,
};
use std::net::SocketAddr;

const SECRET: &[u8] = b"remote-shard-secret";

/// The stall drill waits out the liveness timeout; keep it short but
/// comfortably above the 1s heartbeat interval so healthy connections
/// are never declared dead. Idempotent: every test sets the same value,
/// so parallel tests in this binary cannot race to different timeouts.
fn shorten_net_timeout() {
    std::env::set_var(NET_TIMEOUT_ENV, "2500");
}

fn start_daemon(drop_conn: Option<u64>, stall_conn: Option<u64>) -> (SocketAddr, ShardServeHandle) {
    let server = ShardServer::bind(ShardServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        secret: SECRET.to_vec(),
        drop_conn,
        stall_conn,
    })
    .expect("bind shard-serve");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        server.run(&mut sink).expect("daemon accept loop");
    });
    (addr, handle)
}

fn remote_config(addrs: &[SocketAddr], local_workers: usize) -> ShardConfig {
    ShardConfig {
        workers: local_workers,
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_duop").to_owned(),
            "shard-worker".to_owned(),
        ],
        connect: addrs.iter().map(|a| a.to_string()).collect(),
        secret: SECRET.to_vec(),
        ..ShardConfig::default()
    }
}

fn sample_histories() -> Vec<History> {
    let mut histories = Vec::new();
    for seed in [3, 17] {
        let cfg = HistoryGenConfig::medium_simulated().with_txns(30);
        histories.push(HistoryGen::new(cfg, seed).generate());
    }
    let cfg = HistoryGenConfig {
        txns: 20,
        objs: 4,
        mode: GenMode::Adversarial,
        ..HistoryGenConfig::medium_simulated()
    };
    histories.push(HistoryGen::new(cfg, 5).generate());
    histories
}

fn jobs(histories: &[History]) -> Vec<ShardJob> {
    histories
        .iter()
        .map(|h| ShardJob {
            history: h.clone(),
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        })
        .collect()
}

fn local_verdicts(histories: &[History]) -> Vec<Verdict> {
    // Mirror the shard pipeline's defaults explicitly: the equivalence
    // claim is against this exact in-process configuration.
    let cfg = SearchConfig {
        decompose: true,
        prelint: true,
        ladder: true,
        saturate: true,
        ..SearchConfig::default()
    };
    histories
        .iter()
        .map(|h| check_criterion_with_stats(h, PlanCriterion::Du, &cfg).0)
        .collect()
}

/// Two healthy daemons, no local workers: the remote-only pool must
/// reproduce the in-process verdicts exactly.
#[test]
fn remote_only_pool_matches_in_process_verdicts() {
    shorten_net_timeout();
    let histories = sample_histories();
    let (addr1, h1) = start_daemon(None, None);
    let (addr2, h2) = start_daemon(None, None);
    let verdicts = run_sharded(jobs(&histories), &remote_config(&[addr1, addr2], 0))
        .expect("remote-only run completes");
    assert_eq!(verdicts, local_verdicts(&histories));
    h1.shutdown();
    h2.shutdown();
}

/// Remote and local workers freely mix in one pool.
#[test]
fn mixed_local_and_remote_pool_matches_in_process_verdicts() {
    shorten_net_timeout();
    let histories = sample_histories();
    let (addr, handle) = start_daemon(None, None);
    let verdicts = run_sharded(jobs(&histories), &remote_config(&[addr], 2))
        .expect("mixed-pool run completes");
    assert_eq!(verdicts, local_verdicts(&histories));
    handle.shutdown();
}

/// A daemon that hangs up on its first authenticated connection (the
/// drop fault hook — the coordinator sees an EOF where the worker hello
/// belongs) is redialed with backoff; the second connection serves, and
/// the verdicts never notice.
#[test]
fn dropped_connection_is_redialed_and_verdicts_are_preserved() {
    shorten_net_timeout();
    let histories = sample_histories();
    let (addr, handle) = start_daemon(Some(1), None);
    let verdicts = run_sharded(jobs(&histories), &remote_config(&[addr], 0))
        .expect("run survives the dropped connection");
    assert_eq!(verdicts, local_verdicts(&histories));
    handle.shutdown();
}

/// A partitioned host — connected, authenticated, silent — must be
/// declared dead by the liveness timeout and its work re-queued on the
/// healthy daemon. Byte-identical verdicts, just later.
#[test]
fn stalled_host_is_declared_dead_and_work_requeues_elsewhere() {
    shorten_net_timeout();
    let histories = sample_histories();
    let (stalled, h1) = start_daemon(None, Some(1));
    let (healthy, h2) = start_daemon(None, None);
    let verdicts = run_sharded(jobs(&histories), &remote_config(&[stalled, healthy], 0))
        .expect("run survives the partition");
    assert_eq!(verdicts, local_verdicts(&histories));
    h1.shutdown();
    h2.shutdown();
}

/// When every remote is dead for good (here: nothing ever listened on
/// the address), the run must end — degraded to `unknown (worker-death)`
/// with a partial payload, never a wrong verdict, never a hang.
#[test]
fn all_remotes_dead_degrades_to_unknown_worker_death() {
    shorten_net_timeout();
    // Bind-then-drop reserves an address that refuses connections.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let h = HistoryGen::new(HistoryGenConfig::medium_simulated().with_txns(20), 3).generate();
    let mut cfg = remote_config(&[dead_addr], 0);
    cfg.prelint = false; // force a real dispatched task: the prefilters
    cfg.ladder = false; //  must not decide the history in-coordinator
    cfg.saturate = false;
    let verdicts = run_sharded(
        vec![ShardJob {
            history: h,
            criterion: ShardCriterion::Plan(PlanCriterion::Du),
        }],
        &cfg,
    )
    .expect("the run degrades instead of failing");
    match &verdicts[0] {
        Verdict::Unknown {
            reason: UnknownReason::WorkerDeath,
            partial,
            ..
        } => {
            assert!(
                partial.is_some(),
                "degraded verdict must carry a partial payload"
            );
        }
        other => panic!("expected unknown (worker-death), got {other:?}"),
    }
}
