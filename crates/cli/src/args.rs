//! Argument parsing for the `duop` tool (dependency-free).

use std::error::Error;
use std::fmt;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
duop — check transactional-memory histories against du-opacity and friends

USAGE:
  duop check <trace-file|-> [--criterion NAME]... [--threads N]
             [--no-decompose] [--no-prelint] [--no-ladder] [--no-saturate]
             [--certify]
             [--deadline MS] [--max-states N] [--retry N] [--escalate F]
             [--checkpoint FILE] [--checkpoint-every N]
             [--format text|json]
  duop shard <trace-file|->... [--workers N] [--criterion NAME]...
             [--connect HOST:PORT]... [--secret-file FILE]
             [--no-decompose] [--no-prelint] [--no-ladder] [--no-saturate]
             [--deadline MS] [--max-states N] [--retry N] [--min-chunk N]
             [--format text|json]
  duop shard-serve --secret-file FILE [--listen HOST:PORT]
  duop certify <trace-file|-> [--criterion NAME]... [--format text|json]
  duop lint <trace-file|-> [--format text|json] [--rule ID]...
            [--explain RULE-ID]
  duop fuzz --engine tl2|norec|dstm|2pl|pessimistic|dirty
            [--faults SPEC] [--seed N] [--iters N] [--threads N]
            [--objs N] [--format text|json]
            [--trace-out FILE] [--trace-format text|binary]
  duop render <trace-file|->
  duop monitor <trace-file|-> [--checkpoint FILE] [--checkpoint-every N]
               [--status-every N] [--compact-every N]
  duop serve [--addr HOST:PORT] [--state-dir DIR] [--session-cap N]
             [--idle-timeout SECS] [--max-retained N] [--session-budget N]
             [--checkpoint-every N] [--peer-rps N]
  duop client <trace-file|-> --addr HOST:PORT [--session ID]
              [--chunk-events N] [--body-format text|binary] [--budget N]
              [--format text|json]
  duop resume <checkpoint-file>
  duop generate [--mode simulated|value|adversarial] [--txns N] [--objs N]
                [--seed N] [--unique] [--concurrency N]
  duop convert <trace-file|-> [<out-file|->] --format text|json|binary|dbcop
  duop graph <trace-file|->
  duop localize <trace-file|->
  duop figures
  duop litmus
  duop help

Traces use the line format (`T1 write X0 1` / `T1 ok` / `T1 tryc` /
`T1 commit` ...), JSON (an array of events), the `.duob` framed binary
encoding, or a dbcop-style session-history object; `-` reads stdin. Every
trace-consuming command sniffs the encoding from the leading bytes, so
text, JSON, binary, and dbcop inputs are interchangeable everywhere.
`duop convert IN [OUT]` transcodes between them (`--format binary` writes
`.duob`; `--to` is accepted as a synonym; OUT defaults to stdout). Criteria:
du-opacity (default), final-state, opacity, rco, tms2, tms2-automaton,
strict. `--threads N` runs the serialization search on N worker threads
(0 = all hardware threads); the verdict and witness are identical to the
sequential engine's. `--no-decompose` disables the search planner's
conflict-graph decomposition (ablation; slower on multi-component
histories, same verdicts). `--no-prelint` disables the polynomial lint
prefilter (ablation, same verdicts). `--no-saturate` disables the
certifying must-precede saturation prefilter, which runs after lint and
decides many histories polynomially: a derived precedence cycle becomes
a machine-checkable refutation certificate, a fully-determined order a
validated witness (ablation, same verdicts). `--certify` additionally
re-validates every saturation certificate with the independent
`check_certificate` validator before reporting it (a validation failure
is a usage-style error, exit 2). `--deadline MS` bounds each
serialization search by a wall-clock deadline and `--max-states N` by an
explored-state budget; a search that runs out reports `unknown (...)`
with a `partial` progress payload instead of hanging. On budget
exhaustion a sound degradation ladder (lint refutation, then the
Theorem 11 unique-writes fast path where applicable) tries to decide the
history anyway; `--no-ladder` disables it (ablation, never flips decided
verdicts). `--retry N --escalate F` re-runs a budget-starved check up to
N more times with the deadline/state budget multiplied by F each round,
resuming from cached component fragments rather than from scratch.
`--format json` prints each verdict as JSON on one line.

`shard` checks the same criteria across a pool of worker *processes*:
a coordinator plans each history's conflict-graph components and ships
them (whole histories for opacity and `--no-decompose`) to `--workers N`
workers (0 = all hardware threads, the default) over a CRC-guarded
binary protocol, largest component first with work stealing, then merges
the per-component verdicts into exactly the in-process verdict — same
output lines, same exit codes as `check`. Several trace files form one
batch sharing the pool. A crashed or killed worker costs one re-queued
component; after `--retry N` deaths (default 2) of the same task the
affected verdict degrades to `unknown (worker-death)` with a partial
payload instead of failing the run. `--min-chunk N` batches consecutive
tiny components into tasks of at least N transactions (default 8).
`--deadline`/`--max-states` bound each task's search; the
tms2-automaton criterion runs in the coordinator. (The hidden
`shard-worker` subcommand is the worker mode `shard` spawns; it is not
for interactive use.)

`shard-serve` runs the same worker loop as a TCP daemon so `shard` can
pool workers across hosts: each `--connect HOST:PORT` (repeatable,
freely mixed with local `--workers N`; `--workers 0` with at least one
`--connect` uses remote workers only) adds one remote worker to the
pool. Connections are authenticated with a challenge–response hello
keyed by the shared `--secret-file` (required on both ends; trailing
whitespace in the file is ignored): the daemon sends a fresh nonce, the
coordinator answers a keyed tag, and a wrong or replayed tag is
rejected before any task frame is read. The coordinator heartbeats each
remote, declares a silent host dead after a network timeout, reconnects
with jittered exponential backoff, and re-queues the lost task — so a
killed daemon or a partition costs retries, not verdicts, and the
merged output stays byte-identical to `duop check` while any worker
survives. Only past `--retry` deaths does the affected verdict degrade
to `unknown (worker-death)` with a partial payload.

`--checkpoint FILE` makes check and monitor write a versioned,
integrity-hashed snapshot of their progress atomically (temp file +
rename) as they go — roughly every `--checkpoint-every` explored states
(check, default 4096) or events (monitor, default 32) — and on
SIGINT/SIGTERM, which trigger a final flush instead of mid-line death.
`duop resume FILE` continues an interrupted run from its snapshot to the
same verdict the uninterrupted run would have reached; corrupt or
truncated checkpoints are rejected with a structured error (exit 2).
`duop monitor --status-every N` prints a JSON status line (retained and
peak-resident event counts, search statistics) every N events. Monitor
ingestion streams: text and binary traces are decoded one event at a
time, so the resident set is the checker's retained history, not the
input. `--compact-every N` additionally compacts the retained history
whenever it reaches N events and the prefix is certified, t-complete,
and has forced final values — replacing it with a synthetic committed
baseline transaction (sound: verdicts are unchanged; see DESIGN.md).
`--compact-threshold N` is a synonym.

`serve` runs the online monitor as a long-lived HTTP/1.1 daemon over
std::net, one independent checking session per client stream. Routes:
`POST /v1/session[?budget=N]` creates a session (201, `{\"session\":id}`);
`POST /v1/session/ID/events` ingests a text, JSON, or `.duob` trace
fragment (the body encoding is sniffed, exactly like trace files);
`GET /v1/session/ID/verdict[?format=text]` prints the same du-opacity
verdict line `duop check --criterion du` would; `GET /v1/session/ID` is
the resume point (acknowledged-event count); `DELETE /v1/session/ID`
ends it; `GET /metrics` is Prometheus-style text. `--addr HOST:PORT`
binds (port 0 picks a free port, printed as `listening on ...`).
`--state-dir DIR` checkpoints every session (integrity-hashed snapshot,
flushed every `--checkpoint-every N` ingest requests, default 1, plus on
reap and drain) and recovers all of them on restart; SIGINT/SIGTERM
drain gracefully (in-flight requests finish, every session flushes).
`--session-budget N` caps each session's retained events — the budget
drives prefix compaction first and, when compaction cannot reclaim
space, degrades the session's verdict soundly to `unknown` with a
partial payload (a prior violation stays final) instead of growing
without bound. `--max-retained N` is the global ceiling across sessions:
past it the daemon sheds ingest with `429 Retry-After`. `--session-cap`
bounds live sessions (default 256); sessions idle past `--idle-timeout`
(default 300s) are checkpointed and reaped, and page back in on next
access. `--peer-rps N` rate-limits each client address to N session
requests per second (`/metrics` is exempt; 0, the default, disables
the limit); throttled requests get `429 Retry-After` and count in the
`duop_serve_throttled_requests` metric. `client` streams a local trace into a serve daemon: it creates
(or, with `--session ID`, resumes) a session, re-streams from the
daemon's acknowledged offset in `--chunk-events N` batches (default: one
batch), prints the final verdict line, and exits with `check`'s codes.
`--body-format binary` posts one `.duob` body instead of text chunks.
When the daemon sheds an ingest with 429, the client retries with
capped exponential backoff plus jitter, never below the daemon's
`Retry-After` hint.

`fuzz` runs the named STM engine under deterministic fault injection
(`--faults abort=P,crash=P,delay=P,thread-crash=P`, default
`abort=0.05,crash=0.05,thread-crash=0.25`) for `--iters` iterations
(default 500), checking every recorded history for du-opacity. The
workload is single-threaded by default so a finding replays exactly from
its seed; the first violation is shrunk to a minimal core and printed.
`--trace-out FILE` additionally writes the shrunk counterexample as a
standalone trace (`--trace-format binary` for `.duob`) that replays with
`duop check FILE`. Exit 1 on a finding, 0 on a clean run.

`certify` runs only the certifying saturation pass (no search) for the
saturable criteria (du-opacity, final-state, rco, tms2, strict). A
refutation prints its certificate — every derived edge with its rule and
premises, plus the closed cycle — after the independent validator
re-derives it from the literal history; a fully-determined history
prints its validated witness; anything else is reported `inconclusive`
(fall back to `duop check`). `--format json` emits the certificate as a
machine-readable object. Exit 1 on a certified refutation, 2 if a
certificate fails validation (a checker bug, never silent).

`lint` runs only the polynomial static analyses and prints structured
diagnostics (rule id, severity, event spans); `--rule ID` restricts the
output to the given rules (repeatable). Rule ids and summaries are listed
in DESIGN.md; an `error`-severity diagnostic is a proven refutation of
the criteria it names. `--explain RULE-ID` instead prints the rule's
paper grounding (definition and theorem references) and a minimal
example trace that fires it.

Exit codes: 0 all criteria satisfied (for lint: no error-severity
diagnostic), 1 some violated (lint: at least one error), 2 usage/parse
error.";

/// Which criterion to run in `duop check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CriterionName {
    /// Definition 3.
    DuOpacity,
    /// Definition 4.
    FinalState,
    /// Definition 5.
    Opacity,
    /// Guerraoui–Henzinger–Singh read-commit order.
    Rco,
    /// The Section 4.2 informal TMS2 rendering.
    Tms2,
    /// The full TMS2 automaton.
    Tms2Automaton,
    /// Strict serializability baseline.
    Strict,
}

impl CriterionName {
    /// Parses a criterion name.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "du" | "du-opacity" => Ok(CriterionName::DuOpacity),
            "final-state" | "fso" => Ok(CriterionName::FinalState),
            "opacity" => Ok(CriterionName::Opacity),
            "rco" | "read-commit-order" => Ok(CriterionName::Rco),
            "tms2" => Ok(CriterionName::Tms2),
            "tms2-automaton" => Ok(CriterionName::Tms2Automaton),
            "strict" | "strict-serializability" => Ok(CriterionName::Strict),
            other => Err(ParseError(format!("unknown criterion `{other}`"))),
        }
    }
}

/// Which STM engine `duop fuzz` drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineName {
    /// Commit-time locking with a global version clock.
    Tl2,
    /// Global sequence lock, value-based validation.
    NoRec,
    /// DSTM-style locators, invisible reads.
    Dstm,
    /// Encounter-time strict two-phase locking.
    TwoPl,
    /// No-abort write-in-place (Section 5's non-du-opaque design).
    Pessimistic,
    /// No locking, no validation: the negative control.
    Dirty,
}

impl EngineName {
    /// Parses an engine name.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "tl2" => Ok(EngineName::Tl2),
            "norec" | "no-rec" => Ok(EngineName::NoRec),
            "dstm" => Ok(EngineName::Dstm),
            "2pl" | "two-pl" | "eager-2pl" => Ok(EngineName::TwoPl),
            "pessimistic" => Ok(EngineName::Pessimistic),
            "dirty" | "dirty-read" => Ok(EngineName::Dirty),
            other => Err(ParseError(format!("unknown engine `{other}`"))),
        }
    }
}

/// Generator mode for `duop generate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenModeName {
    /// Version-validated (du-opaque by construction).
    Simulated,
    /// Value-validated (opaque, ABA-prone).
    Value,
    /// Arbitrary read results.
    Adversarial,
}

/// A parsed `duop` invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `duop check`.
    Check {
        /// Trace path (`-` = stdin).
        input: String,
        /// Criteria to run (empty = all).
        criteria: Vec<CriterionName>,
        /// Search worker threads (`1` = sequential, `0` = all hardware
        /// threads).
        threads: usize,
        /// Run the search planner's conflict-graph decomposition
        /// (`--no-decompose` clears it, for ablations).
        decompose: bool,
        /// Run the lint prefilter before searching (`--no-prelint`
        /// clears it, for ablations).
        prelint: bool,
        /// Run the verdict-degradation ladder on budget exhaustion
        /// (`--no-ladder` clears it, for ablations).
        ladder: bool,
        /// Run the certifying saturation prefilter (`--no-saturate`
        /// clears it, for ablations).
        saturate: bool,
        /// Re-validate every saturation certificate with the independent
        /// validator before reporting it (`--certify` sets it).
        certify: bool,
        /// Wall-clock deadline per serialization search, in milliseconds
        /// (`None` = unbounded).
        deadline_ms: Option<u64>,
        /// Explored-state budget per serialization search (`None` =
        /// unbounded).
        max_states: Option<u64>,
        /// Extra attempts for budget-starved criteria (`--retry`).
        retry: u64,
        /// Budget escalation factor per retry, in thousandths
        /// (`--escalate 2.0` → `2000`).
        escalate_milli: u64,
        /// Checkpoint file to write progress snapshots to.
        checkpoint: Option<String>,
        /// Flush a checkpoint roughly every this many explored states.
        checkpoint_every: u64,
        /// Output format: `text` or `json`.
        format: String,
    },
    /// `duop shard`.
    Shard {
        /// Trace paths (`-` = stdin); several files form one batch.
        inputs: Vec<String>,
        /// Worker processes (`0` = all hardware threads).
        workers: usize,
        /// Criteria to run (empty = all).
        criteria: Vec<CriterionName>,
        /// Decompose histories into per-component tasks
        /// (`--no-decompose` ships each history whole).
        decompose: bool,
        /// Run the lint prefilter (`--no-prelint` clears it).
        prelint: bool,
        /// Run the verdict-degradation ladder on merged unknowns
        /// (`--no-ladder` clears it).
        ladder: bool,
        /// Run the certifying saturation prefilter (`--no-saturate`
        /// clears it).
        saturate: bool,
        /// Wall-clock deadline per task, in milliseconds.
        deadline_ms: Option<u64>,
        /// Explored-state budget per task.
        max_states: Option<u64>,
        /// Worker deaths tolerated per task before its verdict degrades
        /// to `unknown (worker-death)`.
        retry: u64,
        /// Minimum transactions per dispatched task (consecutive small
        /// components are batched up to this floor).
        min_chunk: usize,
        /// Remote worker daemons to pool (`--connect HOST:PORT`,
        /// repeatable).
        connect: Vec<String>,
        /// File holding the shared secret that authenticates remote
        /// connections (required with `--connect`).
        secret_file: Option<String>,
        /// Output format: `text` or `json`.
        format: String,
    },
    /// The hidden worker mode `duop shard` spawns: speaks the shard
    /// protocol on stdin/stdout.
    ShardWorker,
    /// `duop shard-serve`: the TCP worker daemon remote coordinators
    /// `--connect` to.
    ShardServe {
        /// Bind address (`HOST:PORT`; port 0 picks a free port).
        listen: String,
        /// File holding the shared secret coordinators must prove.
        secret_file: String,
    },
    /// `duop fuzz`.
    Fuzz {
        /// Engine under test.
        engine: EngineName,
        /// Fault specification (`abort=P,crash=P,delay=P,thread-crash=P`).
        faults: String,
        /// Base seed; iteration `i` runs with seed `seed + i`.
        seed: u64,
        /// Number of fault-injected workload runs.
        iters: usize,
        /// Workload worker threads (1 = deterministic replay).
        threads: usize,
        /// Number of t-objects in the engine's store.
        objs: u32,
        /// Output format: `text` or `json`.
        format: String,
        /// Write the shrunk counterexample trace to this file.
        trace_out: Option<String>,
        /// Encoding for `--trace-out`: `text` or `binary`.
        trace_format: String,
    },
    /// `duop certify`.
    Certify {
        /// Trace path (`-` = stdin).
        input: String,
        /// Criteria to certify (empty = all saturable criteria).
        criteria: Vec<CriterionName>,
        /// Output format: `text` or `json`.
        format: String,
    },
    /// `duop lint`.
    Lint {
        /// Trace path (`-` = stdin).
        input: String,
        /// Output format: `text` or `json`.
        format: String,
        /// Restrict output to these rule ids (empty = all).
        rules: Vec<String>,
        /// Print one rule's paper grounding and example instead of
        /// linting (`--explain RULE-ID`).
        explain: Option<String>,
    },
    /// `duop render`.
    Render {
        /// Trace path (`-` = stdin).
        input: String,
    },
    /// `duop monitor`.
    Monitor {
        /// Trace path (`-` = stdin).
        input: String,
        /// Checkpoint file to write progress snapshots to.
        checkpoint: Option<String>,
        /// Flush a checkpoint every this many events.
        checkpoint_every: u64,
        /// Print a JSON status line every this many events (`0` = never).
        status_every: u64,
        /// Compact the retained history whenever it reaches this many
        /// events (`None` = never).
        compact_every: Option<u64>,
    },
    /// `duop serve`.
    Serve {
        /// Bind address (`HOST:PORT`; port 0 picks a free port).
        addr: String,
        /// Checkpoint directory for crash-safe sessions.
        state_dir: Option<String>,
        /// Maximum live sessions before creation is shed with 429.
        session_cap: usize,
        /// Reap sessions idle longer than this many seconds.
        idle_timeout_secs: u64,
        /// Global retained-event ceiling across sessions (shed past it).
        max_retained: Option<u64>,
        /// Default per-session retained-event budget.
        session_budget: Option<usize>,
        /// Flush a session checkpoint every this many ingest requests.
        checkpoint_every: u64,
        /// Per-client-address session requests per second (0 = off).
        peer_rps: u64,
    },
    /// `duop client`.
    Client {
        /// Trace path (`-` = stdin).
        input: String,
        /// Daemon address (`HOST:PORT`).
        addr: String,
        /// Existing session id to resume (`None` = create one).
        session: Option<u64>,
        /// Events per `POST .../events` batch (`0` = one batch).
        chunk_events: u64,
        /// Body encoding: `text` or `binary`.
        body_format: String,
        /// Per-session retained-event budget to request on creation.
        budget: Option<u64>,
        /// Verdict format: `text` or `json`.
        format: String,
    },
    /// `duop resume`.
    Resume {
        /// Checkpoint file written by `--checkpoint`.
        file: String,
    },
    /// `duop generate`.
    Generate {
        /// Generator mode.
        mode: GenModeName,
        /// Number of transactions.
        txns: usize,
        /// Number of t-objects.
        objs: u32,
        /// RNG seed.
        seed: u64,
        /// Unique-writes regime.
        unique: bool,
        /// Concurrency level.
        concurrency: usize,
    },
    /// `duop convert`.
    Convert {
        /// Trace path (`-` = stdin).
        input: String,
        /// Output path (`-` or `None` = stdout).
        output: Option<String>,
        /// Target format: `text`, `json`, `binary`, or `dbcop`.
        to: String,
    },
    /// `duop graph`.
    Graph {
        /// Trace path (`-` = stdin).
        input: String,
    },
    /// `duop localize`.
    Localize {
        /// Trace path (`-` = stdin).
        input: String,
    },
    /// `duop figures`.
    Figures,
    /// `duop litmus`.
    Litmus,
    /// `duop help`.
    Help,
}

/// An argument-parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseError {}

fn parse_format(s: &str) -> Result<String, ParseError> {
    match s {
        "text" | "json" => Ok(s.to_owned()),
        other => Err(ParseError(format!("unknown format `{other}`"))),
    }
}

fn parse_escalate(s: &str) -> Result<u64, ParseError> {
    let factor: f64 = s
        .parse()
        .map_err(|_| ParseError("--escalate needs a factor (e.g. 2.0)".into()))?;
    if !factor.is_finite() || factor < 1.0 {
        return Err(ParseError("--escalate factor must be >= 1.0".into()));
    }
    Ok((factor * 1000.0).round() as u64)
}

fn parse_every<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<u64, ParseError> {
    let n: u64 = value_of(flag, it)?
        .parse()
        .map_err(|_| ParseError(format!("{flag} needs a number")))?;
    if n == 0 {
        return Err(ParseError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

fn value_of<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<&'a String, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

impl Command {
    /// Parses the argument vector (without the program name).
    pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
        let mut it = argv.iter();
        let sub = it.next().map(String::as_str).unwrap_or("help");
        match sub {
            "check" => {
                let mut input = None;
                let mut criteria = Vec::new();
                let mut threads = 1usize;
                let mut decompose = true;
                let mut prelint = true;
                let mut ladder = true;
                let mut saturate = true;
                let mut certify = false;
                let mut deadline_ms = None;
                let mut max_states = None;
                let mut retry = 0u64;
                let mut escalate_milli = 2000u64;
                let mut checkpoint = None;
                let mut checkpoint_every = 4096u64;
                let mut format = String::from("text");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--criterion" | "-c" => {
                            criteria.push(CriterionName::parse(value_of("--criterion", &mut it)?)?);
                        }
                        "--threads" | "-j" => {
                            threads = value_of("--threads", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--threads needs a number".into()))?;
                        }
                        "--no-decompose" => decompose = false,
                        "--no-prelint" => prelint = false,
                        "--no-ladder" => ladder = false,
                        "--no-saturate" => saturate = false,
                        "--certify" => certify = true,
                        "--deadline" => {
                            deadline_ms =
                                Some(value_of("--deadline", &mut it)?.parse().map_err(|_| {
                                    ParseError("--deadline needs milliseconds".into())
                                })?);
                        }
                        "--max-states" => {
                            max_states =
                                Some(value_of("--max-states", &mut it)?.parse().map_err(|_| {
                                    ParseError("--max-states needs a number".into())
                                })?);
                        }
                        "--retry" => {
                            retry = value_of("--retry", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--retry needs a number".into()))?;
                        }
                        "--escalate" => {
                            escalate_milli = parse_escalate(value_of("--escalate", &mut it)?)?;
                        }
                        "--checkpoint" => {
                            checkpoint = Some(value_of("--checkpoint", &mut it)?.clone());
                        }
                        "--checkpoint-every" => {
                            checkpoint_every = parse_every("--checkpoint-every", &mut it)?;
                        }
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        other if input.is_none() => input = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Check {
                    input: input.ok_or_else(|| ParseError("check needs a trace file".into()))?,
                    criteria,
                    threads,
                    decompose,
                    prelint,
                    ladder,
                    saturate,
                    certify,
                    deadline_ms,
                    max_states,
                    retry,
                    escalate_milli,
                    checkpoint,
                    checkpoint_every,
                    format,
                })
            }
            "shard" => {
                let mut inputs = Vec::new();
                let mut workers = 0usize;
                let mut criteria = Vec::new();
                let mut decompose = true;
                let mut prelint = true;
                let mut ladder = true;
                let mut saturate = true;
                let mut deadline_ms = None;
                let mut max_states = None;
                let mut retry = 2u64;
                let mut min_chunk = 8usize;
                let mut connect = Vec::new();
                let mut secret_file = None;
                let mut format = String::from("text");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--connect" => {
                            connect.push(value_of("--connect", &mut it)?.clone());
                        }
                        "--secret-file" => {
                            secret_file = Some(value_of("--secret-file", &mut it)?.clone());
                        }
                        "--workers" | "-w" => {
                            workers = value_of("--workers", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--workers needs a number".into()))?;
                        }
                        "--criterion" | "-c" => {
                            criteria.push(CriterionName::parse(value_of("--criterion", &mut it)?)?);
                        }
                        "--no-decompose" => decompose = false,
                        "--no-prelint" => prelint = false,
                        "--no-ladder" => ladder = false,
                        "--no-saturate" => saturate = false,
                        "--deadline" => {
                            deadline_ms =
                                Some(value_of("--deadline", &mut it)?.parse().map_err(|_| {
                                    ParseError("--deadline needs milliseconds".into())
                                })?);
                        }
                        "--max-states" => {
                            max_states =
                                Some(value_of("--max-states", &mut it)?.parse().map_err(|_| {
                                    ParseError("--max-states needs a number".into())
                                })?);
                        }
                        "--retry" => {
                            retry = value_of("--retry", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--retry needs a number".into()))?;
                        }
                        "--min-chunk" => {
                            min_chunk = value_of("--min-chunk", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--min-chunk needs a number".into()))?;
                        }
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        other => inputs.push(other.to_owned()),
                    }
                }
                if inputs.is_empty() {
                    return Err(ParseError("shard needs at least one trace file".into()));
                }
                if !connect.is_empty() && secret_file.is_none() {
                    return Err(ParseError(
                        "--connect needs --secret-file FILE (the shared secret that \
                         authenticates remote workers)"
                            .into(),
                    ));
                }
                Ok(Command::Shard {
                    inputs,
                    workers,
                    criteria,
                    decompose,
                    prelint,
                    ladder,
                    saturate,
                    deadline_ms,
                    max_states,
                    retry,
                    min_chunk,
                    connect,
                    secret_file,
                    format,
                })
            }
            "shard-worker" => {
                if let Some(extra) = it.next() {
                    return Err(ParseError(format!("unexpected argument `{extra}`")));
                }
                Ok(Command::ShardWorker)
            }
            "shard-serve" => {
                let mut listen = String::from("127.0.0.1:0");
                let mut secret_file = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--listen" | "--addr" => listen = value_of("--listen", &mut it)?.clone(),
                        "--secret-file" => {
                            secret_file = Some(value_of("--secret-file", &mut it)?.clone());
                        }
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::ShardServe {
                    listen,
                    secret_file: secret_file
                        .ok_or_else(|| ParseError("shard-serve needs --secret-file FILE".into()))?,
                })
            }
            "fuzz" => {
                let mut engine = None;
                let mut faults = String::from("abort=0.05,crash=0.05,thread-crash=0.25");
                let mut seed = 0u64;
                let mut iters = 500usize;
                let mut threads = 1usize;
                let mut objs = 4u32;
                let mut format = String::from("text");
                let mut trace_out = None;
                let mut trace_format = String::from("text");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--engine" | "-e" => {
                            engine = Some(EngineName::parse(value_of("--engine", &mut it)?)?);
                        }
                        "--faults" => faults = value_of("--faults", &mut it)?.clone(),
                        "--seed" => {
                            seed = value_of("--seed", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--seed needs a number".into()))?;
                        }
                        "--iters" => {
                            iters = value_of("--iters", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--iters needs a number".into()))?;
                        }
                        "--threads" | "-j" => {
                            threads = value_of("--threads", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--threads needs a number".into()))?;
                        }
                        "--objs" => {
                            objs = value_of("--objs", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--objs needs a number".into()))?;
                        }
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        "--trace-out" => {
                            trace_out = Some(value_of("--trace-out", &mut it)?.clone());
                        }
                        "--trace-format" => {
                            trace_format = match value_of("--trace-format", &mut it)?.as_str() {
                                f @ ("text" | "binary") => f.to_owned(),
                                other => {
                                    return Err(ParseError(format!(
                                        "unknown trace format `{other}` (text|binary)"
                                    )))
                                }
                            };
                        }
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Fuzz {
                    engine: engine
                        .ok_or_else(|| ParseError("fuzz needs --engine <name>".into()))?,
                    faults,
                    seed,
                    iters,
                    threads,
                    objs,
                    format,
                    trace_out,
                    trace_format,
                })
            }
            "certify" => {
                let mut input = None;
                let mut criteria = Vec::new();
                let mut format = String::from("text");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--criterion" | "-c" => {
                            criteria.push(CriterionName::parse(value_of("--criterion", &mut it)?)?);
                        }
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        other if input.is_none() => input = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Certify {
                    input: input.ok_or_else(|| ParseError("certify needs a trace file".into()))?,
                    criteria,
                    format,
                })
            }
            "lint" => {
                let mut input = None;
                let mut format = String::from("text");
                let mut rules = Vec::new();
                let mut explain = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        "--rule" => rules.push(value_of("--rule", &mut it)?.clone()),
                        "--explain" => explain = Some(value_of("--explain", &mut it)?.clone()),
                        other if input.is_none() => input = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                // `--explain` is self-contained: no trace needed.
                if input.is_none() && explain.is_some() {
                    input = Some("-".to_owned());
                }
                Ok(Command::Lint {
                    input: input.ok_or_else(|| ParseError("lint needs a trace file".into()))?,
                    format,
                    rules,
                    explain,
                })
            }
            "monitor" => {
                let mut input = None;
                let mut checkpoint = None;
                let mut checkpoint_every = 32u64;
                let mut status_every = 0u64;
                let mut compact_every = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--checkpoint" => {
                            checkpoint = Some(value_of("--checkpoint", &mut it)?.clone());
                        }
                        "--checkpoint-every" => {
                            checkpoint_every = parse_every("--checkpoint-every", &mut it)?;
                        }
                        "--status-every" => {
                            status_every = value_of("--status-every", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--status-every needs a number".into()))?;
                        }
                        "--compact-every" | "--compact-threshold" => {
                            compact_every = Some(parse_every(arg, &mut it)?);
                        }
                        other if input.is_none() => input = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                if compact_every.is_some() && checkpoint.is_some() {
                    return Err(ParseError(
                        "--compact-every cannot be combined with --checkpoint: snapshots \
                         embed the uncompacted history"
                            .into(),
                    ));
                }
                Ok(Command::Monitor {
                    input: input.ok_or_else(|| ParseError("monitor needs a trace file".into()))?,
                    checkpoint,
                    checkpoint_every,
                    status_every,
                    compact_every,
                })
            }
            "serve" => {
                let mut addr = String::from("127.0.0.1:0");
                let mut state_dir = None;
                let mut session_cap = 256usize;
                let mut idle_timeout_secs = 300u64;
                let mut max_retained = None;
                let mut session_budget = None;
                let mut checkpoint_every = 1u64;
                let mut peer_rps = 0u64;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--addr" => addr = value_of("--addr", &mut it)?.clone(),
                        "--state-dir" => {
                            state_dir = Some(value_of("--state-dir", &mut it)?.clone());
                        }
                        "--session-cap" => {
                            session_cap = parse_every("--session-cap", &mut it)? as usize;
                        }
                        "--idle-timeout" => {
                            idle_timeout_secs = parse_every("--idle-timeout", &mut it)?;
                        }
                        "--max-retained" => {
                            max_retained = Some(parse_every("--max-retained", &mut it)?);
                        }
                        "--session-budget" => {
                            session_budget =
                                Some(parse_every("--session-budget", &mut it)? as usize);
                        }
                        "--checkpoint-every" => {
                            checkpoint_every = parse_every("--checkpoint-every", &mut it)?;
                        }
                        "--peer-rps" => {
                            peer_rps = value_of("--peer-rps", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--peer-rps needs a number".into()))?;
                        }
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Serve {
                    addr,
                    state_dir,
                    session_cap,
                    idle_timeout_secs,
                    max_retained,
                    session_budget,
                    checkpoint_every,
                    peer_rps,
                })
            }
            "client" => {
                let mut input = None;
                let mut addr = None;
                let mut session = None;
                let mut chunk_events = 0u64;
                let mut body_format = String::from("text");
                let mut budget = None;
                let mut format = String::from("json");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--addr" => addr = Some(value_of("--addr", &mut it)?.clone()),
                        "--session" => {
                            session =
                                Some(value_of("--session", &mut it)?.parse().map_err(|_| {
                                    ParseError("--session needs a session id".into())
                                })?);
                        }
                        "--chunk-events" => {
                            chunk_events = parse_every("--chunk-events", &mut it)?;
                        }
                        "--body-format" => {
                            let v = value_of("--body-format", &mut it)?;
                            match v.as_str() {
                                "text" | "binary" => body_format = v.clone(),
                                other => {
                                    return Err(ParseError(format!(
                                        "unknown body format `{other}`"
                                    )))
                                }
                            }
                        }
                        "--budget" => {
                            budget = Some(parse_every("--budget", &mut it)?);
                        }
                        "--format" => format = parse_format(value_of("--format", &mut it)?)?,
                        other if input.is_none() => input = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Client {
                    input: input.ok_or_else(|| ParseError("client needs a trace file".into()))?,
                    addr: addr.ok_or_else(|| ParseError("client needs --addr HOST:PORT".into()))?,
                    session,
                    chunk_events,
                    body_format,
                    budget,
                    format,
                })
            }
            "resume" => {
                let file = it
                    .next()
                    .ok_or_else(|| ParseError("resume needs a checkpoint file".into()))?
                    .clone();
                if let Some(extra) = it.next() {
                    return Err(ParseError(format!("unexpected argument `{extra}`")));
                }
                Ok(Command::Resume { file })
            }
            "render" | "graph" | "localize" => {
                let input = it
                    .next()
                    .ok_or_else(|| ParseError(format!("{sub} needs a trace file")))?
                    .clone();
                if let Some(extra) = it.next() {
                    return Err(ParseError(format!("unexpected argument `{extra}`")));
                }
                Ok(match sub {
                    "render" => Command::Render { input },
                    "graph" => Command::Graph { input },
                    _ => Command::Localize { input },
                })
            }
            "generate" => {
                let mut mode = GenModeName::Simulated;
                let mut txns = 8usize;
                let mut objs = 4u32;
                let mut seed = 0u64;
                let mut unique = false;
                let mut concurrency = 3usize;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--mode" => {
                            mode = match value_of("--mode", &mut it)?.as_str() {
                                "simulated" | "sim" => GenModeName::Simulated,
                                "value" | "value-validated" => GenModeName::Value,
                                "adversarial" | "adv" => GenModeName::Adversarial,
                                other => return Err(ParseError(format!("unknown mode `{other}`"))),
                            };
                        }
                        "--txns" => {
                            txns = value_of("--txns", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--txns needs a number".into()))?;
                        }
                        "--objs" => {
                            objs = value_of("--objs", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--objs needs a number".into()))?;
                        }
                        "--seed" => {
                            seed = value_of("--seed", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--seed needs a number".into()))?;
                        }
                        "--concurrency" => {
                            concurrency = value_of("--concurrency", &mut it)?
                                .parse()
                                .map_err(|_| ParseError("--concurrency needs a number".into()))?;
                        }
                        "--unique" => unique = true,
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                Ok(Command::Generate {
                    mode,
                    txns,
                    objs,
                    seed,
                    unique,
                    concurrency,
                })
            }
            "convert" => {
                let mut input = None;
                let mut output = None;
                let mut to = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--to" | "--format" => to = Some(value_of(arg, &mut it)?.clone()),
                        other if input.is_none() => input = Some(other.to_owned()),
                        other if output.is_none() => output = Some(other.to_owned()),
                        other => return Err(ParseError(format!("unexpected argument `{other}`"))),
                    }
                }
                let to = to.ok_or_else(|| {
                    ParseError("convert needs --format text|json|binary|dbcop".into())
                })?;
                if !matches!(to.as_str(), "text" | "json" | "binary" | "dbcop") {
                    return Err(ParseError(format!("unknown format `{to}`")));
                }
                Ok(Command::Convert {
                    input: input.ok_or_else(|| ParseError("convert needs a trace file".into()))?,
                    output,
                    to,
                })
            }
            "figures" => Ok(Command::Figures),
            "litmus" => Ok(Command::Litmus),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(ParseError(format!("unknown subcommand `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Command::parse(&argv)
    }

    #[test]
    fn check_with_criteria() {
        let cmd = parse(&["check", "trace.txt", "--criterion", "du", "-c", "tms2"]).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                input: "trace.txt".into(),
                criteria: vec![CriterionName::DuOpacity, CriterionName::Tms2],
                threads: 1,
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            }
        );
    }

    #[test]
    fn check_requires_input() {
        assert!(parse(&["check"]).is_err());
    }

    #[test]
    fn check_parses_threads() {
        let cmd = parse(&["check", "t.txt", "--threads", "8"]).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                input: "t.txt".into(),
                criteria: vec![],
                threads: 8,
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            }
        );
        assert!(parse(&["check", "t.txt", "--threads", "many"]).is_err());
        assert!(parse(&["check", "t.txt", "-j"]).is_err());
    }

    #[test]
    fn check_parses_no_decompose() {
        let cmd = parse(&["check", "t.txt", "--no-decompose"]).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                input: "t.txt".into(),
                criteria: vec![],
                threads: 1,
                decompose: false,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            }
        );
    }

    #[test]
    fn check_parses_prelint_and_format() {
        let cmd = parse(&["check", "t.txt", "--no-prelint", "--format", "json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                input: "t.txt".into(),
                criteria: vec![],
                threads: 1,
                decompose: true,
                prelint: false,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "json".into(),
            }
        );
        assert!(parse(&["check", "t.txt", "--format", "yaml"]).is_err());
    }

    #[test]
    fn check_parses_deadline() {
        let cmd = parse(&["check", "t.txt", "--deadline", "250"]).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                input: "t.txt".into(),
                criteria: vec![],
                threads: 1,
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: Some(250),
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            }
        );
        assert!(parse(&["check", "t.txt", "--deadline", "soon"]).is_err());
        assert!(parse(&["check", "t.txt", "--deadline"]).is_err());
    }

    #[test]
    fn check_parses_no_saturate_and_certify() {
        match parse(&["check", "t.txt", "--no-saturate", "--certify"]).unwrap() {
            Command::Check {
                saturate, certify, ..
            } => {
                assert!(!saturate);
                assert!(certify);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&["shard", "t.txt", "--no-saturate"]).unwrap() {
            Command::Shard { saturate, .. } => assert!(!saturate),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn certify_parses_criteria_and_format() {
        let cmd = parse(&["certify", "t.txt", "-c", "du", "--format", "json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Certify {
                input: "t.txt".into(),
                criteria: vec![CriterionName::DuOpacity],
                format: "json".into(),
            }
        );
        assert!(parse(&["certify"]).is_err(), "needs a trace file");
        assert!(parse(&["certify", "t.txt", "--criterion", "nope"]).is_err());
    }

    #[test]
    fn lint_parses_explain_without_trace() {
        let cmd = parse(&["lint", "--explain", "DU002"]).unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                input: "-".into(),
                format: "text".into(),
                rules: vec![],
                explain: Some("DU002".into()),
            }
        );
        // With a trace too: the explain still wins at execution time.
        assert!(parse(&["lint", "t.txt", "--explain", "CY004"]).is_ok());
        assert!(parse(&["lint", "t.txt", "--explain"]).is_err());
    }

    #[test]
    fn fuzz_parses_engine_and_flags() {
        let cmd = parse(&[
            "fuzz",
            "--engine",
            "dirty",
            "--faults",
            "crash=0.2",
            "--seed",
            "7",
            "--iters",
            "50",
            "--threads",
            "2",
            "--objs",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz {
                engine: EngineName::Dirty,
                faults: "crash=0.2".into(),
                seed: 7,
                iters: 50,
                threads: 2,
                objs: 3,
                format: "text".into(),
                trace_out: None,
                trace_format: "text".into(),
            }
        );
    }

    #[test]
    fn fuzz_has_safe_defaults_and_requires_engine() {
        let cmd = parse(&["fuzz", "--engine", "tl2"]).unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz {
                engine: EngineName::Tl2,
                faults: "abort=0.05,crash=0.05,thread-crash=0.25".into(),
                seed: 0,
                iters: 500,
                threads: 1,
                objs: 4,
                format: "text".into(),
                trace_out: None,
                trace_format: "text".into(),
            }
        );
        assert!(parse(&["fuzz"]).is_err());
        assert!(parse(&["fuzz", "--engine", "bogus"]).is_err());
    }

    #[test]
    fn fuzz_parses_trace_out() {
        let cmd = parse(&[
            "fuzz",
            "--engine",
            "dirty",
            "--trace-out",
            "core.duob",
            "--trace-format",
            "binary",
        ])
        .unwrap();
        match cmd {
            Command::Fuzz {
                trace_out,
                trace_format,
                ..
            } => {
                assert_eq!(trace_out.as_deref(), Some("core.duob"));
                assert_eq!(trace_format, "binary");
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["fuzz", "--engine", "dirty", "--trace-format", "json"]).is_err());
    }

    #[test]
    fn engine_names() {
        for (name, expected) in [
            ("tl2", EngineName::Tl2),
            ("norec", EngineName::NoRec),
            ("dstm", EngineName::Dstm),
            ("2pl", EngineName::TwoPl),
            ("pessimistic", EngineName::Pessimistic),
            ("dirty", EngineName::Dirty),
        ] {
            assert_eq!(EngineName::parse(name).unwrap(), expected);
        }
        assert!(EngineName::parse("htm").is_err());
    }

    #[test]
    fn lint_parses_rules_and_format() {
        let cmd = parse(&[
            "lint", "t.txt", "--rule", "DU002", "--rule", "CY004", "--format", "json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                input: "t.txt".into(),
                format: "json".into(),
                rules: vec!["DU002".into(), "CY004".into()],
                explain: None,
            }
        );
        assert!(parse(&["lint"]).is_err());
        assert!(parse(&["lint", "t.txt", "--format", "xml"]).is_err());
    }

    #[test]
    fn generate_flags() {
        let cmd = parse(&[
            "generate",
            "--mode",
            "adv",
            "--txns",
            "12",
            "--objs",
            "2",
            "--seed",
            "9",
            "--unique",
            "--concurrency",
            "5",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                mode: GenModeName::Adversarial,
                txns: 12,
                objs: 2,
                seed: 9,
                unique: true,
                concurrency: 5,
            }
        );
    }

    #[test]
    fn convert_requires_known_format() {
        assert!(parse(&["convert", "t.txt", "--to", "yaml"]).is_err());
        assert!(parse(&["convert", "t.txt", "--to", "json"]).is_ok());
        assert!(parse(&["convert", "t.txt", "--format", "binary"]).is_ok());
        assert!(parse(&["convert", "t.txt", "--format", "dbcop"]).is_ok());
        assert!(parse(&["convert", "t.txt"]).is_err());
    }

    #[test]
    fn convert_takes_optional_output() {
        let cmd = parse(&["convert", "in.txt", "out.duob", "--format", "binary"]).unwrap();
        assert_eq!(
            cmd,
            Command::Convert {
                input: "in.txt".into(),
                output: Some("out.duob".into()),
                to: "binary".into(),
            }
        );
        assert!(parse(&["convert", "a", "b", "c", "--format", "text"]).is_err());
    }

    #[test]
    fn monitor_parses_compact_every() {
        let cmd = parse(&["monitor", "t.txt", "--compact-every", "64"]).unwrap();
        assert_eq!(
            cmd,
            Command::Monitor {
                input: "t.txt".into(),
                checkpoint: None,
                checkpoint_every: 32,
                status_every: 0,
                compact_every: Some(64),
            }
        );
        assert!(parse(&["monitor", "t.txt", "--compact-every", "0"]).is_err());
        assert!(
            parse(&[
                "monitor",
                "t.txt",
                "--compact-every",
                "4",
                "--checkpoint",
                "c"
            ])
            .is_err(),
            "compaction and checkpointing are mutually exclusive"
        );
    }

    #[test]
    fn monitor_accepts_compact_threshold_synonym() {
        let cmd = parse(&["monitor", "t.txt", "--compact-threshold", "64"]).unwrap();
        assert_eq!(
            cmd,
            Command::Monitor {
                input: "t.txt".into(),
                checkpoint: None,
                checkpoint_every: 32,
                status_every: 0,
                compact_every: Some(64),
            }
        );
        assert!(parse(&["monitor", "t.txt", "--compact-threshold", "0"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cmd = parse(&["serve"]).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                state_dir: None,
                session_cap: 256,
                idle_timeout_secs: 300,
                max_retained: None,
                session_budget: None,
                checkpoint_every: 1,
                peer_rps: 0,
            }
        );
        let cmd = parse(&[
            "serve",
            "--addr",
            "127.0.0.1:8080",
            "--state-dir",
            "st",
            "--session-cap",
            "4",
            "--idle-timeout",
            "10",
            "--max-retained",
            "5000",
            "--session-budget",
            "128",
            "--checkpoint-every",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                state_dir: Some("st".into()),
                session_cap: 4,
                idle_timeout_secs: 10,
                max_retained: Some(5000),
                session_budget: Some(128),
                checkpoint_every: 3,
                peer_rps: 0,
            }
        );
        assert!(parse(&["serve", "trace.txt"]).is_err());
        assert!(parse(&["serve", "--max-retained", "0"]).is_err());
        match parse(&["serve", "--peer-rps", "5"]).unwrap() {
            Command::Serve { peer_rps, .. } => assert_eq!(peer_rps, 5),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&["serve", "--peer-rps", "lots"]).is_err());
    }

    #[test]
    fn client_requires_addr() {
        assert!(parse(&["client", "t.txt"]).is_err());
        assert!(parse(&["client", "--addr", "127.0.0.1:1"]).is_err());
        let cmd = parse(&[
            "client",
            "t.txt",
            "--addr",
            "127.0.0.1:9",
            "--session",
            "7",
            "--chunk-events",
            "16",
            "--body-format",
            "binary",
            "--budget",
            "64",
            "--format",
            "text",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                input: "t.txt".into(),
                addr: "127.0.0.1:9".into(),
                session: Some(7),
                chunk_events: 16,
                body_format: "binary".into(),
                budget: Some(64),
                format: "text".into(),
            }
        );
        assert!(parse(&["client", "t.txt", "--addr", "a:1", "--body-format", "nope"]).is_err());
    }

    #[test]
    fn criterion_names() {
        for (name, expected) in [
            ("du", CriterionName::DuOpacity),
            ("fso", CriterionName::FinalState),
            ("opacity", CriterionName::Opacity),
            ("rco", CriterionName::Rco),
            ("tms2", CriterionName::Tms2),
            ("tms2-automaton", CriterionName::Tms2Automaton),
            ("strict", CriterionName::Strict),
        ] {
            assert_eq!(CriterionName::parse(name).unwrap(), expected);
        }
        assert!(CriterionName::parse("nope").is_err());
    }

    #[test]
    fn shard_defaults_and_flags() {
        let cmd = parse(&["shard", "a.duob", "b.duob", "--workers", "4", "-c", "du"]).unwrap();
        assert_eq!(
            cmd,
            Command::Shard {
                inputs: vec!["a.duob".into(), "b.duob".into()],
                workers: 4,
                criteria: vec![CriterionName::DuOpacity],
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                deadline_ms: None,
                max_states: None,
                retry: 2,
                min_chunk: 8,
                connect: vec![],
                secret_file: None,
                format: "text".into(),
            }
        );
        assert!(parse(&["shard"]).is_err(), "needs an input");
        assert_eq!(parse(&["shard-worker"]).unwrap(), Command::ShardWorker);
        assert!(parse(&["shard-worker", "extra"]).is_err());
    }

    #[test]
    fn shard_remote_flags() {
        let cmd = parse(&[
            "shard",
            "a.duob",
            "--workers",
            "0",
            "--connect",
            "10.0.0.1:9400",
            "--connect",
            "10.0.0.2:9400",
            "--secret-file",
            "/run/duop.secret",
        ])
        .unwrap();
        match cmd {
            Command::Shard {
                workers,
                connect,
                secret_file,
                ..
            } => {
                assert_eq!(workers, 0);
                assert_eq!(connect, vec!["10.0.0.1:9400", "10.0.0.2:9400"]);
                assert_eq!(secret_file.as_deref(), Some("/run/duop.secret"));
            }
            other => panic!("unexpected command {other:?}"),
        }
        // Remote workers without a shared secret cannot authenticate.
        assert!(parse(&["shard", "a.duob", "--connect", "h:1"]).is_err());
    }

    #[test]
    fn shard_serve_flags() {
        let cmd = parse(&[
            "shard-serve",
            "--secret-file",
            "s",
            "--listen",
            "0.0.0.0:9400",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::ShardServe {
                listen: "0.0.0.0:9400".into(),
                secret_file: "s".into(),
            }
        );
        match parse(&["shard-serve", "--secret-file", "s"]).unwrap() {
            Command::ShardServe { listen, .. } => assert_eq!(listen, "127.0.0.1:0"),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&["shard-serve"]).is_err(), "needs --secret-file");
        assert!(parse(&["shard-serve", "--secret-file", "s", "extra"]).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(parse(&["frobnicate"]).is_err());
    }
}
