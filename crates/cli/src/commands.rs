//! Execution of parsed `duop` commands.

use crate::args::{Command, CriterionName, EngineName, GenModeName, USAGE};
use duop_core::online::OnlineChecker;
use duop_core::snapshot::{
    self, CheckSnapshot, CheckableCriterion, CompletedCriterion, InFlight, MonitorSnapshot,
    ResumableCheck, Snapshot, WitnessSnap,
};
use duop_core::tms2_automaton::{check_tms2_automaton, Tms2Verdict};
use duop_core::{
    available_threads, Criterion, DuOpacity, FinalStateOpacity, Opacity, ReadCommitOrderOpacity,
    SearchConfig, StrictSerializability, Tms2, UnknownReason, Verdict,
};
use duop_gen::{GenMode, HistoryGen, HistoryGenConfig};
use duop_history::reader::{self, TraceReader};
use duop_history::render::render_lanes;
use duop_history::trace::{format_trace, to_json};
use duop_history::{binary, dbcop, Event, EventKind, History, Op, Ret};
use std::error::Error;
use std::io::Write;

type CmdResult = Result<bool, Box<dyn Error>>;

/// Executes a parsed command, writing human-readable output to `out`.
///
/// Returns `Ok(true)` when everything checked was satisfied (or the
/// command does not check anything), `Ok(false)` when some criterion was
/// violated.
///
/// # Errors
///
/// I/O and parse failures are returned as boxed errors.
pub fn execute(cmd: &Command, out: &mut dyn Write) -> CmdResult {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(true)
        }
        Command::Figures => figures(out),
        Command::Litmus => litmus(out),
        Command::Render { input } => {
            let h = load(input)?;
            write!(out, "{}", render_lanes(&h))?;
            Ok(true)
        }
        Command::Convert { input, output, to } => {
            let bytes = load_bytes(input)?;
            // Names survive transcoding: a dbcop import's variable and
            // session labels ride along into the binary intern table.
            let (h, names) = reader::read_history_with_names(&bytes)?;
            let encoded: Vec<u8> = match to.as_str() {
                "json" => {
                    let mut s = to_json(&h);
                    s.push('\n');
                    s.into_bytes()
                }
                "binary" => binary::encode_with_names(&h, &names),
                "dbcop" => {
                    let mut s = dbcop::export(&h);
                    s.push('\n');
                    s.into_bytes()
                }
                _ => format_trace(&h).into_bytes(),
            };
            match output.as_deref() {
                Some(path) if path != "-" => std::fs::write(path, &encoded)?,
                _ => out.write_all(&encoded)?,
            }
            Ok(true)
        }
        Command::Check {
            input,
            criteria,
            threads,
            decompose,
            prelint,
            ladder,
            saturate,
            certify,
            deadline_ms,
            max_states,
            retry,
            escalate_milli,
            checkpoint,
            checkpoint_every,
            format,
        } => {
            // `--threads 0` = every hardware thread; `1` = the sequential
            // engine.
            let threads = if *threads == 0 {
                available_threads()
            } else {
                *threads
            };
            let opts = CheckOpts {
                threads,
                decompose: *decompose,
                prelint: *prelint,
                ladder: *ladder,
                saturate: *saturate,
                certify: *certify,
                deadline_ms: *deadline_ms,
                max_states: *max_states,
                retry: *retry,
                escalate_milli: *escalate_milli,
                checkpoint: checkpoint.clone(),
                checkpoint_every: *checkpoint_every,
                format: format.clone(),
            };
            check(&load(input)?, criteria, &opts, None, out)
        }
        Command::Shard {
            inputs,
            workers,
            criteria,
            decompose,
            prelint,
            ladder,
            saturate,
            deadline_ms,
            max_states,
            retry,
            min_chunk,
            connect,
            secret_file,
            format,
        } => {
            let opts = ShardOpts {
                workers: *workers,
                decompose: *decompose,
                prelint: *prelint,
                ladder: *ladder,
                saturate: *saturate,
                deadline_ms: *deadline_ms,
                max_states: *max_states,
                retry: *retry,
                min_chunk: *min_chunk,
                connect: connect.clone(),
                secret_file: secret_file.clone(),
                format: format.clone(),
            };
            shard(inputs, criteria, &opts, out)
        }
        Command::ShardWorker => {
            // The worker owns the raw standard streams (they carry the
            // binary shard protocol, not human output) and reports
            // malformed input via exit code 2, like trace ingestion.
            std::process::exit(duop_shard::worker_main());
        }
        Command::ShardServe {
            listen,
            secret_file,
        } => {
            let secret = duop_shard::load_secret(secret_file)?;
            let cfg = duop_shard::ShardServeConfig::from_env(listen.clone(), secret);
            let server = duop_shard::ShardServer::bind(cfg)?;
            server.run(out)?;
            Ok(true)
        }
        Command::Fuzz {
            engine,
            faults,
            seed,
            iters,
            threads,
            objs,
            format,
            trace_out,
            trace_format,
        } => {
            let opts = FuzzOpts {
                engine: *engine,
                faults,
                seed: *seed,
                iters: *iters,
                threads: *threads,
                objs: *objs,
                format,
                trace_out: trace_out.as_deref(),
                trace_format,
            };
            fuzz(&opts, out)
        }
        Command::Certify {
            input,
            criteria,
            format,
        } => certify(&load(input)?, criteria, format, out),
        Command::Lint {
            input,
            format,
            rules,
            explain,
        } => match explain {
            // `--explain` is a registry lookup: no trace is read.
            Some(id) => explain_rule(id, out),
            None => lint(&load(input)?, format, rules, out),
        },
        Command::Graph { input } => {
            let h = load(input)?;
            let witness = DuOpacity::new().check(&h).witness().cloned();
            write!(out, "{}", duop_core::graph::to_dot(&h, witness.as_ref()))?;
            Ok(true)
        }
        Command::Localize { input } => {
            let h = load(input)?;
            let checker = DuOpacity::new();
            match duop_core::minimize::localize(&h, &checker) {
                Some(core) => {
                    writeln!(
                        out,
                        "du-opacity violated; minimized from {} events / {} transactions to {} / {}:",
                        h.len(),
                        h.txn_count(),
                        core.len(),
                        core.txn_count()
                    )?;
                    write!(out, "{}", render_lanes(&core))?;
                    if let Some(v) = checker.check(&core).violation() {
                        writeln!(out, "cause: {v}")?;
                    }
                    Ok(false)
                }
                None => {
                    writeln!(out, "du-opacity satisfied; nothing to localize")?;
                    Ok(true)
                }
            }
        }
        Command::Monitor {
            input,
            checkpoint,
            checkpoint_every,
            status_every,
            compact_every,
        } => {
            let opts = MonitorOpts {
                checkpoint: checkpoint.clone(),
                checkpoint_every: *checkpoint_every,
                status_every: *status_every,
                compact_every: *compact_every,
            };
            if opts.checkpoint.is_some() {
                // Snapshots must embed the complete event list to be
                // resumable, so the checkpointed path materialises the
                // input up front.
                monitor(&load(input)?, &opts, None, out)
            } else {
                monitor_stream(&load_bytes(input)?, &opts, out)
            }
        }
        Command::Resume { file } => resume(file, out),
        Command::Serve {
            addr,
            state_dir,
            session_cap,
            idle_timeout_secs,
            max_retained,
            session_budget,
            checkpoint_every,
            peer_rps,
        } => {
            let cfg = duop_serve::ServeConfig {
                addr: addr.clone(),
                state_dir: state_dir.clone(),
                session_cap: *session_cap,
                idle_timeout: std::time::Duration::from_secs(*idle_timeout_secs),
                max_retained: *max_retained,
                session_budget: *session_budget,
                checkpoint_every: *checkpoint_every,
                peer_rps: *peer_rps,
            };
            let server = duop_serve::Server::bind(cfg)?;
            server.run(out)?;
            Ok(true)
        }
        Command::Client {
            input,
            addr,
            session,
            chunk_events,
            body_format,
            budget,
            format,
        } => {
            let opts = ClientOpts {
                addr,
                session: *session,
                chunk_events: *chunk_events,
                body_format,
                budget: *budget,
                format,
            };
            client(input, &opts, out)
        }
        Command::Generate {
            mode,
            txns,
            objs,
            seed,
            unique,
            concurrency,
        } => {
            let cfg = HistoryGenConfig {
                txns: *txns,
                objs: *objs,
                unique_writes: *unique,
                mode: match mode {
                    GenModeName::Simulated => GenMode::Simulated,
                    GenModeName::Value => GenMode::ValueValidated,
                    GenModeName::Adversarial => GenMode::Adversarial,
                },
                ..HistoryGenConfig::medium_simulated()
            }
            .with_concurrency(*concurrency);
            let h = HistoryGen::new(cfg, *seed).generate();
            write!(out, "{}", format_trace(&h))?;
            Ok(true)
        }
    }
}

/// Reads a trace path (`-` = stdin) into raw bytes.
fn load_bytes(input: &str) -> Result<Vec<u8>, Box<dyn Error>> {
    if input == "-" {
        let mut buf = Vec::new();
        std::io::Read::read_to_end(&mut std::io::stdin(), &mut buf)?;
        Ok(buf)
    } else {
        Ok(std::fs::read(input)?)
    }
}

/// Loads a trace from a path (`-` = stdin), auto-detecting the encoding
/// — line text, JSON event array, `.duob` binary, or a dbcop session
/// history — from the leading bytes.
fn load(input: &str) -> Result<History, Box<dyn Error>> {
    Ok(reader::read_history(&load_bytes(input)?)?)
}

fn all_criteria() -> Vec<CriterionName> {
    vec![
        CriterionName::FinalState,
        CriterionName::Opacity,
        CriterionName::DuOpacity,
        CriterionName::Rco,
        CriterionName::Tms2,
        CriterionName::Tms2Automaton,
        CriterionName::Strict,
    ]
}

/// Resolved `duop check` options (CLI flags or a resumed checkpoint).
struct CheckOpts {
    threads: usize,
    decompose: bool,
    prelint: bool,
    ladder: bool,
    saturate: bool,
    certify: bool,
    deadline_ms: Option<u64>,
    max_states: Option<u64>,
    retry: u64,
    escalate_milli: u64,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    format: String,
}

/// Progress carried over from a loaded check snapshot.
struct CheckResumeState {
    completed: Vec<CompletedCriterion>,
    current: Option<InFlight>,
    attempt: u64,
}

/// The CLI spelling of a criterion, used as the stable key inside
/// checkpoints (`CriterionName::parse` accepts every token).
fn criterion_token(name: CriterionName) -> &'static str {
    match name {
        CriterionName::DuOpacity => "du",
        CriterionName::FinalState => "final-state",
        CriterionName::Opacity => "opacity",
        CriterionName::Rco => "rco",
        CriterionName::Tms2 => "tms2",
        CriterionName::Tms2Automaton => "tms2-automaton",
        CriterionName::Strict => "strict",
    }
}

/// The criteria whose exact check runs through the resumable anytime
/// driver (single serialization query, sequential engine).
fn resumable_criterion(name: CriterionName) -> Option<CheckableCriterion> {
    match name {
        CriterionName::DuOpacity => Some(CheckableCriterion::DuOpacity),
        CriterionName::FinalState => Some(CheckableCriterion::FinalStateOpacity),
        CriterionName::Rco => Some(CheckableCriterion::ReadCommitOrder),
        CriterionName::Tms2 => Some(CheckableCriterion::Tms2),
        CriterionName::Strict => Some(CheckableCriterion::StrictSerializability),
        CriterionName::Opacity | CriterionName::Tms2Automaton => None,
    }
}

/// Applies `attempt` rounds of geometric escalation to a budget. Each
/// round grows the budget by at least one unit so a degenerate factor
/// (or a zero budget) still escalates; attempt 0 returns it unchanged.
fn escalated(budget: Option<u64>, escalate_milli: u64, attempt: u64) -> Option<u64> {
    budget.map(|mut b| {
        for _ in 0..attempt {
            b = (b.saturating_mul(escalate_milli) / 1000).max(b.saturating_add(1));
        }
        b
    })
}

/// Whether a verdict is an Unknown worth retrying with a bigger budget.
fn retryable(verdict: &Verdict) -> bool {
    matches!(
        verdict,
        Verdict::Unknown {
            reason: UnknownReason::StateBudget | UnknownReason::Deadline,
            ..
        }
    )
}

fn base_snapshot(h: &History, list: &[CriterionName], opts: &CheckOpts) -> CheckSnapshot {
    CheckSnapshot {
        events: h.events().to_vec(),
        criteria: list
            .iter()
            .map(|c| criterion_token(*c).to_owned())
            .collect(),
        format: opts.format.clone(),
        threads: opts.threads as u64,
        decompose: opts.decompose,
        prelint: opts.prelint,
        ladder: opts.ladder,
        saturate: opts.saturate,
        deadline_ms: opts.deadline_ms.unwrap_or(0),
        max_states: opts.max_states.unwrap_or(0),
        retry: opts.retry,
        escalate_milli: opts.escalate_milli,
        attempt: 0,
        completed: Vec::new(),
        current: None,
    }
}

fn search_config(opts: &CheckOpts, attempt: u64) -> SearchConfig {
    SearchConfig {
        threads: Some(opts.threads),
        decompose: opts.decompose,
        prelint: opts.prelint,
        ladder: opts.ladder,
        saturate: opts.saturate,
        deadline: escalated(opts.deadline_ms, opts.escalate_milli, attempt)
            .map(std::time::Duration::from_millis),
        max_states: escalated(opts.max_states, opts.escalate_milli, attempt),
        interruptible: true,
        ..SearchConfig::default()
    }
}

/// Runs the full-automaton TMS2 check and renders the `ok` flag and
/// detail field of its output line. Shared by `check` and `shard`
/// ([`Tms2Verdict`] is not a [`Verdict`], so the shard pipeline runs
/// this criterion in the coordinator).
fn tms2_automaton_detail(h: &History, json: bool) -> (bool, String) {
    match check_tms2_automaton(h, Some(10_000_000)) {
        Tms2Verdict::Accepted(_) => (
            true,
            if json {
                "{\"status\":\"satisfied\"}".to_owned()
            } else {
                "accepted".to_owned()
            },
        ),
        Tms2Verdict::Rejected { explored } => (
            false,
            if json {
                format!("{{\"status\":\"violated\",\"explored\":{explored}}}")
            } else {
                format!("rejected ({explored} states)")
            },
        ),
        Tms2Verdict::Unknown { explored } => (
            false,
            if json {
                format!("{{\"status\":\"unknown\",\"explored\":{explored}}}")
            } else {
                format!("unknown (budget after {explored} states)")
            },
        ),
    }
}

fn check(
    h: &History,
    criteria: &[CriterionName],
    opts: &CheckOpts,
    resume: Option<CheckResumeState>,
    out: &mut dyn Write,
) -> CmdResult {
    let json = opts.format == "json";
    if !json {
        writeln!(out, "{}", h.stats())?;
    }
    let list = if criteria.is_empty() {
        all_criteria()
    } else {
        criteria.to_vec()
    };
    let snap_base = base_snapshot(h, &list, opts);
    let (mut completed, in_flight, resumed_attempt) = match resume {
        Some(r) => (r.completed, r.current, r.attempt),
        None => (Vec::new(), None, 0),
    };
    // Recorded lines from the interrupted run are re-emitted verbatim:
    // the resumed transcript is the uninterrupted transcript.
    let mut all_ok = true;
    for c in &completed {
        writeln!(out, "{}", c.line)?;
        all_ok &= c.ok;
    }
    for name in list {
        let token = criterion_token(name);
        if completed.iter().any(|c| c.name == token) {
            continue;
        }
        let mut attempt = match &in_flight {
            Some(f) if f.name == token => resumed_attempt,
            _ => 0,
        };
        let (label, ok, detail): (&str, bool, String) = match name {
            CriterionName::Tms2Automaton => {
                let (ok, detail) = tms2_automaton_detail(h, json);
                ("TMS2 (full automaton)", ok, detail)
            }
            other => {
                let verdict = match (resumable_criterion(other), opts.threads) {
                    (Some(cc), 1) => {
                        // Anytime path: persistent component cache,
                        // checkpoint sink, escalation with fragment reuse.
                        let mut rc = ResumableCheck::new();
                        if let Some(f) = in_flight.as_ref().filter(|f| f.name == token) {
                            rc.preload(f.fragments.clone());
                        }
                        if let Some(path) = &opts.checkpoint {
                            let sink_snap = CheckSnapshot {
                                completed: completed.clone(),
                                attempt,
                                ..snap_base.clone()
                            };
                            let sink_path = path.clone();
                            snapshot::install_checkpoint_sink(
                                opts.checkpoint_every,
                                Box::new(move |fragments, explored| {
                                    let mut snap = sink_snap.clone();
                                    snap.current = Some(InFlight {
                                        name: token.to_owned(),
                                        explored,
                                        fragments: fragments.to_vec(),
                                    });
                                    // Mid-flight flushes are best-effort;
                                    // the final flush reports errors.
                                    let _ = snapshot::save(&sink_path, &Snapshot::Check(snap));
                                }),
                            );
                        }
                        let verdict = loop {
                            let cfg = search_config(opts, attempt);
                            let (verdict, _stats) = rc.check(h, cc, &cfg);
                            if retryable(&verdict) && attempt < opts.retry {
                                attempt += 1;
                                if !json {
                                    writeln!(
                                        out,
                                        "{:<28} {verdict}; retrying (attempt {attempt}, budget ×{})",
                                        checker_label(other),
                                        (opts.escalate_milli as f64 / 1000.0),
                                    )?;
                                }
                                continue;
                            }
                            break verdict;
                        };
                        snapshot::remove_checkpoint_sink();
                        if let (
                            Some(path),
                            Verdict::Unknown {
                                reason, explored, ..
                            },
                        ) = (&opts.checkpoint, &verdict)
                        {
                            // Leave the criterion in-flight with its decided
                            // fragments so `duop resume` picks it back up.
                            let mut snap = snap_base.clone();
                            snap.completed = completed.clone();
                            snap.attempt = attempt;
                            snap.current = Some(InFlight {
                                name: token.to_owned(),
                                explored: *explored,
                                fragments: rc.fragments(),
                            });
                            snapshot::save(path, &Snapshot::Check(snap))?;
                            if *reason == UnknownReason::Interrupted {
                                if !json {
                                    writeln!(
                                        out,
                                        "interrupted; progress checkpointed to {path} \
                                         (continue with: duop resume {path})"
                                    )?;
                                }
                                return Ok(false);
                            }
                        }
                        verdict
                    }
                    _ => {
                        // Parallel engine / prefix-loop criteria: escalation
                        // re-runs from scratch (no fragment reuse).
                        let verdict = loop {
                            let cfg = search_config(opts, attempt);
                            let checker: Box<dyn Criterion> = match other {
                                CriterionName::DuOpacity => Box::new(DuOpacity::with_config(cfg)),
                                CriterionName::FinalState => {
                                    Box::new(FinalStateOpacity::with_config(cfg))
                                }
                                CriterionName::Opacity => Box::new(Opacity::with_config(cfg)),
                                CriterionName::Rco => {
                                    Box::new(ReadCommitOrderOpacity::with_config(cfg))
                                }
                                CriterionName::Tms2 => Box::new(Tms2::with_config(cfg)),
                                CriterionName::Strict => {
                                    Box::new(StrictSerializability::with_config(cfg))
                                }
                                CriterionName::Tms2Automaton => unreachable!("handled above"),
                            };
                            let verdict = checker.check(h);
                            if retryable(&verdict) && attempt < opts.retry {
                                attempt += 1;
                                continue;
                            }
                            break verdict;
                        };
                        if let Verdict::Unknown {
                            reason: UnknownReason::Interrupted,
                            explored,
                            ..
                        } = &verdict
                        {
                            if let Some(path) = &opts.checkpoint {
                                let mut snap = snap_base.clone();
                                snap.completed = completed.clone();
                                snap.attempt = attempt;
                                snap.current = Some(InFlight {
                                    name: token.to_owned(),
                                    explored: *explored,
                                    fragments: Vec::new(),
                                });
                                snapshot::save(path, &Snapshot::Check(snap))?;
                                if !json {
                                    writeln!(
                                        out,
                                        "interrupted; progress checkpointed to {path} \
                                         (continue with: duop resume {path})"
                                    )?;
                                }
                            }
                            return Ok(false);
                        }
                        verdict
                    }
                };
                if opts.certify {
                    validate_certified(h, &verdict)?;
                }
                let ok = verdict.is_satisfied();
                let detail = if json {
                    serde_json::to_string(&verdict)?
                } else {
                    verdict.to_string()
                };
                (checker_label(other), ok, detail)
            }
        };
        let line = if json {
            format!("{{\"criterion\":\"{label}\",\"verdict\":{detail}}}")
        } else {
            format!("{label:<28} {detail}")
        };
        writeln!(out, "{line}")?;
        all_ok &= ok;
        completed.push(CompletedCriterion {
            name: token.to_owned(),
            ok,
            line,
        });
        if let Some(path) = &opts.checkpoint {
            let mut snap = snap_base.clone();
            snap.completed = completed.clone();
            snapshot::save(path, &Snapshot::Check(snap))?;
        }
    }
    Ok(all_ok)
}

/// `--certify`: re-runs the independent certificate validator over a
/// saturation refutation before the verdict is reported. A failure is a
/// checker bug surfaced as a hard error (exit 2), never a silent pass.
fn validate_certified(h: &History, verdict: &Verdict) -> Result<(), Box<dyn Error>> {
    if let Verdict::Violated(duop_core::Violation::Certified { certificate, .. }) = verdict {
        // The certificate speaks about the criterion-prepared history
        // (e.g. the committed projection for strict serializability).
        let prepared = certificate.criterion.prepare(h);
        duop_core::check_certificate(prepared.as_ref().unwrap_or(h), certificate)
            .map_err(|e| format!("certificate failed independent validation: {e}"))?;
    }
    Ok(())
}

/// Maps the CLI criteria to the saturable [`duop_core::PlanCriterion`]s
/// `duop certify` runs (empty = all five, in check order).
fn certify_list(
    criteria: &[CriterionName],
) -> Result<Vec<duop_core::PlanCriterion>, Box<dyn Error>> {
    use duop_core::PlanCriterion;
    if criteria.is_empty() {
        return Ok(vec![
            PlanCriterion::FinalState,
            PlanCriterion::Du,
            PlanCriterion::Rco,
            PlanCriterion::Tms2,
            PlanCriterion::Strict,
        ]);
    }
    criteria
        .iter()
        .map(|c| match c {
            CriterionName::DuOpacity => Ok(PlanCriterion::Du),
            CriterionName::FinalState => Ok(PlanCriterion::FinalState),
            CriterionName::Rco => Ok(PlanCriterion::Rco),
            CriterionName::Tms2 => Ok(PlanCriterion::Tms2),
            CriterionName::Strict => Ok(PlanCriterion::Strict),
            CriterionName::Opacity | CriterionName::Tms2Automaton => {
                Err(Box::new(crate::args::ParseError(format!(
                    "certify supports the saturable criteria only \
                     (final-state, du, rco, tms2, strict), not `{}`",
                    criterion_token(*c)
                ))) as Box<dyn Error>)
            }
        })
        .collect()
}

/// Executes `duop certify`: the saturation pass alone, per criterion.
/// Every refutation's certificate is re-validated by the independent
/// checker before being printed; a fully-determined history prints its
/// witness; everything else is `inconclusive` (not a failure — the exit
/// code only reflects certified refutations).
fn certify(
    h: &History,
    criteria: &[CriterionName],
    format: &str,
    out: &mut dyn Write,
) -> CmdResult {
    use duop_core::SaturationOutcome;
    use serde::Serialize as _;
    let json = format == "json";
    if !json {
        writeln!(out, "{}", h.stats())?;
    }
    let mut all_ok = true;
    for criterion in certify_list(criteria)? {
        let label = criterion.display_name();
        match duop_core::saturate(h, criterion) {
            SaturationOutcome::Refuted(cert) => {
                let prepared = criterion.prepare(h);
                duop_core::check_certificate(prepared.as_ref().unwrap_or(h), &cert).map_err(
                    |e| format!("{label}: certificate failed independent validation: {e}"),
                )?;
                all_ok = false;
                if json {
                    let obj = serde::Content::Map(vec![
                        ("criterion".into(), serde::Content::Str(label.into())),
                        ("status".into(), serde::Content::Str("violated".into())),
                        ("certificate".into(), cert.to_content()),
                        ("validated".into(), serde::Content::Bool(true)),
                    ]);
                    writeln!(out, "{}", serde_json::to_string(&obj)?)?;
                } else {
                    writeln!(out, "{label:<28} violated: {cert}")?;
                    writeln!(
                        out,
                        "{:<28} certificate: {} steps, cycle of {}; independently validated",
                        "",
                        cert.steps.len(),
                        cert.cycle.len()
                    )?;
                }
            }
            SaturationOutcome::Decided(w) => {
                if json {
                    let obj = serde::Content::Map(vec![
                        ("criterion".into(), serde::Content::Str(label.into())),
                        ("status".into(), serde::Content::Str("satisfied".into())),
                        ("witness".into(), w.to_content()),
                    ]);
                    writeln!(out, "{}", serde_json::to_string(&obj)?)?;
                } else {
                    writeln!(out, "{label:<28} satisfied (saturation-determined witness)")?;
                }
            }
            SaturationOutcome::Inconclusive => {
                if json {
                    writeln!(
                        out,
                        "{{\"criterion\":\"{label}\",\"status\":\"inconclusive\"}}"
                    )?;
                } else {
                    writeln!(
                        out,
                        "{label:<28} inconclusive (saturation abstains; run `duop check`)"
                    )?;
                }
            }
        }
    }
    Ok(all_ok)
}

/// Executes `duop lint --explain RULE-ID`: the registry entry's paper
/// grounding and a minimal example trace that fires the rule.
fn explain_rule(id: &str, out: &mut dyn Write) -> CmdResult {
    let known = duop_core::lint::rules();
    let Some(rule) = known.iter().find(|r| r.id == id) else {
        return Err(Box::new(crate::args::ParseError(format!(
            "unknown lint rule `{id}` (known: {})",
            known.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
        ))));
    };
    writeln!(out, "{}: {}", rule.id, rule.title)?;
    writeln!(out)?;
    writeln!(out, "{}", rule.summary)?;
    writeln!(out)?;
    writeln!(out, "Paper grounding: {}", rule.paper)?;
    writeln!(out)?;
    writeln!(out, "Minimal example (fires the rule):")?;
    for line in rule.example.lines() {
        writeln!(out, "  {line}")?;
    }
    writeln!(out)?;
    writeln!(
        out,
        "Replay: save the trace and run `duop lint <file> --rule {}`",
        rule.id
    )?;
    Ok(true)
}

/// Resolved `duop shard` options.
struct ShardOpts {
    workers: usize,
    decompose: bool,
    prelint: bool,
    ladder: bool,
    saturate: bool,
    deadline_ms: Option<u64>,
    max_states: Option<u64>,
    retry: u64,
    min_chunk: usize,
    connect: Vec<String>,
    secret_file: Option<String>,
    format: String,
}

/// Executes `duop shard`: plans every (input, criterion) pair into one
/// batch of jobs, checks them across a pool of worker processes, and
/// prints per input exactly the transcript `duop check` prints — stats
/// line, one line per criterion, same exit semantics. The
/// tms2-automaton criterion runs in the coordinator (its verdict type
/// does not cross the wire).
fn shard(
    inputs: &[String],
    criteria: &[CriterionName],
    opts: &ShardOpts,
    out: &mut dyn Write,
) -> CmdResult {
    let json = opts.format == "json";
    let list = if criteria.is_empty() {
        all_criteria()
    } else {
        criteria.to_vec()
    };
    let histories = inputs
        .iter()
        .map(|p| load(p))
        .collect::<Result<Vec<_>, _>>()?;
    let exe = std::env::current_exe()?;
    let secret = match &opts.secret_file {
        Some(path) => duop_shard::load_secret(path)?,
        None => Vec::new(),
    };
    let cfg = duop_shard::ShardConfig {
        // With remote workers in the pool, `--workers 0` means "no
        // local workers", not "all hardware threads".
        workers: if opts.workers == 0 && opts.connect.is_empty() {
            available_threads()
        } else {
            opts.workers
        },
        worker_cmd: vec![
            exe.to_string_lossy().into_owned(),
            "shard-worker".to_owned(),
        ],
        decompose: opts.decompose,
        prelint: opts.prelint,
        ladder: opts.ladder,
        saturate: opts.saturate,
        max_states: opts.max_states,
        deadline_ms: opts.deadline_ms,
        retry: opts.retry,
        min_task_txns: opts.min_chunk,
        connect: opts.connect.clone(),
        secret,
        ..duop_shard::ShardConfig::default()
    };
    // One flat job list over all (input, criterion) pairs: the whole
    // batch shares the worker pool, so a small trace's components fill
    // the idle slots while a big one is still being planned.
    let mut jobs = Vec::new();
    let mut job_index: Vec<Vec<Option<usize>>> = Vec::with_capacity(histories.len());
    for h in &histories {
        let mut per_criterion = Vec::with_capacity(list.len());
        for name in &list {
            match duop_shard::ShardCriterion::parse(criterion_token(*name)) {
                Some(criterion) => {
                    per_criterion.push(Some(jobs.len()));
                    jobs.push(duop_shard::ShardJob {
                        history: h.clone(),
                        criterion,
                    });
                }
                None => per_criterion.push(None),
            }
        }
        job_index.push(per_criterion);
    }
    let verdicts = duop_shard::run_sharded(jobs, &cfg)?;
    let mut all_ok = true;
    for (h, per_criterion) in histories.iter().zip(&job_index) {
        if !json {
            writeln!(out, "{}", h.stats())?;
        }
        for (name, job) in list.iter().zip(per_criterion) {
            let (label, ok, detail) = match job {
                None => {
                    let (ok, detail) = tms2_automaton_detail(h, json);
                    ("TMS2 (full automaton)", ok, detail)
                }
                Some(j) => {
                    let verdict = &verdicts[*j];
                    let detail = if json {
                        serde_json::to_string(verdict)?
                    } else {
                        verdict.to_string()
                    };
                    (checker_label(*name), verdict.is_satisfied(), detail)
                }
            };
            if json {
                writeln!(out, "{{\"criterion\":\"{label}\",\"verdict\":{detail}}}")?;
            } else {
                writeln!(out, "{label:<28} {detail}")?;
            }
            all_ok &= ok;
        }
    }
    Ok(all_ok)
}

/// Executes `duop resume`: loads and verifies the snapshot, then
/// continues the recorded run to its verdict.
fn resume(file: &str, out: &mut dyn Write) -> CmdResult {
    match snapshot::load(file)? {
        Snapshot::Check(cs) => resume_check(cs, file, out),
        Snapshot::Monitor(ms) => resume_monitor(ms, file, out),
        Snapshot::Session(ss) => resume_session(ss, file, out),
    }
}

/// Resumes a daemon session checkpoint offline: rebuilds the session
/// (revalidating history and witness, re-deriving any violation) and
/// reports its verdict — the same one the daemon would serve after
/// recovering the checkpoint with `duop serve --state-dir`.
fn resume_session(ss: snapshot::SessionSnapshot, file: &str, out: &mut dyn Write) -> CmdResult {
    let sid = ss.session;
    let ingested = ss.ingested;
    let mut session = duop_serve::Session::resume(ss)?;
    writeln!(
        out,
        "resumed session {sid} from {file}: {ingested} events acknowledged, \
         {} retained{}",
        session.retained(),
        if session.degraded() {
            " (degraded)"
        } else {
            ""
        }
    )?;
    let line = session.verdict_line(false);
    write!(out, "{line}")?;
    Ok(line.contains("satisfied"))
}

fn resume_check(cs: CheckSnapshot, file: &str, out: &mut dyn Write) -> CmdResult {
    let h = History::new(cs.events.clone())?;
    let criteria: Vec<CriterionName> = cs
        .criteria
        .iter()
        .map(|tok| CriterionName::parse(tok))
        .collect::<Result<_, _>>()?;
    let opts = CheckOpts {
        threads: (cs.threads as usize).max(1),
        decompose: cs.decompose,
        prelint: cs.prelint,
        ladder: cs.ladder,
        saturate: cs.saturate,
        // `--certify` is a per-invocation display/validation choice, not
        // part of the resumable run state.
        certify: false,
        deadline_ms: (cs.deadline_ms > 0).then_some(cs.deadline_ms),
        max_states: (cs.max_states > 0).then_some(cs.max_states),
        retry: cs.retry,
        escalate_milli: cs.escalate_milli,
        checkpoint: Some(file.to_owned()),
        checkpoint_every: 4096,
        format: cs.format.clone(),
    };
    let resume_state = CheckResumeState {
        completed: cs.completed,
        current: cs.current,
        attempt: cs.attempt,
    };
    check(&h, &criteria, &opts, Some(resume_state), out)
}

/// `duop fuzz` options.
struct FuzzOpts<'a> {
    engine: EngineName,
    faults: &'a str,
    seed: u64,
    iters: usize,
    threads: usize,
    objs: u32,
    format: &'a str,
    /// Write the shrunk counterexample trace here on a finding.
    trace_out: Option<&'a str>,
    /// Encoding for `trace_out`: `text` or `binary`.
    trace_format: &'a str,
}

/// Runs `iters` fault-injected workloads against the named engine and
/// checks every recorded history for du-opacity. The first violating
/// history is shrunk to a minimal core and rendered with its seed so the
/// run replays exactly; `Ok(false)` on a finding.
fn fuzz(opts: &FuzzOpts<'_>, out: &mut dyn Write) -> CmdResult {
    let &FuzzOpts {
        engine,
        faults,
        seed,
        iters,
        threads,
        objs,
        format,
        trace_out,
        trace_format,
    } = opts;
    let json = format == "json";
    use duop_stm::{engines, run_workload_faulted, Engine, FaultPlan, WorkloadConfig};
    let plan = FaultPlan::parse(faults)?;
    // A fresh engine per iteration: leaked state from a crashed run must
    // not contaminate the next seed's history.
    let make: fn(u32) -> Box<dyn Engine> = match engine {
        EngineName::Tl2 => |n| Box::new(engines::Tl2::new(n)),
        EngineName::NoRec => |n| Box::new(engines::NoRec::new(n)),
        EngineName::Dstm => |n| Box::new(engines::Dstm::new(n)),
        EngineName::TwoPl => |n| Box::new(engines::Eager2Pl::new(n)),
        EngineName::Pessimistic => |n| Box::new(engines::Pessimistic::new(n)),
        EngineName::Dirty => |n| Box::new(engines::DirtyRead::new(n)),
    };
    let checker = DuOpacity::new();
    let mut crashed = 0usize;
    let mut aborted = 0usize;
    let mut undecided = 0usize;
    for iter in 0..iters {
        let iter_seed = seed.wrapping_add(iter as u64);
        let engine_instance = make(objs);
        let cfg = WorkloadConfig {
            threads,
            seed: iter_seed,
            ..WorkloadConfig::default()
        };
        let (h, stats) =
            run_workload_faulted(engine_instance.as_ref(), &cfg, &plan.with_seed(iter_seed));
        crashed += stats.crashed;
        aborted += stats.aborted;
        let verdict = checker.check(&h);
        if verdict.is_violated() {
            let core = duop_core::minimize::localize(&h, &checker).unwrap_or_else(|| h.clone());
            let replay = format!(
                "duop fuzz --engine {} --faults {faults} --seed {iter_seed} \
                 --iters 1 --threads {threads} --objs {objs}",
                engine_label(engine)
            );
            if let Some(path) = trace_out {
                let encoded = if trace_format == "binary" {
                    binary::encode(&core)
                } else {
                    format_trace(&core).into_bytes()
                };
                std::fs::write(path, &encoded)?;
            }
            if json {
                use serde::{Content, Serialize as _};
                let finding = Content::Map(vec![
                    ("status".into(), Content::Str("finding".into())),
                    ("iteration".into(), Content::U64(iter as u64)),
                    ("seed".into(), Content::U64(iter_seed)),
                    (
                        "engine".into(),
                        Content::Str(engine_label(engine).to_owned()),
                    ),
                    ("events".into(), Content::U64(h.len() as u64)),
                    ("txns".into(), Content::U64(h.txn_count() as u64)),
                    ("crashed".into(), Content::U64(stats.crashed as u64)),
                    ("minimized_events".into(), Content::U64(core.len() as u64)),
                    (
                        "minimized_txns".into(),
                        Content::U64(core.txn_count() as u64),
                    ),
                    ("trace".into(), core.events().to_vec().to_content()),
                    ("verdict".into(), checker.check(&core).to_content()),
                    ("replay".into(), Content::Str(replay)),
                ]);
                let finding = match trace_out {
                    Some(path) => match finding {
                        Content::Map(mut m) => {
                            m.push(("trace_file".into(), Content::Str(path.to_owned())));
                            m.push(("trace_format".into(), Content::Str(trace_format.to_owned())));
                            Content::Map(m)
                        }
                        other => other,
                    },
                    None => finding,
                };
                writeln!(out, "{}", serde_json::to_string(&finding)?)?;
            } else {
                writeln!(
                    out,
                    "iteration {iter} (seed {iter_seed}): {} produced a non-du-opaque history \
                     ({} events, {} transactions, {} crashed)",
                    engine_instance.name(),
                    h.len(),
                    h.txn_count(),
                    stats.crashed
                )?;
                writeln!(
                    out,
                    "minimized to {} events / {} transactions:",
                    core.len(),
                    core.txn_count()
                )?;
                write!(out, "{}", render_lanes(&core))?;
                if let Some(v) = checker.check(&core).violation() {
                    writeln!(out, "cause: {v}")?;
                }
                writeln!(out, "replay: {replay}")?;
                if let Some(path) = trace_out {
                    writeln!(
                        out,
                        "trace written to {path} ({trace_format}); \
                         replay with: duop check {path}"
                    )?;
                }
            }
            return Ok(false);
        }
        if matches!(verdict, duop_core::Verdict::Unknown { .. }) {
            undecided += 1;
            if json {
                writeln!(
                    out,
                    "{{\"status\":\"undecided\",\"iteration\":{iter},\"seed\":{iter_seed}}}"
                )?;
            } else {
                writeln!(
                    out,
                    "iteration {iter} (seed {iter_seed}): verdict undecided: {verdict}"
                )?;
            }
        }
    }
    if json {
        writeln!(
            out,
            "{{\"status\":\"clean\",\"engine\":\"{}\",\"iters\":{iters},\"aborted\":{aborted},\
             \"crashed\":{crashed},\"undecided\":{undecided}}}",
            engine_label(engine)
        )?;
    } else {
        writeln!(
            out,
            "{iters} iterations on {}: all histories du-opaque \
             ({aborted} aborted, {crashed} crashed attempts, {undecided} undecided)",
            engine_label(engine)
        )?;
    }
    Ok(true)
}

fn engine_label(name: EngineName) -> &'static str {
    match name {
        EngineName::Tl2 => "tl2",
        EngineName::NoRec => "norec",
        EngineName::Dstm => "dstm",
        EngineName::TwoPl => "2pl",
        EngineName::Pessimistic => "pessimistic",
        EngineName::Dirty => "dirty",
    }
}

/// Runs the lint pipeline and prints diagnostics; `Ok(false)` when an
/// `Error`-severity diagnostic (after `--rule` filtering) fired.
fn lint(h: &History, format: &str, rules: &[String], out: &mut dyn Write) -> CmdResult {
    use serde::Serialize as _;
    let known = duop_core::lint::rules();
    for id in rules {
        if !known.iter().any(|r| r.id == id) {
            return Err(Box::new(crate::args::ParseError(format!(
                "unknown lint rule `{id}` (known: {})",
                known.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ))));
        }
    }
    let report = duop_core::lint::lint(h);
    let selected: Vec<&duop_core::lint::Diagnostic> = report
        .diagnostics()
        .iter()
        .filter(|d| rules.is_empty() || rules.iter().any(|id| id == d.rule))
        .collect();
    let errors = selected
        .iter()
        .filter(|d| d.severity == duop_core::lint::Severity::Error)
        .count();
    if format == "json" {
        let content = serde::Content::Map(vec![
            (
                "diagnostics".into(),
                serde::Content::Seq(selected.iter().map(|d| d.to_content()).collect()),
            ),
            ("errors".into(), serde::Content::U64(errors as u64)),
        ]);
        writeln!(out, "{}", serde_json::to_string(&content)?)?;
    } else {
        for d in &selected {
            writeln!(out, "{d}")?;
            writeln!(out, "  at {}", d.primary)?;
            for sp in &d.secondary {
                writeln!(out, "  with {sp}")?;
            }
        }
        let warnings = selected
            .iter()
            .filter(|d| d.severity == duop_core::lint::Severity::Warning)
            .count();
        let notes = selected.len() - errors - warnings;
        writeln!(
            out,
            "{} diagnostics: {errors} errors, {warnings} warnings, {notes} notes",
            selected.len()
        )?;
    }
    Ok(errors == 0)
}

fn checker_label(name: CriterionName) -> &'static str {
    match name {
        CriterionName::DuOpacity => "du-opacity",
        CriterionName::FinalState => "final-state opacity",
        CriterionName::Opacity => "opacity",
        CriterionName::Rco => "read-commit-order opacity",
        CriterionName::Tms2 => "TMS2 (informal rendering)",
        CriterionName::Tms2Automaton => "TMS2 (full automaton)",
        CriterionName::Strict => "strict serializability",
    }
}

/// `duop monitor` options.
struct MonitorOpts {
    checkpoint: Option<String>,
    checkpoint_every: u64,
    status_every: u64,
    compact_every: Option<u64>,
}

/// Prints the per-event monitor line, tracking the first violation.
fn report_event(
    i: usize,
    ev: &Event,
    verdict: &Verdict,
    ok: &mut bool,
    violated_at: &mut Option<u64>,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    if verdict.is_satisfied() {
        writeln!(out, "event {i:>3}: {ev:<14} ok")?;
    } else {
        if *ok {
            *violated_at = Some(i as u64);
        }
        *ok = false;
        writeln!(out, "event {i:>3}: {ev:<14} VIOLATION")?;
        if let Some(v) = verdict.violation() {
            writeln!(out, "            {v}")?;
        }
    }
    Ok(())
}

/// Prints the `--status-every` JSON line.
fn status_line(i: usize, mon: &OnlineChecker, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    use serde::Serialize as _;
    writeln!(
        out,
        "{{\"event\":{i},\"stats\":{}}}",
        serde_json::to_string(&mon.stats().to_content())?
    )?;
    Ok(())
}

/// Prints the end-of-run statistics summary.
fn monitor_summary(mon: &OnlineChecker, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let stats = mon.stats();
    writeln!(
        out,
        "{} events; {} witness reuses; {} full searches; {} component reuses; \
         {} lint refutations; {} retained events (peak {})",
        stats.events,
        stats.incremental_hits,
        stats.full_searches,
        stats.component_reuses,
        stats.lint_refutations,
        stats.retained_events,
        stats.peak_resident_events
    )?;
    if stats.compactions > 0 {
        writeln!(
            out,
            "{} compactions dropped {} events",
            stats.compactions, stats.compacted_events
        )?;
    }
    Ok(())
}

/// The streaming monitor: decodes events off the raw trace bytes one at a
/// time (text and binary formats never materialise the event vector) and
/// feeds them straight into the online checker, so the resident set is
/// the checker's retained history — which `--compact-every` bounds — not
/// the input. Checkpointing needs the full event list and takes the
/// eager [`monitor`] path instead.
fn monitor_stream(bytes: &[u8], opts: &MonitorOpts, out: &mut dyn Write) -> CmdResult {
    let mut reader = TraceReader::new(bytes)?;
    let mut mon = OnlineChecker::new();
    mon.set_compact_every(opts.compact_every.map(|n| n as usize));
    let mut ok = true;
    let mut violated_at = None;
    let mut i = 0usize;
    while let Some(ev) = reader.next_event()? {
        if duop_core::snapshot::interrupt_requested() {
            writeln!(out, "interrupted after {i} events")?;
            return Ok(false);
        }
        let verdict = mon.push(ev)?;
        report_event(i, &ev, &verdict, &mut ok, &mut violated_at, out)?;
        i += 1;
        if opts.status_every > 0 && (i as u64).is_multiple_of(opts.status_every) {
            status_line(i - 1, &mon, out)?;
        }
    }
    monitor_summary(&mon, out)?;
    Ok(ok)
}

fn monitor_snapshot(
    h: &History,
    done: u64,
    violated_at: Option<u64>,
    mon: &OnlineChecker,
    opts: &MonitorOpts,
) -> MonitorSnapshot {
    MonitorSnapshot {
        events: h.events().to_vec(),
        done,
        violated_at,
        witness: mon.witness().map(WitnessSnap::from_witness),
        stats: mon.stats(),
        fragments: mon
            .export_fragments()
            .into_iter()
            .map(|(members, placements)| duop_core::snapshot::Fragment {
                members,
                placements,
            })
            .collect(),
        status_every: opts.status_every,
        checkpoint_every: opts.checkpoint_every,
    }
}

fn monitor(
    h: &History,
    opts: &MonitorOpts,
    resume_from: Option<(OnlineChecker, u64, Option<u64>)>,
    out: &mut dyn Write,
) -> CmdResult {
    let (mut mon, start, mut violated_at) = match resume_from {
        Some((mon, done, violated_at)) => (mon, done as usize, violated_at),
        None => (OnlineChecker::new(), 0, None),
    };
    let mut ok = violated_at.is_none();
    for (i, ev) in h.events().iter().enumerate().skip(start) {
        if duop_core::snapshot::interrupt_requested() {
            if let Some(path) = &opts.checkpoint {
                let snap = monitor_snapshot(h, i as u64, violated_at, &mon, opts);
                snapshot::save(path, &Snapshot::Monitor(snap))?;
                writeln!(
                    out,
                    "interrupted after {i} events; progress checkpointed to {path} \
                     (continue with: duop resume {path})"
                )?;
            } else {
                writeln!(out, "interrupted after {i} events")?;
            }
            return Ok(false);
        }
        let verdict = mon.push(*ev)?;
        report_event(i, ev, &verdict, &mut ok, &mut violated_at, out)?;
        let done = (i + 1) as u64;
        if opts.status_every > 0 && done.is_multiple_of(opts.status_every) {
            status_line(i, &mon, out)?;
        }
        if let Some(path) = &opts.checkpoint {
            if done.is_multiple_of(opts.checkpoint_every) {
                let snap = monitor_snapshot(h, done, violated_at, &mon, opts);
                snapshot::save(path, &Snapshot::Monitor(snap))?;
            }
        }
    }
    if let Some(path) = &opts.checkpoint {
        let snap = monitor_snapshot(h, h.len() as u64, violated_at, &mon, opts);
        snapshot::save(path, &Snapshot::Monitor(snap))?;
    }
    monitor_summary(&mon, out)?;
    Ok(ok)
}

fn resume_monitor(ms: MonitorSnapshot, file: &str, out: &mut dyn Write) -> CmdResult {
    let h = History::new(ms.events.clone())?;
    let done = (ms.done as usize).min(h.len());
    let prefix = h.prefix(done);
    // The snapshot records only *where* a violation was seen, never the
    // verdict itself: re-deriving it from the prefix means a tampered or
    // stale checkpoint can cost a recheck but cannot forge a verdict.
    // Violations are prefix-final (Corollary 2), so checking the whole
    // done-prefix rediscovers any recorded one.
    let violated = ms
        .violated_at
        .is_some()
        .then(|| DuOpacity::new().check(&prefix))
        .filter(|v| v.is_violated());
    let violated_at = violated.is_some().then(|| ms.violated_at.unwrap_or(0));
    let witness = ms.witness.clone().map(WitnessSnap::into_witness);
    let mut mon = OnlineChecker::resume(
        prefix,
        witness,
        violated.clone(),
        ms.stats,
        SearchConfig::default(),
    );
    mon.preload_fragments(
        ms.fragments
            .iter()
            .map(|f| (f.members.clone(), f.placements.clone()))
            .collect(),
    );
    writeln!(
        out,
        "resuming monitor at event {done} of {} from {file}",
        h.len()
    )?;
    let opts = MonitorOpts {
        checkpoint: Some(file.to_owned()),
        checkpoint_every: ms.checkpoint_every.max(1),
        status_every: ms.status_every,
        compact_every: None,
    };
    monitor(&h, &opts, Some((mon, done as u64, violated_at)), out)
}

struct ClientOpts<'a> {
    addr: &'a str,
    session: Option<u64>,
    chunk_events: u64,
    body_format: &'a str,
    budget: Option<u64>,
    format: &'a str,
}

/// One HTTP/1.1 exchange over a fresh connection (`Connection: close`),
/// returning the status code and body. Small by design: the client only
/// needs request/response, not keep-alive or chunked bodies.
fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> Result<(u16, Vec<u8>), Box<dyn Error>> {
    let (status, _, payload) = http_request_full(addr, method, path, body)?;
    Ok((status, payload))
}

/// Status code, `Retry-After` seconds (when the daemon sent one), body.
type HttpResponse = (u16, Option<u64>, Vec<u8>);

/// Like [`http_request`], additionally surfacing the `Retry-After`
/// header (seconds) so 429 handling can honor the daemon's hint.
fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> Result<HttpResponse, Box<dyn Error>> {
    use std::io::{BufRead, BufReader, Read};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some((ctype, b)) = body {
        head.push_str(&format!(
            "Content-Type: {ctype}\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((_, b)) = body {
        stream.write_all(b)?;
    }
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed HTTP status line `{}`", status_line.trim_end()))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut payload = Vec::new();
    match content_length {
        Some(n) => {
            payload.resize(n, 0);
            reader.read_exact(&mut payload)?;
        }
        None => {
            reader.read_to_end(&mut payload)?;
        }
    }
    Ok((status, retry_after, payload))
}

/// Extracts the unsigned integer value of `"field":N` from a flat JSON
/// body (the daemon's responses are all flat objects).
fn json_u64_field(body: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders one event as a trace-format line (the inverse of
/// `parse_line`, per event instead of per history so a chunk can start
/// mid-transaction).
fn event_line(ev: &Event) -> String {
    let txn = ev.txn;
    match ev.kind {
        EventKind::Inv(Op::Read(x)) => format!("{txn} read {x}"),
        EventKind::Inv(Op::Write(x, v)) => format!("{txn} write {x} {v}"),
        EventKind::Inv(Op::TryCommit) => format!("{txn} tryc"),
        EventKind::Inv(Op::TryAbort) => format!("{txn} trya"),
        EventKind::Resp(Ret::Value(v)) => format!("{txn} val {v}"),
        EventKind::Resp(Ret::Ok) => format!("{txn} ok"),
        EventKind::Resp(Ret::Committed) => format!("{txn} commit"),
        EventKind::Resp(Ret::Aborted) => format!("{txn} abort"),
    }
}

/// Posts one events body, retrying on `429 Retry-After` (the daemon
/// sheds under its retained-event ceiling or per-peer rate limit;
/// compaction, reaping, or the next window clears it) with the same
/// capped-exponential-jittered schedule the shard coordinator uses to
/// reconnect remote workers — never sooner than the daemon's
/// `Retry-After` hint.
fn post_events(
    addr: &str,
    sid: u64,
    ctype: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), Box<dyn Error>> {
    let path = format!("/v1/session/{sid}/events");
    let mut backoff = duop_shard::Backoff::new(100, 5_000);
    for _ in 0..50 {
        let (status, retry_after, resp) =
            http_request_full(addr, "POST", &path, Some((ctype, body)))?;
        if status != 429 {
            return Ok((status, resp));
        }
        let delay = match retry_after {
            Some(secs) => backoff.next_delay_at_least(secs.saturating_mul(1_000)),
            None => backoff.next_delay(),
        };
        std::thread::sleep(delay);
    }
    Err("daemon kept shedding (429) after 50 retries".into())
}

fn client(input: &str, opts: &ClientOpts<'_>, out: &mut dyn Write) -> CmdResult {
    let bytes = load_bytes(input)?;
    let mut rd = TraceReader::new(&bytes)?;
    let mut events = Vec::new();
    while let Some(ev) = rd.next_event()? {
        events.push(ev);
    }
    let sid = match opts.session {
        Some(id) => id,
        None => {
            let path = match opts.budget {
                Some(b) => format!("/v1/session?budget={b}"),
                None => "/v1/session".to_owned(),
            };
            let (status, body) = http_request(opts.addr, "POST", &path, Some(("text/plain", b"")))?;
            if status != 201 {
                return Err(format!(
                    "session create failed: HTTP {status}: {}",
                    String::from_utf8_lossy(&body).trim_end()
                )
                .into());
            }
            json_u64_field(std::str::from_utf8(&body)?, "session")
                .ok_or("malformed session-create response")?
        }
    };
    // The daemon's acknowledged-event count is the resume point: after a
    // crash/restart only the unacknowledged suffix is re-streamed.
    let (status, body) = http_request(opts.addr, "GET", &format!("/v1/session/{sid}"), None)?;
    if status != 200 {
        return Err(format!(
            "session {sid} status failed: HTTP {status}: {}",
            String::from_utf8_lossy(&body).trim_end()
        )
        .into());
    }
    let acked = json_u64_field(std::str::from_utf8(&body)?, "ingested")
        .ok_or("malformed session-status response")? as usize;
    let todo = &events[acked.min(events.len())..];
    if opts.body_format == "binary" {
        // `.duob` bodies carry a whole well-formed trace, so binary mode
        // streams the complete input in one request; resuming mid-trace
        // needs per-event framing — use text bodies for that.
        if acked > 0 {
            return Err(
                "--body-format binary cannot resume a partially-streamed session \
                 (re-run with text bodies)"
                    .into(),
            );
        }
        let (h, names) = reader::read_history_with_names(&bytes)?;
        let payload = binary::encode_with_names(&h, &names);
        let (status, body) = post_events(opts.addr, sid, "application/octet-stream", &payload)?;
        if status != 200 {
            return Err(format!(
                "ingest failed: HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            )
            .into());
        }
    } else {
        let chunk = match opts.chunk_events {
            0 => todo.len().max(1),
            n => n as usize,
        };
        for batch in todo.chunks(chunk) {
            let mut payload = String::new();
            for ev in batch {
                payload.push_str(&event_line(ev));
                payload.push('\n');
            }
            let (status, body) = post_events(opts.addr, sid, "text/plain", payload.as_bytes())?;
            if status != 200 {
                return Err(format!(
                    "ingest failed: HTTP {status}: {}",
                    String::from_utf8_lossy(&body).trim_end()
                )
                .into());
            }
        }
    }
    let path = if opts.format == "text" {
        format!("/v1/session/{sid}/verdict?format=text")
    } else {
        format!("/v1/session/{sid}/verdict")
    };
    let (status, body) = http_request(opts.addr, "GET", &path, None)?;
    if status != 200 {
        return Err(format!(
            "verdict failed: HTTP {status}: {}",
            String::from_utf8_lossy(&body).trim_end()
        )
        .into());
    }
    out.write_all(&body)?;
    Ok(std::str::from_utf8(&body)?.contains("satisfied"))
}

fn litmus(out: &mut dyn Write) -> CmdResult {
    let mark = |b: bool| if b { "sat" } else { "VIOL" };
    writeln!(
        out,
        "{:<28} {:>5} {:>7} {:>5} {:>7}",
        "litmus", "fso", "opacity", "du", "strict"
    )?;
    for entry in duop_experiments::litmus::catalogue() {
        let e = entry.expected;
        writeln!(
            out,
            "{:<28} {:>5} {:>7} {:>5} {:>7}",
            entry.name,
            mark(e.final_state),
            mark(e.opacity),
            mark(e.du_opacity),
            mark(e.strict_serializability),
        )?;
    }
    writeln!(
        out,
        "
Run `duop render`/`duop check` on any entry via `duop figures`-style traces;"
    )?;
    writeln!(out, "descriptions live in duop_experiments::litmus.")?;
    Ok(true)
}

fn figures(out: &mut dyn Write) -> CmdResult {
    for (name, h) in duop_experiments::figures::all_figures() {
        writeln!(out, "# {name}")?;
        write!(out, "{}", format_trace(&h))?;
        writeln!(out)?;
    }
    writeln!(out, "# Figure 2 (prefix with 3 readers)")?;
    write!(
        out,
        "{}",
        format_trace(&duop_experiments::figures::fig2_prefix(3))
    )?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn run_to_string(cmd: &Command) -> (bool, String) {
        let mut buf = Vec::new();
        let ok = execute(cmd, &mut buf).expect("command runs");
        (ok, String::from_utf8(buf).expect("utf8 output"))
    }

    fn temp_trace(content: &str) -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "duop-cli-test-{}-{}.txt",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const GOOD: &str =
        "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 1\nT2 tryc\nT2 commit\n";
    const BAD: &str =
        "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 9\nT2 tryc\nT2 commit\n";

    #[test]
    fn check_reports_all_criteria() {
        let path = temp_trace(GOOD);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(ok, "output:\n{output}");
        for label in [
            "final-state opacity",
            "opacity",
            "du-opacity",
            "read-commit-order opacity",
            "TMS2 (informal rendering)",
            "TMS2 (full automaton)",
            "strict serializability",
        ] {
            assert!(output.contains(label), "missing {label} in:\n{output}");
        }
    }

    #[test]
    fn check_flags_violations() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(!ok);
        assert!(output.contains("violated"), "output:\n{output}");
    }

    #[test]
    fn check_with_threads_matches_sequential() {
        // The explored-state counts inside violation messages may differ
        // between engines (workers can race to expand a state another
        // worker is about to memoize), so normalize them; everything else
        // — verdicts, witnesses, exit status — must be byte-identical.
        fn normalize(s: &str) -> String {
            let mut out = String::new();
            let mut rest = s;
            while let Some(i) = rest.find("(explored ") {
                out.push_str(&rest[..i]);
                out.push_str("(explored N states)");
                match rest[i..].find(')') {
                    Some(j) => rest = &rest[i + j + 1..],
                    None => {
                        rest = "";
                        break;
                    }
                }
            }
            out.push_str(rest);
            out
        }
        for trace in [GOOD, BAD] {
            let (seq_ok, seq) = run_to_string(&Command::Check {
                input: temp_trace(trace),
                criteria: vec![],
                threads: 1,
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            });
            let (par_ok, par) = run_to_string(&Command::Check {
                input: temp_trace(trace),
                criteria: vec![],
                threads: 4,
                decompose: true,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            });
            assert_eq!(seq_ok, par_ok);
            assert_eq!(normalize(&seq), normalize(&par));
            let (abl_ok, abl) = run_to_string(&Command::Check {
                input: temp_trace(trace),
                criteria: vec![],
                threads: 1,
                decompose: false,
                prelint: true,
                ladder: true,
                saturate: true,
                certify: false,
                deadline_ms: None,
                max_states: None,
                retry: 0,
                escalate_milli: 2000,
                checkpoint: None,
                checkpoint_every: 4096,
                format: "text".into(),
            });
            assert_eq!(seq_ok, abl_ok);
            assert_eq!(normalize(&seq), normalize(&abl));
        }
    }

    #[test]
    fn check_format_json_emits_verdicts() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "json".into(),
        });
        assert!(!ok);
        assert!(
            output.contains("\"criterion\":\"du-opacity\""),
            "output:\n{output}"
        );
        assert!(
            output.contains("\"status\":\"violated\""),
            "output:\n{output}"
        );
    }

    #[test]
    fn check_json_reports_deadline_reason() {
        // A zero deadline is already expired when the search starts, so
        // any history needing a real search comes back undecided, with
        // the provenance tag in the JSON verdict.
        let path = temp_trace(GOOD);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            // The degradation ladder would decide this unique-writes
            // history despite the expired deadline — and saturation
            // would decide it before the search even starts; this test
            // is about the deadline provenance tag.
            ladder: false,
            saturate: false,
            certify: false,
            deadline_ms: Some(0),
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "json".into(),
        });
        assert!(!ok, "undecided must not count as satisfied:\n{output}");
        assert!(
            output.contains("\"status\":\"unknown\""),
            "output:\n{output}"
        );
        assert!(
            output.contains("\"reason\":\"deadline\""),
            "output:\n{output}"
        );
    }

    #[test]
    fn check_generous_deadline_changes_nothing() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: Some(60_000),
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "json".into(),
        });
        assert!(!ok);
        assert!(
            output.contains("\"status\":\"violated\""),
            "output:\n{output}"
        );
    }

    #[test]
    fn fuzz_finds_and_shrinks_dirty_violation_deterministically() {
        let cmd = Command::Fuzz {
            engine: EngineName::Dirty,
            faults: "abort=0.05,crash=0.05,thread-crash=0.25".into(),
            seed: 0,
            iters: 200,
            threads: 1,
            objs: 4,
            format: "text".into(),
            trace_out: None,
            trace_format: "text".into(),
        };
        let (ok, output) = run_to_string(&cmd);
        assert!(!ok, "the dirty engine must produce a finding:\n{output}");
        assert!(output.contains("non-du-opaque"), "output:\n{output}");
        assert!(output.contains("minimized to"), "output:\n{output}");
        assert!(output.contains("cause:"), "output:\n{output}");
        assert!(output.contains("replay:"), "output:\n{output}");
        // Single-threaded fault injection is a pure function of the seed:
        // rerunning reproduces the identical report, shrink included.
        let (_, again) = run_to_string(&cmd);
        assert_eq!(output, again, "fuzz finding must be deterministic");
    }

    #[test]
    fn fuzz_opaque_engines_stay_clean_under_faults() {
        for engine in [
            EngineName::Tl2,
            EngineName::NoRec,
            EngineName::Dstm,
            EngineName::TwoPl,
            EngineName::Pessimistic,
        ] {
            let (ok, output) = run_to_string(&Command::Fuzz {
                engine,
                faults: "abort=0.1,crash=0.1,thread-crash=0.5".into(),
                seed: 42,
                iters: 60,
                threads: 1,
                objs: 3,
                format: "text".into(),
                trace_out: None,
                trace_format: "text".into(),
            });
            assert!(ok, "{engine:?} produced a finding:\n{output}");
            assert!(output.contains("all histories du-opaque"), "{output}");
            assert!(output.contains("0 undecided"), "{output}");
        }
    }

    #[test]
    fn fuzz_rejects_bad_fault_spec() {
        let mut buf = Vec::new();
        assert!(execute(
            &Command::Fuzz {
                engine: EngineName::Tl2,
                faults: "explode=1".into(),
                seed: 0,
                iters: 1,
                threads: 1,
                objs: 2,
                format: "text".into(),
                trace_out: None,
                trace_format: "text".into(),
            },
            &mut buf
        )
        .is_err());
    }

    #[test]
    fn lint_reports_clean_trace() {
        let path = temp_trace(GOOD);
        let (ok, output) = run_to_string(&Command::Lint {
            input: path,
            format: "text".into(),
            rules: vec![],
            explain: None,
        });
        assert!(ok);
        assert!(output.contains("0 errors"), "output:\n{output}");
    }

    #[test]
    fn lint_names_dirty_read_events_on_figure2() {
        // The acceptance shape: Figure 2's trace must get DU002 with both
        // event spans, in text and JSON.
        let fig2 = duop_history::trace::format_trace(&duop_experiments::figures::fig2_prefix(1));
        let path = temp_trace(&fig2);
        let (ok, text) = run_to_string(&Command::Lint {
            input: path.clone(),
            format: "text".into(),
            rules: vec![],
            explain: None,
        });
        // Figure 2 is du-opaque: the dirty read is Warning-severity, so
        // the exit status stays success.
        assert!(ok, "output:\n{text}");
        assert!(text.contains("warning[DU002]"), "output:\n{text}");
        assert!(text.contains("at event "), "output:\n{text}");
        assert!(text.contains("with event "), "output:\n{text}");
        let (_, json) = run_to_string(&Command::Lint {
            input: path,
            format: "json".into(),
            rules: vec![],
            explain: None,
        });
        assert!(json.contains("\"rule\":\"DU002\""), "output:\n{json}");
        assert!(json.contains("\"primary\":{\"event\":"), "output:\n{json}");
        assert!(
            json.contains("\"secondary\":[{\"event\":"),
            "output:\n{json}"
        );
    }

    #[test]
    fn lint_flags_errors_and_filters_rules() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Lint {
            input: path.clone(),
            format: "text".into(),
            rules: vec![],
            explain: None,
        });
        assert!(!ok);
        assert!(output.contains("error[RF003]"), "output:\n{output}");
        // Filtering to an unrelated rule hides the error: exit ok.
        let (ok, output) = run_to_string(&Command::Lint {
            input: path.clone(),
            format: "text".into(),
            rules: vec!["UW007".into()],
            explain: None,
        });
        assert!(ok, "output:\n{output}");
        // Unknown rule ids are a usage error.
        let mut buf = Vec::new();
        assert!(execute(
            &Command::Lint {
                input: path,
                format: "text".into(),
                rules: vec!["NOPE".into()],
                explain: None,
            },
            &mut buf
        )
        .is_err());
    }

    /// Real-time vs anti-dependency two-cycle: T1 commits fully before
    /// T2, which still reads the initial value — saturation refutes
    /// every saturable criterion with a certificate.
    const CYCLE: &str =
        "T1 write X0 1\nT1 ok\nT1 tryc\nT1 commit\nT2 read X0\nT2 val 0\nT2 tryc\nT2 commit\n";

    #[test]
    fn certify_refutes_with_validated_certificate() {
        let path = temp_trace(CYCLE);
        let (ok, output) = run_to_string(&Command::Certify {
            input: path.clone(),
            criteria: vec![],
            format: "text".into(),
        });
        assert!(!ok);
        assert!(output.contains("violated"), "output:\n{output}");
        assert!(
            output.contains("independently validated"),
            "output:\n{output}"
        );
        let (ok, json) = run_to_string(&Command::Certify {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            format: "json".into(),
        });
        assert!(!ok);
        assert!(json.contains("\"certificate\""), "output:\n{json}");
        assert!(json.contains("\"validated\":true"), "output:\n{json}");
        assert!(json.contains("\"cycle\""), "output:\n{json}");
    }

    #[test]
    fn certify_decides_satisfied_history() {
        let path = temp_trace(GOOD);
        let (ok, output) = run_to_string(&Command::Certify {
            input: path,
            criteria: vec![],
            format: "text".into(),
        });
        assert!(ok, "output:\n{output}");
        assert!(
            output.contains("saturation-determined witness"),
            "output:\n{output}"
        );
    }

    #[test]
    fn certify_rejects_unsupported_criterion() {
        let path = temp_trace(GOOD);
        let mut buf = Vec::new();
        let err = execute(
            &Command::Certify {
                input: path,
                criteria: vec![crate::args::CriterionName::Opacity],
                format: "text".into(),
            },
            &mut buf,
        )
        .expect_err("opacity is not saturable");
        assert!(err.to_string().contains("saturable"), "{err}");
    }

    #[test]
    fn check_certify_validates_and_reports_certified_refutation() {
        // Prelint off so the refutation comes from saturation (with its
        // certificate) rather than the lint prefilter; `--certify`
        // re-validates it in-line.
        let path = temp_trace(CYCLE);
        let (ok, output) = run_to_string(&Command::Check {
            input: path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: false,
            ladder: true,
            saturate: true,
            certify: true,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(!ok);
        assert!(
            output.contains("refuted by saturation"),
            "output:\n{output}"
        );
    }

    #[test]
    fn check_no_saturate_reaches_the_same_verdict() {
        for (trace, expect_ok) in [(GOOD, true), (CYCLE, false), (BAD, false)] {
            for saturate in [true, false] {
                let (ok, output) = run_to_string(&Command::Check {
                    input: temp_trace(trace),
                    criteria: vec![crate::args::CriterionName::DuOpacity],
                    threads: 1,
                    decompose: true,
                    prelint: true,
                    ladder: true,
                    saturate,
                    certify: false,
                    deadline_ms: None,
                    max_states: None,
                    retry: 0,
                    escalate_milli: 2000,
                    checkpoint: None,
                    checkpoint_every: 4096,
                    format: "text".into(),
                });
                assert_eq!(ok, expect_ok, "saturate={saturate}, output:\n{output}");
            }
        }
    }

    #[test]
    fn lint_explain_prints_grounding_and_example() {
        let (ok, output) = run_to_string(&Command::Lint {
            input: "-".into(),
            format: "text".into(),
            rules: vec![],
            explain: Some("DU002".into()),
        });
        assert!(ok);
        assert!(output.contains("DU002: deferred-update axiom"), "{output}");
        assert!(output.contains("Paper grounding:"), "{output}");
        assert!(output.contains("Minimal example"), "{output}");
        assert!(output.contains("T2 read X0"), "{output}");
        // Unknown rule ids are a usage error listing the registry.
        let mut buf = Vec::new();
        let err = execute(
            &Command::Lint {
                input: "-".into(),
                format: "text".into(),
                rules: vec![],
                explain: Some("NOPE".into()),
            },
            &mut buf,
        )
        .expect_err("unknown rule");
        assert!(err.to_string().contains("known:"), "{err}");
    }

    #[test]
    fn lint_explain_examples_fire_their_rule_via_cli() {
        // Every registry example round-trips through the real lint
        // command and reports its own rule id.
        for rule in duop_core::lint::rules() {
            let path = temp_trace(rule.example);
            let (_, output) = run_to_string(&Command::Lint {
                input: path,
                format: "json".into(),
                rules: vec![rule.id.to_owned()],
                explain: None,
            });
            assert!(
                output.contains(&format!("\"rule\":\"{}\"", rule.id)),
                "{}: output:\n{output}",
                rule.id
            );
        }
    }

    #[test]
    fn monitor_counts_lint_refutations() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Monitor {
            input: path,
            checkpoint: None,
            checkpoint_every: 32,
            status_every: 0,
            compact_every: None,
        });
        assert!(!ok);
        assert!(output.contains("lint refutations"), "output:\n{output}");
    }

    #[test]
    fn render_draws_lanes() {
        let path = temp_trace(GOOD);
        let (_, output) = run_to_string(&Command::Render { input: path });
        assert!(output.contains("T1 |"));
        assert!(output.contains("W(X0,1)"));
    }

    #[test]
    fn convert_roundtrips_via_json() {
        let path = temp_trace(GOOD);
        let (_, json) = run_to_string(&Command::Convert {
            input: path,
            output: None,
            to: "json".into(),
        });
        let jpath = temp_trace(&json);
        let (_, text) = run_to_string(&Command::Convert {
            input: jpath,
            output: None,
            to: "text".into(),
        });
        assert_eq!(text, GOOD);
    }

    #[test]
    fn convert_roundtrips_via_binary_file() {
        let path = temp_trace(GOOD);
        let bpath = format!("{path}.duob");
        let (ok, _) = run_to_string(&Command::Convert {
            input: path,
            output: Some(bpath.clone()),
            to: "binary".into(),
        });
        assert!(ok);
        assert!(std::fs::read(&bpath).unwrap().starts_with(b"DUOB"));
        let (_, text) = run_to_string(&Command::Convert {
            input: bpath.clone(),
            output: None,
            to: "text".into(),
        });
        assert_eq!(text, GOOD);
        // The binary file is accepted transparently by check.
        let (ok, output) = run_to_string(&Command::Check {
            input: bpath,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(ok, "output:\n{output}");
    }

    #[test]
    fn convert_roundtrips_via_dbcop() {
        // dbcop export is lossy (one session per transaction) but the
        // per-transaction reads/writes and commit status survive, so a
        // sequential history round-trips to the same verdict.
        let path = temp_trace(GOOD);
        let (_, dbc) = run_to_string(&Command::Convert {
            input: path,
            output: None,
            to: "dbcop".into(),
        });
        assert!(dbc.trim_start().starts_with('{'), "output:\n{dbc}");
        let dpath = temp_trace(&dbc);
        let (ok, _) = run_to_string(&Command::Check {
            input: dpath,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(ok);
    }

    #[test]
    fn monitor_streams_binary_and_compacts() {
        let path = temp_trace(GOOD);
        let bpath = format!("{path}.duob");
        run_to_string(&Command::Convert {
            input: path.clone(),
            output: Some(bpath.clone()),
            to: "binary".into(),
        });
        // Binary input, streamed, with aggressive compaction: the same
        // per-event verdicts as the text monitor, plus a compaction line.
        let (ok, output) = run_to_string(&Command::Monitor {
            input: bpath,
            checkpoint: None,
            checkpoint_every: 32,
            status_every: 0,
            compact_every: Some(1),
        });
        assert!(ok, "output:\n{output}");
        assert!(output.contains("compactions dropped"), "output:\n{output}");
        let (plain_ok, plain) = run_to_string(&Command::Monitor {
            input: path,
            checkpoint: None,
            checkpoint_every: 32,
            status_every: 0,
            compact_every: None,
        });
        assert_eq!(ok, plain_ok);
        // Per-event verdict lines agree between the two runs.
        let verdicts = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("event"))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&output), verdicts(&plain));
    }

    #[test]
    fn fuzz_trace_out_replays_from_binary() {
        let out_path = std::env::temp_dir()
            .join(format!("duop-fuzz-core-{}.duob", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let (ok, output) = run_to_string(&Command::Fuzz {
            engine: EngineName::Dirty,
            faults: "abort=0.05,crash=0.05,thread-crash=0.25".into(),
            seed: 0,
            iters: 200,
            threads: 1,
            objs: 4,
            format: "text".into(),
            trace_out: Some(out_path.clone()),
            trace_format: "binary".into(),
        });
        assert!(!ok, "the dirty engine must produce a finding:\n{output}");
        assert!(
            output.contains(&format!("duop check {out_path}")),
            "output:\n{output}"
        );
        let bytes = std::fs::read(&out_path).unwrap();
        assert!(bytes.starts_with(b"DUOB"));
        // The written counterexample replays to a violation through the
        // ordinary check pipeline.
        let (replayed_ok, replay_out) = run_to_string(&Command::Check {
            input: out_path,
            criteria: vec![crate::args::CriterionName::DuOpacity],
            threads: 1,
            decompose: true,
            prelint: true,
            ladder: true,
            saturate: true,
            certify: false,
            deadline_ms: None,
            max_states: None,
            retry: 0,
            escalate_milli: 2000,
            checkpoint: None,
            checkpoint_every: 4096,
            format: "text".into(),
        });
        assert!(!replayed_ok, "output:\n{replay_out}");
        assert!(replay_out.contains("violated"), "output:\n{replay_out}");
    }

    #[test]
    fn monitor_pinpoints_the_event() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Monitor {
            input: path,
            checkpoint: None,
            checkpoint_every: 32,
            status_every: 0,
            compact_every: None,
        });
        assert!(!ok);
        assert!(output.contains("VIOLATION"), "output:\n{output}");
    }

    #[test]
    fn generate_emits_parseable_traces() {
        let (_, output) = run_to_string(&Command::Generate {
            mode: crate::args::GenModeName::Simulated,
            txns: 6,
            objs: 3,
            seed: 4,
            unique: true,
            concurrency: 3,
        });
        let h = duop_history::trace::parse_trace(&output).expect("generated trace parses");
        assert!(h.txn_count() > 0);
    }

    #[test]
    fn figures_lists_all() {
        let (_, output) = run_to_string(&Command::Figures);
        for name in [
            "Figure 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 2",
        ] {
            assert!(output.contains(name), "missing {name}");
        }
    }

    #[test]
    fn graph_emits_dot() {
        let path = temp_trace(GOOD);
        let (_, output) = run_to_string(&Command::Graph { input: path });
        assert!(output.starts_with("digraph history"));
        assert!(output.contains("T1 -> T2"));
    }

    #[test]
    fn localize_shrinks_violations() {
        let path = temp_trace(BAD);
        let (ok, output) = run_to_string(&Command::Localize { input: path });
        assert!(!ok);
        assert!(output.contains("minimized"), "output:\n{output}");
        assert!(output.contains("cause:"), "output:\n{output}");
    }

    #[test]
    fn localize_reports_satisfied() {
        let path = temp_trace(GOOD);
        let (ok, output) = run_to_string(&Command::Localize { input: path });
        assert!(ok);
        assert!(output.contains("nothing to localize"));
    }

    #[test]
    fn litmus_lists_catalogue() {
        let (ok, output) = run_to_string(&Command::Litmus);
        assert!(ok);
        assert!(output.contains("zombie-doomed-reader"));
        assert!(output.contains("aba-value-coincidence"));
    }

    #[test]
    fn help_prints_usage() {
        let (_, output) = run_to_string(&Command::Help);
        assert!(output.contains("USAGE"));
    }
}
