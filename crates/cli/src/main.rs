//! The `duop` binary: see [`duop_cli`] and `duop help`.

/// Installs SIGINT/SIGTERM handlers that request a cooperative stop via
/// [`duop_core::snapshot::request_interrupt`] instead of killing the
/// process mid-line: interruptible searches notice the flag, flush a
/// final checkpoint when `--checkpoint` is set, and exit cleanly.
///
/// The handler body is a single atomic store, which is async-signal-safe.
/// `libc`'s `signal` is declared directly to keep the workspace
/// dependency-free; this is the only unsafe code in the tool.
#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        duop_core::snapshot::request_interrupt();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    install_signal_handlers();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let code = duop_cli::run(&argv, &mut stdout);
    std::process::exit(code);
}
