//! The `duop` binary: see [`duop_cli`] and `duop help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let code = duop_cli::run(&argv, &mut stdout);
    std::process::exit(code);
}
