//! Implementation of the `duop` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; everything else is library
//! code so the argument parser and the commands are unit-testable.
//!
//! ```text
//! duop check <trace> [--criterion NAME]...   check a history
//! duop render <trace>                        draw per-transaction lanes
//! duop monitor <trace>                       per-event du-opacity monitoring
//! duop generate [options]                    emit a random trace
//! duop convert <trace> [<out>] --format text|json|binary|dbcop
//!                                            transcode between formats
//! duop figures                               print the paper's figures
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Runs the tool on the given arguments (excluding the program name),
/// writing to `out`. Returns the process exit code.
///
/// # Examples
///
/// ```
/// let mut out = Vec::new();
/// let code = duop_cli::run(&["figures".into()], &mut out);
/// assert_eq!(code, 0);
/// ```
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    match args::Command::parse(argv) {
        Ok(cmd) => match commands::execute(&cmd, out) {
            Ok(all_satisfied) => {
                if all_satisfied {
                    0
                } else {
                    1
                }
            }
            Err(err) => {
                let _ = writeln!(out, "error: {err}");
                2
            }
        },
        Err(err) => {
            let _ = writeln!(out, "error: {err}\n");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
