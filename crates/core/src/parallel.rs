//! Parallel checking engine: component-parallel and subtree-parallel
//! serialization search plus a batch fan-out over independent histories.
//! `std::thread` only — the workspace builds offline with no extra
//! dependencies.
//!
//! # Component parallelism
//!
//! When the planner ([`crate::plan`]) finds several conflict-graph
//! components, [`par_search_components`] searches each independently on
//! the worker pool — components share no objects and no order edges, so
//! no coordination (shared memo, cancellation) is needed at all, and each
//! per-component search is exactly the scoped sequential search the
//! planned sequential engine runs, producing the identical fragment. The
//! composed witness is therefore identical to the sequential one. The only
//! divergence is budget accounting: each component is charged against a
//! fresh `max_states` budget rather than the sequential cumulative count,
//! which can only turn `Unknown` into a definite (still correct) verdict.
//!
//! # Subtree parallelism
//!
//! [`par_search_spec`] splits the placement tree at the top levels into
//! prefix tasks and runs the ordinary sequential [`Searcher`] on each
//! subtree, with three pieces of shared state:
//!
//! * a **sharded memo** of failed canonical states (mutex-striped; keys
//!   are path-independent, and a state is inserted only after its subtree
//!   was *fully* exhausted, so a hit in any worker is sound for all);
//! * a **global state budget** (`AtomicU64`), so `max_states` bounds the
//!   whole search, not each worker;
//! * a **winner word** for cooperative cancellation: the lowest task index
//!   that found a witness. Only tasks with a *higher* index are cancelled,
//!   which makes the reduction deterministic.
//!
//! Tasks are enumerated in exact sequential-DFS order (the enumerator
//! reuses the searcher's own child ordering, legality and dead-end
//! pruning), so the lowest-indexed task containing a witness is the one
//! sequential DFS would reach first, and within a task DFS finds its
//! DFS-first witness. Memo pruning never hides a witness (memoized states
//! are provably witness-free), so the reported witness is identical to the
//! sequential engine's, and verdicts agree except for which states a
//! tripped budget happened to visit (`Unknown` is "anytime": a witness
//! found by any worker wins over a concurrent budget trip).
//!
//! # Inter-history parallelism
//!
//! [`par_check_batch`] / [`par_map`] spread independent checks over a
//! worker pool with order-preserving collection; used by the experiment
//! runner and the CLI's batch mode.

use crate::fxhash::FxBuildHasher;
use crate::plan::Plan;
use crate::search::{
    seq_search_spec, witness_from_path, Outcome, Query, SearchConfig, SearchStats, Searcher,
    UndoLog,
};
use crate::spec::Spec;
use crate::{Criterion, UnknownReason, Verdict, Violation};
use duop_history::History;
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Test-only injection point: a worker panics when it claims this subtree
/// task index (`u64::MAX` = disarmed; the hook disarms itself on firing).
/// Exercises the panic-isolation path without a purpose-built criterion.
#[doc(hidden)]
pub static PANIC_ON_TASK: AtomicU64 = AtomicU64::new(u64::MAX);

/// Mutex stripes in the shared memo. Power of two; 64 stripes keep the
/// probability of two workers colliding on a stripe low at ≤ 16 workers.
const MEMO_SHARDS: usize = 64;

/// Target number of subtree tasks per worker. More tasks than workers
/// smooths out skewed subtree sizes (work stealing via the shared claim
/// counter).
const TASKS_PER_THREAD: usize = 4;

/// Maximum split depth: the prefix enumeration itself is sequential and
/// exponential in depth, so it must stay shallow.
const MAX_SPLIT_DEPTH: usize = 8;

/// Failed-state memo striped over [`MEMO_SHARDS`] mutexes, keyed by the
/// same 128-bit compacted state key as the sequential memo.
struct ShardedMemo {
    shards: Vec<Mutex<HashSet<u128, FxBuildHasher>>>,
}

impl ShardedMemo {
    fn new() -> Self {
        ShardedMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashSet::default()))
                .collect(),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashSet<u128, FxBuildHasher>> {
        // The key is already a high-quality hash; fold the halves for the
        // stripe index.
        let fold = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(fold as usize) & (MEMO_SHARDS - 1)]
    }

    fn contains(&self, key: u128) -> bool {
        self.shard(key).lock().unwrap().contains(&key)
    }

    fn insert(&self, key: u128) {
        self.shard(key).lock().unwrap().insert(key);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

/// State shared by all workers of one parallel search.
pub(crate) struct SharedSearch {
    memo: Option<ShardedMemo>,
    /// Approximate shared-memo entry count, for the memo cap (duplicate
    /// inserts may double-count; the cap is advisory, not exact).
    memo_entries: AtomicUsize,
    /// Global count of expanded states, for the shared budget.
    pub(crate) explored: AtomicU64,
    /// Lowest task index that found a witness (`u64::MAX` = none yet).
    pub(crate) winner: AtomicU64,
    /// Set when a worker's subtree panicked (the panic is contained);
    /// peers poll it and cancel, so the search never hangs on a dead
    /// worker's unexplored subtree.
    pub(crate) panicked: AtomicBool,
    /// Global state budget (copied from [`SearchConfig::max_states`]).
    pub(crate) max_states: Option<u64>,
    /// Global memo-entry cap ([`SearchConfig::max_memo_entries`]).
    max_memo_entries: Option<usize>,
}

impl SharedSearch {
    fn new(cfg: &SearchConfig) -> Self {
        SharedSearch {
            memo: cfg.memo.then(ShardedMemo::new),
            memo_entries: AtomicUsize::new(0),
            explored: AtomicU64::new(0),
            winner: AtomicU64::new(u64::MAX),
            panicked: AtomicBool::new(false),
            max_states: cfg.max_states,
            max_memo_entries: cfg.max_memo_entries,
        }
    }

    pub(crate) fn memo_contains(&self, key: u128) -> bool {
        self.memo.as_ref().is_some_and(|m| m.contains(key))
    }

    pub(crate) fn memo_insert(&self, key: u128) {
        if let Some(m) = &self.memo {
            if self
                .max_memo_entries
                .is_some_and(|cap| self.memo_entries.load(Ordering::Relaxed) >= cap)
            {
                return;
            }
            m.insert(key);
            self.memo_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn memo_len(&self) -> usize {
        self.memo.as_ref().map_or(0, ShardedMemo::len)
    }
}

/// Collects every placement prefix of length `remaining` (in DFS order)
/// into `out`, applying the same legality and dead-end pruning as the
/// search proper. Prefixes are strictly shorter than the transaction
/// count, so none is a complete serialization. `scratch` recycles one
/// child buffer per recursion depth.
fn enumerate_prefixes(
    s: &mut Searcher<'_>,
    remaining: usize,
    scratch: &mut Vec<Vec<(usize, bool)>>,
    out: &mut Vec<Vec<(usize, bool)>>,
    explored: &mut u64,
    dead_ends: &mut u64,
) {
    *explored += 1;
    let mut children = scratch.pop().unwrap_or_default();
    s.children_into(&mut children);
    for &(i, committed) in &children {
        let undo = s.place(i, committed);
        if s.dead_end() {
            *dead_ends += 1;
            s.unplace(i, undo);
            continue;
        }
        if remaining == 1 {
            out.push(s.path.clone());
        } else {
            enumerate_prefixes(s, remaining - 1, scratch, out, explored, dead_ends);
        }
        s.unplace(i, undo);
    }
    scratch.push(children);
}

fn unwind_prefix(s: &mut Searcher<'_>, prefix: &[(usize, bool)], undos: Vec<UndoLog>) {
    for (&(i, _), undo) in prefix.iter().zip(undos).rev() {
        s.unplace(i, undo);
    }
}

/// Per-component outcome of the component-parallel engine.
enum CompOutcome {
    Found(Vec<(usize, bool)>),
    Exhausted,
    Budget(UnknownReason),
    Violated(Violation),
}

/// Fans the planned search out over conflict-graph components: each
/// component runs the same scoped sequential search the planned sequential
/// engine would, so fragments (and the composed witness) are identical to
/// the sequential result. The verdict is reduced in component order,
/// matching the sequential engine's first-failure semantics.
pub(crate) fn par_search_components(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    plan: &Plan,
) -> (Verdict, SearchStats) {
    let threads = cfg.effective_threads();
    let seq_cfg = SearchConfig {
        threads: None,
        ..cfg.clone()
    };

    let results = par_map(&plan.components, threads, |comp| {
        let mut s = match Searcher::new(spec, &seq_cfg, query, &plan.forced) {
            Ok(s) => s,
            Err(v) => return (CompOutcome::Violated(v), SearchStats::default()),
        };
        s.restrict(comp);
        let outcome = match s.dfs() {
            Outcome::Found => CompOutcome::Found(s.path.clone()),
            Outcome::Exhausted => CompOutcome::Exhausted,
            Outcome::Budget => CompOutcome::Budget(s.unknown_reason()),
            Outcome::Cancelled => unreachable!("component workers share no cancellation state"),
        };
        (outcome, s.stats())
    });

    let mut stats = SearchStats::default();
    let mut path: Vec<(usize, bool)> = Vec::new();
    let mut failure: Option<CompOutcome> = None;
    let mut decided: u64 = 0;
    for (outcome, comp_stats) in results {
        stats.absorb(&comp_stats);
        match outcome {
            CompOutcome::Found(frag) => {
                decided += 1;
                path.extend(frag);
            }
            other => {
                if failure.is_none() {
                    failure = Some(other);
                }
            }
        }
    }

    let verdict = match failure {
        None => Verdict::Satisfied(witness_from_path(spec, &path)),
        Some(CompOutcome::Exhausted) => Verdict::Violated(Violation::NoSerialization {
            criterion: query.name.to_owned(),
            explored: stats.explored,
        }),
        Some(CompOutcome::Budget(reason)) => Verdict::Unknown {
            explored: stats.explored,
            reason,
            partial: Some(crate::PartialProgress::components(
                decided,
                plan.components.len() as u64,
            )),
        },
        Some(CompOutcome::Violated(v)) => Verdict::Violated(v),
        Some(CompOutcome::Found(_)) => unreachable!("Found is never recorded as a failure"),
    };
    (verdict, stats)
}

/// Multi-threaded subtree search over a prebuilt spec; `forced` carries
/// the planner's forced edges (empty for the monolithic ablation). The
/// caller has already run the precedence/candidate prechecks.
pub(crate) fn par_search_spec(
    spec: &Spec,
    query: &Query,
    cfg: &SearchConfig,
    forced: &[(usize, usize)],
) -> (Verdict, SearchStats) {
    let threads = cfg.effective_threads();
    let seq_cfg = SearchConfig {
        threads: None,
        ..cfg.clone()
    };
    debug_assert!(threads > 1);

    // Validates the precedence constraints (cycle check) and doubles as
    // the task enumerator.
    let mut enumerator = match Searcher::new(spec, &seq_cfg, query, forced) {
        Ok(s) => s,
        Err(v) => return (Verdict::Violated(v), SearchStats::default()),
    };

    let n = spec.txns.len();
    let max_depth = n.saturating_sub(1).min(MAX_SPLIT_DEPTH);
    if max_depth == 0 {
        // Zero or one transaction: there is no tree to split.
        return seq_search_spec(spec, query, &seq_cfg, forced);
    }
    let target = threads * TASKS_PER_THREAD;

    let mut tasks: Vec<Vec<(usize, bool)>> = Vec::new();
    let mut scratch: Vec<Vec<(usize, bool)>> = Vec::new();
    let mut enum_explored = 0u64;
    let mut enum_dead_ends = 0u64;
    let mut depth = 1;
    while depth <= max_depth {
        tasks.clear();
        enum_explored = 0;
        enum_dead_ends = 0;
        enumerate_prefixes(
            &mut enumerator,
            depth,
            &mut scratch,
            &mut tasks,
            &mut enum_explored,
            &mut enum_dead_ends,
        );
        if tasks.len() >= target || tasks.is_empty() {
            break;
        }
        depth += 1;
    }

    if tasks.is_empty() {
        // Every prefix dead-ends before the split depth: the whole tree is
        // exhausted and there is no witness.
        let stats = SearchStats {
            explored: enum_explored,
            dead_ends: enum_dead_ends,
            ..SearchStats::default()
        };
        let verdict = Verdict::Violated(Violation::NoSerialization {
            criterion: query.name.to_owned(),
            explored: enum_explored,
        });
        return (verdict, stats);
    }
    if tasks.len() == 1 || n <= depth {
        // Nothing to parallelize (tiny history or a single viable
        // subtree); the sequential engine is strictly cheaper.
        return seq_search_spec(spec, query, &seq_cfg, forced);
    }

    let shared = SharedSearch::new(cfg);
    let next = AtomicUsize::new(0);
    let budget_reason: Mutex<Option<UnknownReason>> = Mutex::new(None);
    // Winning candidates keyed by task index; the reduction takes the
    // lowest, which is the witness sequential DFS finds first.
    let found: Mutex<BTreeMap<u64, Vec<(usize, bool)>>> = Mutex::new(BTreeMap::new());
    let totals: Mutex<SearchStats> = Mutex::new(SearchStats::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut s = Searcher::new(spec, &seq_cfg, query, forced)
                    .expect("constraints validated before workers started");
                s.attach_shared(&shared);
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() || shared.panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    if shared.winner.load(Ordering::Relaxed) < t as u64 {
                        // Claims are monotone, so every remaining task is
                        // also higher-indexed than the winner.
                        break;
                    }
                    s.task_index = t as u64;
                    let prefix = &tasks[t];
                    // Contain a panicking subtree (a criterion bug, or the
                    // test hook): the searcher's placement state is
                    // unusable afterwards, so the worker retires and peers
                    // cancel via `shared.panicked`. `true` = keep looping.
                    let task = catch_unwind(AssertUnwindSafe(|| {
                        if PANIC_ON_TASK
                            .compare_exchange(
                                t as u64,
                                u64::MAX,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            panic!("injected worker panic (test hook)");
                        }
                        let mut undos = Vec::with_capacity(prefix.len());
                        for &(i, committed) in prefix {
                            undos.push(s.place(i, committed));
                        }
                        match s.dfs() {
                            Outcome::Found => {
                                shared.winner.fetch_min(t as u64, Ordering::Relaxed);
                                found.lock().unwrap().insert(t as u64, s.path.clone());
                                // `dfs` does not unwind on Found; this
                                // searcher's state is spent, and every
                                // unclaimed task is higher-indexed anyway.
                                false
                            }
                            Outcome::Budget => {
                                let reason = s.unknown_reason();
                                let mut slot = budget_reason.lock().unwrap();
                                slot.get_or_insert(reason);
                                drop(slot);
                                unwind_prefix(&mut s, prefix, undos);
                                false
                            }
                            Outcome::Exhausted | Outcome::Cancelled => {
                                unwind_prefix(&mut s, prefix, undos);
                                true
                            }
                        }
                    }));
                    match task {
                        Ok(true) => {}
                        Ok(false) => break,
                        Err(_) => {
                            shared.panicked.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                let local = SearchStats {
                    explored: s.explored,
                    memo_hits: s.memo_hits,
                    dead_ends: s.dead_ends,
                    ..SearchStats::default()
                };
                totals.lock().unwrap().absorb(&local);
            });
        }
    });

    let mut stats = totals.into_inner().unwrap();
    stats.explored += enum_explored;
    stats.dead_ends += enum_dead_ends;
    stats.peak_memo_entries = shared.memo_len() as u64;
    stats.subtree_tasks = tasks.len() as u64;

    // Reduction precedence: a witness is a definite answer regardless of
    // anything else; otherwise a panicked subtree (unexplored, so "no
    // witness elsewhere" proves nothing) forces Unknown ahead of a budget
    // trip; only a fully explored, witness-free tree is a violation.
    let found = found.into_inner().unwrap();
    let verdict = if let Some((_, path)) = found.into_iter().next() {
        Verdict::Satisfied(witness_from_path(spec, &path))
    } else if shared.panicked.load(Ordering::Relaxed) {
        Verdict::Unknown {
            explored: stats.explored,
            reason: UnknownReason::WorkerPanic,
            partial: Some(crate::PartialProgress::components(0, 1)),
        }
    } else if let Some(reason) = budget_reason.into_inner().unwrap() {
        Verdict::Unknown {
            explored: stats.explored,
            reason,
            partial: Some(crate::PartialProgress::components(0, 1)),
        }
    } else {
        Verdict::Violated(Violation::NoSerialization {
            criterion: query.name.to_owned(),
            explored: stats.explored,
        })
    };
    (verdict, stats)
}

/// Number of hardware threads, for `--threads 0` / default sizing.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` workers, returning
/// results in input order. Items are claimed dynamically, so uneven item
/// costs balance across the pool. `threads <= 1` runs inline.
///
/// A panicking item cancels the remaining items (peers finish their
/// current item and stop claiming) and the first panic payload is
/// re-raised on the caller's thread once the pool has drained — one
/// deterministic panic instead of a scope-wide abort or a hang.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().unwrap() = Some(r),
                    Err(payload) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let mut slot = panic_payload.lock().unwrap();
                        slot.get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic_payload.into_inner().unwrap() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every slot is filled by the worker that claimed it")
        })
        .collect()
}

/// Checks a batch of independent histories against one criterion on
/// `threads` workers, preserving input order. This is the fan-out used by
/// the experiment harness; each individual check runs the (sequential or
/// parallel) engine configured in the criterion itself.
pub fn par_check_batch<C>(criterion: &C, histories: &[History], threads: usize) -> Vec<Verdict>
where
    C: Criterion + Sync + ?Sized,
{
    par_map(histories, threads, |h| criterion.check(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DuOpacity;
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    fn t(k: u32) -> TxnId {
        TxnId::new(k)
    }
    fn x() -> ObjId {
        ObjId::new(0)
    }
    fn v(n: u64) -> Value {
        Value::new(n)
    }

    fn sample_history(k: u64) -> History {
        HistoryBuilder::new()
            .committed_writer(t(1), x(), v(k))
            .committed_reader(t(2), x(), v(k))
            .build()
    }

    /// Several disjoint clusters on distinct objects, so the planner's
    /// component fan-out engages under threads > 1. The clusters are
    /// interleaved phase-by-phase (all writers open, then all reads, then
    /// all reader commits) so no transaction completes before another
    /// cluster's transactions begin — a completed transaction would add a
    /// real-time edge and merge the components.
    fn clustered_history(clusters: u32) -> History {
        let mut b = HistoryBuilder::new();
        for c in 0..clusters {
            let obj = ObjId::new(c);
            let w = t(c * 2 + 1);
            b = b
                .inv_write(w, obj, v(u64::from(c) + 1))
                .resp_ok(w)
                .inv_try_commit(w);
        }
        for c in 0..clusters {
            let obj = ObjId::new(c);
            let r = t(c * 2 + 2);
            b = b.inv_read(r, obj).resp_value(r, v(u64::from(c) + 1));
        }
        for c in 0..clusters {
            b = b.commit(t(c * 2 + 2));
        }
        b.build()
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, 8, |&i| i * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            par_map(&items, 1, |&i| i + 1),
            par_map(&items, 4, |&i| i + 1)
        );
    }

    #[test]
    fn par_check_batch_matches_serial() {
        let histories: Vec<History> = (0..20).map(sample_history).collect();
        let c = DuOpacity::new();
        let serial: Vec<bool> = histories
            .iter()
            .map(|h| c.check(h).is_satisfied())
            .collect();
        let par: Vec<bool> = par_check_batch(&c, &histories, 4)
            .into_iter()
            .map(|v| v.is_satisfied())
            .collect();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_search_small_history_agrees() {
        let h = sample_history(3);
        let seq = DuOpacity::new().check(&h);
        let par = DuOpacity::with_config(SearchConfig {
            threads: Some(4),
            ..SearchConfig::default()
        })
        .check(&h);
        assert_eq!(seq.witness(), par.witness());
    }

    #[test]
    fn component_fanout_matches_sequential_witness() {
        // Clustered history: > 1 component, so threads > 1 exercises
        // par_search_components; the witness must be byte-identical to
        // the sequential planned search.
        let h = clustered_history(4);
        let seq = DuOpacity::new().check(&h);
        let par = DuOpacity::with_config(SearchConfig {
            threads: Some(8),
            ..SearchConfig::default()
        })
        .check(&h);
        assert_eq!(seq.witness(), par.witness());
        assert!(seq.is_satisfied());
    }

    #[test]
    fn component_fanout_finds_violations() {
        // Two components: a satisfiable x-cluster (T1 commit-pending, T2
        // reads through it) and an unsatisfiable y-cluster — a stale read:
        // T4 sees the initial value although T3 committed 5 strictly
        // before T4 began. The x-cluster's transactions start before T3
        // completes, so no cross-cluster real-time edge merges the two.
        let y = ObjId::new(1);
        let h = HistoryBuilder::new()
            .inv_write(t(1), x(), v(1))
            .resp_ok(t(1))
            .inv_try_commit(t(1))
            .inv_read(t(2), x())
            .committed_writer(t(3), y, v(5))
            .committed_reader(t(4), y, v(0))
            .resp_value(t(2), v(1))
            .commit(t(2))
            .build();
        let seq = DuOpacity::new().check(&h);
        let par = DuOpacity::with_config(SearchConfig {
            threads: Some(8),
            ..SearchConfig::default()
        })
        .check(&h);
        assert!(seq.is_violated());
        assert!(par.is_violated());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
