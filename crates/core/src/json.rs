//! Hand-written [`serde::Serialize`] impls for checker outcomes, shared by
//! `duop check --format json` and `duop lint --format json` so both
//! subcommands go through one serialization path.

use crate::{Verdict, Violation, Witness};
use serde::Content;

fn s(text: impl Into<String>) -> Content {
    Content::Str(text.into())
}

impl serde::Serialize for Witness {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "order".into(),
                Content::Seq(self.order().iter().map(|t| s(t.to_string())).collect()),
            ),
            (
                "commit_choices".into(),
                Content::Map(
                    self.commit_choices()
                        .iter()
                        .map(|(t, &c)| (t.to_string(), Content::Bool(c)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Serialize for Violation {
    fn to_content(&self) -> Content {
        let mut fields: Vec<(String, Content)> = Vec::new();
        let kind = match self {
            Violation::InternalReadInconsistency {
                txn,
                obj,
                got,
                expected,
            } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("got".into(), Content::U64(got.get())));
                fields.push(("expected".into(), Content::U64(expected.get())));
                "internal-read-inconsistency"
            }
            Violation::MissingWriter { txn, obj, value } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("value".into(), Content::U64(value.get())));
                "missing-writer"
            }
            Violation::ConstraintCycle { txns } => {
                fields.push((
                    "txns".into(),
                    Content::Seq(txns.iter().map(|t| s(t.to_string())).collect()),
                ));
                "constraint-cycle"
            }
            Violation::NoSerialization {
                criterion,
                explored,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("explored".into(), Content::U64(*explored)));
                "no-serialization"
            }
            Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
                fields.push(("prefix_len".into(), Content::U64(*prefix_len as u64)));
                fields.push(("cause".into(), cause.to_content()));
                "prefix-not-final-state-opaque"
            }
            Violation::LintRefuted {
                criterion,
                diagnostic,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("diagnostic".into(), diagnostic.to_content()));
                "lint-refuted"
            }
        };
        let mut map = vec![
            ("kind".into(), s(kind)),
            ("message".into(), s(self.to_string())),
        ];
        map.extend(fields);
        Content::Map(map)
    }
}

impl serde::Serialize for Verdict {
    fn to_content(&self) -> Content {
        match self {
            Verdict::Satisfied(w) => Content::Map(vec![
                ("status".into(), s("satisfied")),
                ("witness".into(), w.to_content()),
            ]),
            Verdict::Violated(v) => Content::Map(vec![
                ("status".into(), s("violated")),
                ("violation".into(), v.to_content()),
            ]),
            Verdict::Unknown { explored, reason } => Content::Map(vec![
                ("status".into(), s("unknown")),
                ("explored".into(), Content::U64(*explored)),
                ("reason".into(), s(reason.as_str())),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Criterion, DuOpacity, SearchConfig, Verdict};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    #[test]
    fn satisfied_verdict_serializes_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
            .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"satisfied\""), "json: {json}");
        assert!(json.contains("\"order\":[\"T1\",\"T2\"]"), "json: {json}");
    }

    #[test]
    fn lint_refuted_verdict_embeds_diagnostic() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"violated\""), "json: {json}");
        assert!(json.contains("\"kind\":\"lint-refuted\""), "json: {json}");
        assert!(json.contains("\"rule\":\"RF003\""), "json: {json}");
    }

    #[test]
    fn search_violation_serializes_without_prelint() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let cfg = SearchConfig {
            prelint: false,
            ..SearchConfig::default()
        };
        let verdict = DuOpacity::with_config(cfg).check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"kind\":\"missing-writer\""), "json: {json}");
    }

    #[test]
    fn unknown_verdict_serializes_explored_and_reason() {
        for (reason, tag) in [
            (crate::UnknownReason::StateBudget, "state-budget"),
            (crate::UnknownReason::Deadline, "deadline"),
            (crate::UnknownReason::WorkerPanic, "worker-panic"),
        ] {
            let json = serde_json::to_string(&Verdict::Unknown {
                explored: 12,
                reason,
            })
            .unwrap();
            assert_eq!(
                json,
                format!("{{\"status\":\"unknown\",\"explored\":12,\"reason\":\"{tag}\"}}")
            );
        }
    }
}
