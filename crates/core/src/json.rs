//! Hand-written [`serde::Serialize`] impls for checker outcomes, shared by
//! `duop check --format json` and `duop lint --format json` so both
//! subcommands go through one serialization path.

use crate::certificate::{Certificate, Rule, Step};
use crate::plan::PlanCriterion;
use crate::{PartialProgress, Verdict, Violation, Witness};
use duop_history::{ObjId, TxnId, Value};
use serde::{Content, DeError};

fn s(text: impl Into<String>) -> Content {
    Content::Str(text.into())
}

fn u(v: impl TryInto<u64>) -> Content {
    Content::U64(v.try_into().unwrap_or(u64::MAX))
}

fn fields<'a>(content: &'a Content, what: &str) -> Result<&'a [(String, Content)], DeError> {
    match content {
        Content::Map(entries) => Ok(entries),
        _ => Err(DeError::custom(format!("expected {what} object"))),
    }
}

fn field<'a>(entries: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

fn u64_field(entries: &[(String, Content)], name: &str) -> Result<u64, DeError> {
    field(entries, name)?
        .as_u64()
        .ok_or_else(|| DeError::custom(format!("field `{name}` must be an integer")))
}

fn usize_field(entries: &[(String, Content)], name: &str) -> Result<usize, DeError> {
    usize::try_from(u64_field(entries, name)?)
        .map_err(|_| DeError::custom(format!("field `{name}` out of range")))
}

fn u32_field(entries: &[(String, Content)], name: &str) -> Result<u32, DeError> {
    u32::try_from(u64_field(entries, name)?)
        .map_err(|_| DeError::custom(format!("field `{name}` out of range")))
}

impl serde::Serialize for Rule {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = vec![("rule".into(), s(self.tag()))];
        match *self {
            Rule::RealTime => {}
            Rule::ReadFrom { obj, value, read } => {
                map.push(("obj".into(), u(obj.index())));
                map.push(("value".into(), u(value.get())));
                map.push(("read".into(), u(read)));
            }
            Rule::AntiDependency { obj, read } => {
                map.push(("obj".into(), u(obj.index())));
                map.push(("read".into(), u(read)));
            }
            Rule::ReadCommitOrder { obj, read, tryc } => {
                map.push(("obj".into(), u(obj.index())));
                map.push(("read".into(), u(read)));
                map.push(("tryc".into(), u(tryc)));
            }
            Rule::Tms2CommitOrder { obj, resp, tryc } => {
                map.push(("obj".into(), u(obj.index())));
                map.push(("resp".into(), u(resp)));
                map.push(("tryc".into(), u(tryc)));
            }
            Rule::Transitive { first, second } => {
                map.push(("first".into(), u(first)));
                map.push(("second".into(), u(second)));
            }
            Rule::InterferenceAfter { read_from, before } => {
                map.push(("read_from".into(), u(read_from)));
                map.push(("before".into(), u(before)));
            }
            Rule::InterferenceBefore { read_from, after } => {
                map.push(("read_from".into(), u(read_from)));
                map.push(("after".into(), u(after)));
            }
        }
        Content::Map(map)
    }
}

impl serde::Deserialize for Rule {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = fields(content, "rule")?;
        let tag = field(entries, "rule")?
            .as_str()
            .ok_or_else(|| DeError::custom("field `rule` must be a string"))?;
        let obj = || Ok::<_, DeError>(ObjId::new(u32_field(entries, "obj")?));
        match tag {
            "real-time" => Ok(Rule::RealTime),
            "read-from" => Ok(Rule::ReadFrom {
                obj: obj()?,
                value: Value::new(u64_field(entries, "value")?),
                read: usize_field(entries, "read")?,
            }),
            "anti-dependency" => Ok(Rule::AntiDependency {
                obj: obj()?,
                read: usize_field(entries, "read")?,
            }),
            "read-commit-order" => Ok(Rule::ReadCommitOrder {
                obj: obj()?,
                read: usize_field(entries, "read")?,
                tryc: usize_field(entries, "tryc")?,
            }),
            "tms2-commit-order" => Ok(Rule::Tms2CommitOrder {
                obj: obj()?,
                resp: usize_field(entries, "resp")?,
                tryc: usize_field(entries, "tryc")?,
            }),
            "transitive" => Ok(Rule::Transitive {
                first: usize_field(entries, "first")?,
                second: usize_field(entries, "second")?,
            }),
            "interference-after" => Ok(Rule::InterferenceAfter {
                read_from: usize_field(entries, "read_from")?,
                before: usize_field(entries, "before")?,
            }),
            "interference-before" => Ok(Rule::InterferenceBefore {
                read_from: usize_field(entries, "read_from")?,
                after: usize_field(entries, "after")?,
            }),
            other => Err(DeError::custom(format!("unknown rule tag `{other}`"))),
        }
    }
}

impl serde::Serialize for Step {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("from".into(), u(self.from.index())),
            ("to".into(), u(self.to.index())),
            ("rule".into(), self.rule.to_content()),
        ])
    }
}

impl serde::Deserialize for Step {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = fields(content, "step")?;
        Ok(Step {
            from: TxnId::new(u32_field(entries, "from")?),
            to: TxnId::new(u32_field(entries, "to")?),
            rule: Rule::from_content(field(entries, "rule")?)?,
        })
    }
}

impl serde::Serialize for Certificate {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("criterion".into(), s(self.criterion.token())),
            (
                "steps".into(),
                Content::Seq(self.steps.iter().map(|st| st.to_content()).collect()),
            ),
            (
                "cycle".into(),
                Content::Seq(self.cycle.iter().map(|&i| u(i)).collect()),
            ),
        ])
    }
}

impl serde::Deserialize for Certificate {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = fields(content, "certificate")?;
        let token = field(entries, "criterion")?
            .as_str()
            .ok_or_else(|| DeError::custom("field `criterion` must be a string"))?;
        let criterion = PlanCriterion::parse(token)
            .ok_or_else(|| DeError::custom(format!("unknown criterion `{token}`")))?;
        let steps = match field(entries, "steps")? {
            Content::Seq(items) => items
                .iter()
                .map(Step::from_content)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(DeError::custom("field `steps` must be an array")),
        };
        let cycle = match field(entries, "cycle")? {
            Content::Seq(items) => items
                .iter()
                .map(|c| {
                    c.as_u64()
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(|| DeError::custom("cycle entries must be integers"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(DeError::custom("field `cycle` must be an array")),
        };
        Ok(Certificate {
            criterion,
            steps,
            cycle,
        })
    }
}

impl serde::Serialize for PartialProgress {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "components_decided".into(),
                Content::U64(self.components_decided),
            ),
            (
                "components_total".into(),
                Content::U64(self.components_total),
            ),
            (
                "tiers".into(),
                Content::Seq(self.tiers.iter().map(|&t| s(t)).collect()),
            ),
        ])
    }
}

impl serde::Serialize for Witness {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "order".into(),
                Content::Seq(self.order().iter().map(|t| s(t.to_string())).collect()),
            ),
            (
                "commit_choices".into(),
                Content::Map(
                    self.commit_choices()
                        .iter()
                        .map(|(t, &c)| (t.to_string(), Content::Bool(c)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Serialize for Violation {
    fn to_content(&self) -> Content {
        let mut fields: Vec<(String, Content)> = Vec::new();
        let kind = match self {
            Violation::InternalReadInconsistency {
                txn,
                obj,
                got,
                expected,
            } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("got".into(), Content::U64(got.get())));
                fields.push(("expected".into(), Content::U64(expected.get())));
                "internal-read-inconsistency"
            }
            Violation::MissingWriter { txn, obj, value } => {
                fields.push(("txn".into(), s(txn.to_string())));
                fields.push(("obj".into(), s(obj.to_string())));
                fields.push(("value".into(), Content::U64(value.get())));
                "missing-writer"
            }
            Violation::ConstraintCycle { txns } => {
                fields.push((
                    "txns".into(),
                    Content::Seq(txns.iter().map(|t| s(t.to_string())).collect()),
                ));
                "constraint-cycle"
            }
            Violation::NoSerialization {
                criterion,
                explored,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("explored".into(), Content::U64(*explored)));
                "no-serialization"
            }
            Violation::PrefixNotFinalStateOpaque { prefix_len, cause } => {
                fields.push(("prefix_len".into(), Content::U64(*prefix_len as u64)));
                fields.push(("cause".into(), cause.to_content()));
                "prefix-not-final-state-opaque"
            }
            Violation::LintRefuted {
                criterion,
                diagnostic,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("diagnostic".into(), diagnostic.to_content()));
                "lint-refuted"
            }
            Violation::Certified {
                criterion,
                certificate,
            } => {
                fields.push(("criterion".into(), s(criterion.clone())));
                fields.push(("certificate".into(), certificate.to_content()));
                "certified"
            }
        };
        let mut map = vec![
            ("kind".into(), s(kind)),
            ("message".into(), s(self.to_string())),
        ];
        map.extend(fields);
        Content::Map(map)
    }
}

impl serde::Serialize for Verdict {
    fn to_content(&self) -> Content {
        match self {
            Verdict::Satisfied(w) => Content::Map(vec![
                ("status".into(), s("satisfied")),
                ("witness".into(), w.to_content()),
            ]),
            Verdict::Violated(v) => Content::Map(vec![
                ("status".into(), s("violated")),
                ("violation".into(), v.to_content()),
            ]),
            Verdict::Unknown {
                explored,
                reason,
                partial,
            } => {
                let mut map = vec![
                    ("status".into(), s("unknown")),
                    ("explored".into(), Content::U64(*explored)),
                    ("reason".into(), s(reason.as_str())),
                ];
                if let Some(p) = partial {
                    map.push(("partial".into(), p.to_content()));
                }
                Content::Map(map)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Criterion, DuOpacity, SearchConfig, Verdict};
    use duop_history::{HistoryBuilder, ObjId, TxnId, Value};

    #[test]
    fn satisfied_verdict_serializes_witness() {
        let h = HistoryBuilder::new()
            .committed_writer(TxnId::new(1), ObjId::new(0), Value::new(1))
            .committed_reader(TxnId::new(2), ObjId::new(0), Value::new(1))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"satisfied\""), "json: {json}");
        assert!(json.contains("\"order\":[\"T1\",\"T2\"]"), "json: {json}");
    }

    #[test]
    fn lint_refuted_verdict_embeds_diagnostic() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let verdict = DuOpacity::new().check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"status\":\"violated\""), "json: {json}");
        assert!(json.contains("\"kind\":\"lint-refuted\""), "json: {json}");
        assert!(json.contains("\"rule\":\"RF003\""), "json: {json}");
    }

    #[test]
    fn search_violation_serializes_without_prelint() {
        let h = HistoryBuilder::new()
            .committed_reader(TxnId::new(1), ObjId::new(0), Value::new(7))
            .build();
        let cfg = SearchConfig {
            prelint: false,
            ..SearchConfig::default()
        };
        let verdict = DuOpacity::with_config(cfg).check(&h);
        let json = serde_json::to_string(&verdict).unwrap();
        assert!(json.contains("\"kind\":\"missing-writer\""), "json: {json}");
    }

    #[test]
    fn unknown_verdict_serializes_explored_and_reason() {
        for (reason, tag) in [
            (crate::UnknownReason::StateBudget, "state-budget"),
            (crate::UnknownReason::Deadline, "deadline"),
            (crate::UnknownReason::WorkerPanic, "worker-panic"),
            (crate::UnknownReason::Interrupted, "interrupted"),
            (crate::UnknownReason::WorkerDeath, "worker-death"),
        ] {
            let json = serde_json::to_string(&Verdict::Unknown {
                explored: 12,
                reason,
                partial: None,
            })
            .unwrap();
            assert_eq!(
                json,
                format!("{{\"status\":\"unknown\",\"explored\":12,\"reason\":\"{tag}\"}}")
            );
        }
    }

    /// Identity deserializer: parse back into the raw content tree.
    struct Raw(serde::Content);

    impl serde::Deserialize for Raw {
        fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
            Ok(Raw(content.clone()))
        }
    }

    /// Every `UnknownReason`, with and without a `partial` payload, must
    /// survive a parse → re-serialize round trip byte-identically: the
    /// JSON layer is what checkpoints and scripts consume, so a lossy
    /// rendering here would corrupt resumed state downstream.
    #[test]
    fn unknown_reason_and_partial_round_trip_through_json() {
        for reason in [
            crate::UnknownReason::StateBudget,
            crate::UnknownReason::Deadline,
            crate::UnknownReason::WorkerPanic,
            crate::UnknownReason::Interrupted,
            crate::UnknownReason::WorkerDeath,
        ] {
            for partial in [
                None,
                Some(crate::PartialProgress::components(2, 5)),
                Some({
                    let mut p = crate::PartialProgress::components(0, 3);
                    p.tiers = vec!["exact-search", "lint"];
                    p
                }),
            ] {
                let verdict = Verdict::Unknown {
                    explored: 44,
                    reason,
                    partial,
                };
                let json = serde_json::to_string(&verdict).unwrap();
                let Raw(parsed) = serde_json::from_str::<Raw>(&json)
                    .unwrap_or_else(|e| panic!("verdict JSON must parse back: {e}\n{json}"));
                assert_eq!(
                    serde_json::to_string(&parsed).unwrap(),
                    json,
                    "round trip must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn unknown_verdict_serializes_partial_payload() {
        let mut partial = crate::PartialProgress::components(3, 7);
        partial.tiers = vec!["exact-search", "lint", "unique-writes"];
        let json = serde_json::to_string(&Verdict::Unknown {
            explored: 99,
            reason: crate::UnknownReason::Deadline,
            partial: Some(partial),
        })
        .unwrap();
        assert_eq!(
            json,
            concat!(
                "{\"status\":\"unknown\",\"explored\":99,\"reason\":\"deadline\",",
                "\"partial\":{\"components_decided\":3,\"components_total\":7,",
                "\"tiers\":[\"exact-search\",\"lint\",\"unique-writes\"]}}"
            )
        );
    }
}
